"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``dataset``         generate a named synthetic dataset and save it as ``.npz``
``train``           fit a model on a dataset and save the embeddings
``evaluate``        link-prediction evaluation of saved embeddings
``info``            print a dataset's summary statistics
``runtime-demo``    sampled workload through the RPC runtime with faults on
``fault-matrix``    availability sweep {drop rate x failed workers x cache}
``trace``           traced sampling workload -> Chrome trace JSON (Perfetto)
``metrics-report``  sampled workload -> Prometheus text exposition
``prefetch-demo``   overlapped sampling: prefetch buffer + makespan model
``sampling-bench``  A/B the batched vs reference frontier-sampling kernels
``serve-bench``     online serving tier under seeded load -> SLO report
``workload-report`` mine hot vertices / traffic matrix / cache efficacy
``timeseries``      virtual-clock metric series of the sampled workload
``bench-compare``   regression-gate fresh smoke benchmarks vs baselines
``placement-bench`` adaptive placement vs static partition under shifting skew

The CLI covers the adopt-and-script path: generate once, train many models
against the same artifact, compare evaluations — without writing Python.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.data import make_dataset, train_test_split_edges
from repro.errors import ReproError
from repro.graph.io import load_ahg, save_ahg
from repro.tasks import evaluate_link_prediction

#: Models reachable from the CLI (name -> factory taking dim/epochs/seed).
def _model_factories():
    from repro.algorithms import (
        GATNE,
        AutoGNN,
        DeepWalk,
        GraphSAGE,
        HierarchicalGNN,
        LINE,
        SIGN,
        MixtureGNN,
        NetMF,
        Node2Vec,
    )

    def _kv_kwargs(a):
        """Embedding-backend knobs of the KV-capable models."""
        return {
            "backend": getattr(a, "backend", "dense"),
            "kv_workers": getattr(a, "kv_workers", 4),
            "kv_staleness": getattr(a, "kv_staleness", 0),
        }

    return {
        "deepwalk": lambda a: DeepWalk(
            dim=a.dim, epochs=a.epochs, seed=a.seed, **_kv_kwargs(a)
        ),
        "node2vec": lambda a: Node2Vec(
            dim=a.dim, epochs=a.epochs, seed=a.seed, **_kv_kwargs(a)
        ),
        "line": lambda a: LINE(dim=a.dim, seed=a.seed, **_kv_kwargs(a)),
        "netmf": lambda a: NetMF(dim=a.dim),
        "graphsage": lambda a: GraphSAGE(
            dim=a.dim,
            epochs=a.epochs,
            seed=a.seed,
            minibatch_blocks=getattr(a, "minibatch_blocks", False),
        ),
        "sign": lambda a: SIGN(dim=a.dim, epochs=a.epochs, seed=a.seed),
        "gatne": lambda a: GATNE(dim=a.dim, epochs=a.epochs, seed=a.seed),
        "mixture-gnn": lambda a: MixtureGNN(dim=a.dim, epochs=a.epochs, seed=a.seed),
        "hierarchical-gnn": lambda a: HierarchicalGNN(dim=a.dim, seed=a.seed),
        "auto": lambda a: AutoGNN(seed=a.seed),
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AliGraph reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ds = sub.add_parser("dataset", help="generate and save a synthetic dataset")
    p_ds.add_argument("name", help="dataset name, e.g. taobao-small-sim")
    p_ds.add_argument("output", help="output .npz path")
    p_ds.add_argument("--scale", type=float, default=1.0)
    p_ds.add_argument("--seed", type=int, default=0)

    p_info = sub.add_parser("info", help="print a saved dataset's statistics")
    p_info.add_argument("path", help=".npz dataset path")

    p_tr = sub.add_parser("train", help="fit a model, save embeddings")
    p_tr.add_argument("model", help="model name (see --list via error message)")
    p_tr.add_argument("dataset", help=".npz dataset path")
    p_tr.add_argument("output", help="output .npz embeddings path")
    p_tr.add_argument("--dim", type=int, default=64)
    p_tr.add_argument("--epochs", type=int, default=2)
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument(
        "--holdout",
        type=float,
        default=0.0,
        help="hide this edge fraction before training (for later evaluate)",
    )
    p_tr.add_argument(
        "--minibatch-blocks", action="store_true",
        help="train graphsage on per-step k-hop computation blocks "
        "(forward/backward cost scales with the batch, not the graph)",
    )
    p_tr.add_argument(
        "--backend", choices=["dense", "kv"], default="dense",
        help="embedding backend for deepwalk/node2vec/line: in-process "
        "dense tables or the parameter-server KV store (default: dense)",
    )
    p_tr.add_argument(
        "--kv-workers", type=int, default=4,
        help="embedding servers of the kv backend (default: 4)",
    )
    p_tr.add_argument(
        "--kv-staleness", type=int, default=0,
        help="bounded-staleness window of kv pulls, in push rounds "
        "(default: 0 = exact reads)",
    )

    def _add_workload_args(p, drop_rate: float) -> None:
        """Shared knobs of the sampled-workload subcommands."""
        p.add_argument("--workers", type=int, default=4)
        p.add_argument("--scale", type=float, default=0.2)
        p.add_argument("--steps", type=int, default=5)
        p.add_argument("--batch-size", type=int, default=64)
        p.add_argument("--drop-rate", type=float, default=drop_rate)
        p.add_argument("--timeout-rate", type=float, default=0.05)
        p.add_argument("--slow-workers", type=int, default=1,
                       help="number of 3x-slower servers")
        p.add_argument("--seed", type=int, default=0)

    p_rt = sub.add_parser(
        "runtime-demo",
        help="run a sampled workload through the RPC runtime and print metrics",
    )
    _add_workload_args(p_rt, drop_rate=0.1)

    p_tc = sub.add_parser(
        "trace",
        help="trace a sampled workload and write Chrome trace JSON (Perfetto)",
    )
    _add_workload_args(p_tc, drop_rate=0.0)
    p_tc.add_argument(
        "--output", default="trace.json",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    p_tc.add_argument(
        "--json", action="store_true",
        help="also print a machine-readable summary payload (the "
        "benchmarks/_common.py record contract)",
    )

    p_mr = sub.add_parser(
        "metrics-report",
        help="run a sampled workload and export Prometheus text exposition",
    )
    _add_workload_args(p_mr, drop_rate=0.1)
    p_mr.add_argument(
        "--output", default=None,
        help="write the exposition here instead of stdout",
    )
    p_mr.add_argument(
        "--json", action="store_true",
        help="print the metrics as a machine-readable payload (the "
        "benchmarks/_common.py record contract) instead of Prometheus text",
    )

    p_wr = sub.add_parser(
        "workload-report",
        help="mine the sampled workload's access stream: hot vertices, "
        "traffic matrix, Zipf skew, cache efficacy",
    )
    _add_workload_args(p_wr, drop_rate=0.0)
    p_wr.add_argument(
        "--top-k", type=int, default=10,
        help="hot vertices to list (default: 10)",
    )
    p_wr.add_argument(
        "--json", action="store_true",
        help="print the machine-readable payload (the benchmarks/_common.py "
        "record contract) instead of the rendered report",
    )

    p_ts = sub.add_parser(
        "timeseries",
        help="sample the metrics registry on the virtual clock while the "
        "workload runs; export the series",
    )
    _add_workload_args(p_ts, drop_rate=0.1)
    p_ts.add_argument(
        "--tick-us", type=float, default=500.0,
        help="sampling tick in simulated microseconds (default: 500)",
    )
    p_ts.add_argument(
        "--capacity", type=int, default=4096,
        help="ring-buffer samples kept per series (default: 4096)",
    )
    p_ts.add_argument(
        "--format", choices=["csv", "json", "chrome"], default="csv",
        help="export format: csv rows, json payload, or Chrome counter "
        "events for Perfetto (default: csv)",
    )
    p_ts.add_argument(
        "--output", default=None,
        help="write the export here instead of stdout",
    )

    p_bc = sub.add_parser(
        "bench-compare",
        help="re-run the gated benchmarks and compare against committed "
        "baselines; exit 1 on regression",
    )
    p_bc.add_argument(
        "--smoke", action="store_true", default=True,
        help="run benchmarks in --smoke mode (default: on)",
    )
    p_bc.add_argument(
        "--bench-dir", default=None,
        help="benchmark scripts directory (default: <repo>/benchmarks)",
    )
    p_bc.add_argument(
        "--baseline-dir", default=None,
        help="committed baseline payloads "
        "(default: <bench-dir>/results/smoke)",
    )
    p_bc.add_argument(
        "--out-dir", default=None,
        help="scratch directory for fresh results (default: a temp dir)",
    )
    p_bc.add_argument(
        "--only", nargs="+", default=None, metavar="ID",
        help="restrict the suite to these experiment ids",
    )
    p_bc.add_argument(
        "--inject-latency-pct", type=float, default=0.0,
        help="self-test: inflate fresh higher-is-worse metrics by this "
        "percentage so the gate must trip",
    )
    p_bc.add_argument(
        "--json", action="store_true",
        help="print the comparison as JSON instead of the rendered report",
    )

    p_pf = sub.add_parser(
        "prefetch-demo",
        help="overlapped sampling: bounded prefetch buffer + makespan model",
    )
    _add_workload_args(p_pf, drop_rate=0.0)
    p_pf.add_argument(
        "--depth", type=int, default=2,
        help="prefetch buffer depth (default: 2)",
    )
    p_pf.add_argument(
        "--compute-us-per-row", type=float, default=0.18,
        help="modelled per-context-row compute cost for the makespan model",
    )

    p_sb = sub.add_parser(
        "sampling-bench",
        help="time the sampled workload on the batched or reference kernels",
    )
    _add_workload_args(p_sb, drop_rate=0.0)
    p_sb.add_argument(
        "--backend", choices=["batched", "reference"], default="batched",
        help="frontier-sampling kernel backend to run (default: batched)",
    )

    p_sv = sub.add_parser(
        "serve-bench",
        help="drive the online serving tier under seeded load, print the "
        "SLO report",
    )
    p_sv.add_argument("--workers", type=int, default=4)
    p_sv.add_argument("--scale", type=float, default=0.2)
    p_sv.add_argument("--seed", type=int, default=7)
    p_sv.add_argument(
        "--loop", choices=["open", "closed"], default="open",
        help="arrival process: open (Poisson) or closed (client population)",
    )
    p_sv.add_argument(
        "--duration-ms", type=float, default=1000.0,
        help="open-loop workload duration in simulated milliseconds",
    )
    p_sv.add_argument("--base-rps", type=float, default=300.0)
    p_sv.add_argument("--peak-rps", type=float, default=1200.0)
    p_sv.add_argument(
        "--burst-mult", type=float, default=3.0,
        help="flash-burst rate multiplier of the diurnal shape",
    )
    p_sv.add_argument("--clients", type=int, default=32,
                      help="closed-loop client population")
    p_sv.add_argument("--requests-per-client", type=int, default=20)
    p_sv.add_argument("--think-us", type=float, default=5000.0)
    p_sv.add_argument("--zipf", type=float, default=1.1,
                      help="hot-key skew exponent (0 = uniform users)")
    p_sv.add_argument("--fresh-fraction", type=float, default=0.1,
                      help="fraction of requests demanding fresh inference")
    p_sv.add_argument(
        "--policy", choices=["importance", "lru", "none"],
        default="importance", help="neighbor-cache policy of the store",
    )
    p_sv.add_argument(
        "--embed-cache", type=int, default=512,
        help="per-user embedding cache entries (0 = recompute everything)",
    )
    p_sv.add_argument(
        "--metrics", action="store_true",
        help="also print the runtime metrics table (p50/p95/p99 columns)",
    )

    p_pb = sub.add_parser(
        "placement-bench",
        help="adaptive placement (replica promotion + incremental "
        "migration) vs the static partition under shifting Zipf skew",
    )
    p_pb.add_argument("--workers", type=int, default=4)
    p_pb.add_argument("--scale", type=float, default=0.2)
    p_pb.add_argument("--seed", type=int, default=7)
    p_pb.add_argument(
        "--phases", type=int, default=3,
        help="hot-set rotations: each phase draws a fresh rank->vertex "
        "permutation (default: 3)",
    )
    p_pb.add_argument(
        "--requests", type=int, default=4000,
        help="point-read requests per phase (default: 4000)",
    )
    p_pb.add_argument(
        "--zipf", type=float, default=2.5,
        help="Zipf skew exponent of the per-phase read draw (default: 2.5)",
    )
    p_pb.add_argument(
        "--affinity", type=float, default=0.85,
        help="probability a request is issued by its lead vertex's home "
        "worker (default: 0.85)",
    )
    p_pb.add_argument(
        "--epoch-us", type=float, default=800.0,
        help="controller decision-epoch length in simulated microseconds",
    )
    p_pb.add_argument(
        "--json", action="store_true",
        help="print the machine-readable payload (the benchmarks/_common.py "
        "record contract) instead of the rendered table",
    )

    p_fm = sub.add_parser(
        "fault-matrix",
        help="sweep read availability over {drop rate x failed workers x cache}",
    )
    p_fm.add_argument("--workers", type=int, default=4)
    p_fm.add_argument("--scale", type=float, default=0.2)
    p_fm.add_argument(
        "--drop-rates", type=float, nargs="+", default=[0.0, 0.2],
        metavar="RATE",
    )
    p_fm.add_argument(
        "--failed-workers", type=int, nargs="+", default=[0, 1],
        metavar="N", help="numbers of fail-stopped workers to sweep",
    )
    p_fm.add_argument(
        "--policies", nargs="+", default=["none", "lru", "importance"],
        metavar="POLICY", help="cache policies to sweep (none/lru/importance)",
    )
    p_fm.add_argument("--cache-fraction", type=float, default=0.25)
    p_fm.add_argument("--batches", type=int, default=2)
    p_fm.add_argument("--batch-size", type=int, default=64)
    p_fm.add_argument("--seed", type=int, default=7)

    p_ev = sub.add_parser("evaluate", help="link-prediction metrics of embeddings")
    p_ev.add_argument("embeddings", help=".npz embeddings path (from train)")
    p_ev.add_argument("dataset", help=".npz dataset path")
    p_ev.add_argument("--holdout", type=float, default=0.2)
    p_ev.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_dataset(args: argparse.Namespace) -> int:
    graph = make_dataset(args.name, scale=args.scale, seed=args.seed)
    save_ahg(graph, args.output)
    print(f"wrote {args.output}: {graph.describe()}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = load_ahg(args.path)
    for key, value in graph.describe().items():
        print(f"{key}: {value}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    factories = _model_factories()
    if args.model not in factories:
        print(
            f"unknown model {args.model!r}; available: {', '.join(sorted(factories))}",
            file=sys.stderr,
        )
        return 2
    graph = load_ahg(args.dataset)
    if args.holdout > 0:
        split = train_test_split_edges(graph, args.holdout, seed=args.seed)
        train_graph = split.train_graph
    else:
        train_graph = graph
    model = factories[args.model](args)
    model.fit(train_graph)
    embeddings = model.embeddings()
    np.savez_compressed(
        args.output,
        embeddings=embeddings,
        model=np.array([args.model]),
        holdout=np.array([args.holdout]),
        seed=np.array([args.seed]),
    )
    print(
        f"wrote {args.output}: {embeddings.shape[0]} x {embeddings.shape[1]} "
        f"embeddings from {args.model}"
    )
    store = getattr(model, "kv_store", None)
    if store is not None:
        rpcs = store.runtime.metrics.counter("rpc.requests").value
        print(
            f"kv backend: {store.n_workers} embedding servers, "
            f"{rpcs} batched RPCs, modelled "
            f"{store.ledger.modelled_millis():.1f} ms of traffic"
        )
    return 0


def _build_sampled_workload(
    args: argparse.Namespace, tracer: "object | None" = None
):
    """Stand up the shared demo workload without driving any batches.

    The common substrate of ``runtime-demo``, ``trace``,
    ``metrics-report`` and ``prefetch-demo``: a 2-hop (10x5)
    GraphSAGE-style sampling stack over ``taobao-small-sim`` with the
    importance cache and seeded fault injection. Returns
    ``(graph, store, runtime, pipeline)``.
    """
    from repro.data import make_dataset as _make
    from repro.runtime import FaultPlan, RpcRuntime
    from repro.sampling import (
        DegreeBiasedNegativeSampler,
        SamplingPipeline,
        StoreProvider,
        UniformNeighborSampler,
        VertexTraverseSampler,
    )
    from repro.storage import ImportanceCachePolicy
    from repro.storage.cluster import make_store
    from repro.utils.rng import make_rng

    graph = _make("taobao-small-sim", scale=args.scale, seed=args.seed)
    store = make_store(
        graph,
        args.workers,
        cache_policy=ImportanceCachePolicy(),
        cache_budget_fraction=0.1,
        seed=args.seed,
    )
    slow = frozenset(range(1, min(1 + args.slow_workers, args.workers)))
    faults = None
    if args.drop_rate > 0 or args.timeout_rate > 0 or slow:
        faults = FaultPlan(
            drop_rate=args.drop_rate,
            timeout_rate=args.timeout_rate,
            slow_parts=slow,
            slow_factor=3.0,
            seed=args.seed,
        )
    runtime = RpcRuntime(store, faults=faults, tracer=tracer)
    store.attach_runtime(runtime)
    pipeline = SamplingPipeline(
        traverse=VertexTraverseSampler(graph, vertex_type="user"),
        neighborhood=UniformNeighborSampler(
            StoreProvider(store, from_part=0),
            backend=getattr(args, "backend", "auto"),
        ),
        negative=DegreeBiasedNegativeSampler(graph),
        hop_nums=[10, 5],
        neg_num=5,
        metrics=runtime.metrics,
        tracer=tracer,
    )
    return graph, store, runtime, pipeline


def _run_sampled_workload(args: argparse.Namespace, tracer: "object | None" = None):
    """Build the demo workload and drive ``args.steps`` batches through it."""
    from repro.utils.rng import make_rng

    graph, store, runtime, pipeline = _build_sampled_workload(args, tracer)
    rng = make_rng(args.seed)
    for _ in range(args.steps):
        pipeline.sample(args.batch_size, rng)
    return graph, store, runtime, pipeline


def _cmd_runtime_demo(args: argparse.Namespace) -> int:
    from repro.utils.tables import format_table

    graph, store, runtime, _ = _run_sampled_workload(args)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["graph", graph.describe()["n_vertices"]],
                ["workers", args.workers],
                ["sampling steps", args.steps],
                ["seeds per step", args.batch_size],
                ["virtual clock (ms)", round(runtime.clock.now_us / 1000.0, 3)],
                ["ledger modelled (ms)", round(store.ledger.modelled_millis(), 3)],
            ],
            title="runtime-demo workload",
        )
    )
    print()
    print(runtime.metrics.render())
    print()
    print("cost ledger")
    print(store.ledger.summary())
    return 0


def _print_contract_payload(experiment_id: str, title: str, records) -> None:
    """Print a payload in the ``benchmarks/_common.py`` output contract.

    The CLI cannot import ``benchmarks/_common`` (scripts, not a package),
    so the shape — ``{experiment_id, title, records: [{label, measured,
    paper}]}`` — is reproduced here; ``repro bench-compare`` and the CI
    schema check consume both interchangeably.
    """
    import json

    payload = {
        "experiment_id": experiment_id,
        "title": title,
        "records": [
            {"label": label, "measured": measured, "paper": {}}
            for label, measured in records
        ],
    }
    print(json.dumps(payload, indent=1))


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.runtime import Tracer, write_chrome_trace

    tracer = Tracer(seed=args.seed)
    _, store, runtime, _ = _run_sampled_workload(args, tracer=tracer)
    payload = write_chrome_trace(tracer, args.output)
    traces = tracer.traces()
    if args.json:
        from repro.obs import analyze

        cp = analyze(tracer)
        _print_contract_payload(
            "cli_trace",
            "traced sampling workload (repro trace)",
            [
                (
                    "trace volume",
                    {
                        "events": len(payload["traceEvents"]),
                        "traces": len(traces),
                        "spans": len(tracer.spans),
                        "ledger_rows": len(tracer.ledger_rows),
                    },
                ),
                ("trace latency", dict(cp["latency_us"])),
                ("critical-path segments", dict(cp["segments_total"])),
            ],
        )
        return 0
    print(
        f"wrote {args.output}: {len(payload['traceEvents'])} trace events, "
        f"{len(traces)} traces, {len(tracer.ledger_rows)} ledger rows "
        "correlated (open in https://ui.perfetto.dev)"
    )
    print()
    print(tracer.render_tree(traces[0]))
    if len(traces) > 1:
        print(f"... and {len(traces) - 1} more traces in {args.output}")
    return 0


def _cmd_metrics_report(args: argparse.Namespace) -> int:
    from repro.runtime import prometheus_text

    _, store, runtime, _ = _run_sampled_workload(args)
    if args.json:
        records = []
        for row in runtime.metrics.summary_rows():
            name, kind, count = row[0], row[1], row[2]
            measured = {"type": kind, "count": count}
            if kind == "histogram":
                measured.update(
                    {"mean": row[3], "p50": row[4], "p95": row[5], "p99": row[6]}
                )
            records.append((name, measured))
        _print_contract_payload(
            "cli_metrics", "sampled workload metrics (repro metrics-report)",
            records,
        )
        return 0
    text = prometheus_text(runtime.metrics)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
        n_samples = sum(
            1 for line in text.splitlines() if line and not line.startswith("#")
        )
        print(f"wrote {args.output}: {n_samples} samples in Prometheus text format")
    else:
        print(text, end="")
    return 0


def _cmd_workload_report(args: argparse.Namespace) -> int:
    from repro.obs import (
        AccessRecorder,
        cache_efficacy,
        mine_workload,
        render_workload_report,
    )
    from repro.utils.rng import make_rng

    graph, store, runtime, pipeline = _build_sampled_workload(args)
    recorder = AccessRecorder()
    store.attach_recorder(recorder)
    rng = make_rng(args.seed)
    for _ in range(args.steps):
        pipeline.sample(args.batch_size, rng)
    report = mine_workload(recorder, top_k=args.top_k)
    efficacy = cache_efficacy(recorder, store.cost_model)
    if args.json:
        records = [
            (
                "workload",
                {
                    "total_reads": report["total_reads"],
                    "unique_vertices": report["unique_vertices"],
                    "local_share": report["local_share"],
                },
            ),
            ("routes", dict(report["routes"])),
        ]
        if report["zipf"]:
            records.append(("zipf", dict(report["zipf"])))
        records.append(
            ("cache observed", dict(efficacy["observed"]))
        )
        for row in efficacy["oracle"]:
            records.append((f"cache oracle k={row['capacity']}", dict(row)))
        _print_contract_payload(
            "cli_workload", "mined workload report (repro workload-report)",
            records,
        )
        return 0
    print(render_workload_report(report, efficacy))
    return 0


def _cmd_timeseries(args: argparse.Namespace) -> int:
    import json

    from repro.obs import TimeSeriesSampler
    from repro.utils.rng import make_rng

    graph, store, runtime, pipeline = _build_sampled_workload(args)
    sampler = TimeSeriesSampler(
        runtime.metrics,
        runtime.clock,
        tick_us=args.tick_us,
        capacity=args.capacity,
    )
    store.attach_timeseries(sampler)
    rng = make_rng(args.seed)
    for _ in range(args.steps):
        pipeline.sample(args.batch_size, rng)
    sampler.sample_now()
    if args.format == "csv":
        text = sampler.to_csv()
    elif args.format == "json":
        text = json.dumps(sampler.to_dict(), indent=1) + "\n"
    else:
        text = (
            json.dumps({"traceEvents": sampler.chrome_counter_events()}, indent=1)
            + "\n"
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
        print(
            f"wrote {args.output}: {sampler.n_samples} snapshots of "
            f"{len(sampler.series)} series ({args.format})"
        )
    else:
        print(text, end="")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    import json
    import os
    import tempfile

    from repro.obs import compare_suite, render_compare

    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    bench_dir = args.bench_dir or os.path.join(repo_root, "benchmarks")
    baseline_dir = args.baseline_dir or os.path.join(
        bench_dir, "results", "smoke"
    )
    out_dir = args.out_dir or tempfile.mkdtemp(prefix="repro-bench-compare-")
    report = compare_suite(
        bench_dir=bench_dir,
        baseline_dir=baseline_dir,
        out_dir=out_dir,
        smoke=args.smoke,
        inject_latency_pct=args.inject_latency_pct,
        only=args.only,
    )
    if args.json:
        print(json.dumps(report, indent=1))
    else:
        print(render_compare(report))
    return 0 if report["ok"] else 1


def _cmd_prefetch_demo(args: argparse.Namespace) -> int:
    from repro.sampling import PrefetchingPipeline, overlap_report
    from repro.utils.rng import make_rng
    from repro.utils.tables import format_table

    if args.depth < 0:
        print(f"error: --depth must be >= 0, got {args.depth}", file=sys.stderr)
        return 2
    graph, store, runtime, pipeline = _build_sampled_workload(args)
    sample_us: "list[float]" = []
    rows: "list[int]" = []

    def produce(rng):
        before = store.ledger.modelled_micros()
        batch = pipeline.sample(args.batch_size, rng)
        sample_us.append(store.ledger.modelled_micros() - before)
        rows.append(int(sum(layer.size for layer in batch.context.layers)))
        return batch

    prefetcher = PrefetchingPipeline(
        produce,
        args.depth,
        frontier_of=lambda b: b.context.all_vertices(),
        metrics=runtime.metrics,
    )
    rng = make_rng(args.seed)
    for _ in prefetcher.run(args.steps, rng):
        pass

    compute_us = [r * args.compute_us_per_row for r in rows]
    rep = overlap_report(sample_us, compute_us, args.depth)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["graph", graph.describe()["n_vertices"]],
                ["workers", args.workers],
                ["batches", args.steps],
                ["prefetch depth", args.depth],
                ["batches produced", prefetcher.produced],
                ["coalescable frontier reads", prefetcher.coalesced],
                ["sample cost (ms, simulated)", round(rep.sample_us / 1e3, 3)],
                ["compute cost (ms, modelled)", round(rep.compute_us / 1e3, 3)],
                ["serial makespan (ms)", round(rep.serial_us / 1e3, 3)],
                ["overlapped makespan (ms)", round(rep.makespan_us / 1e3, 3)],
                ["speedup", f"{rep.speedup:.2f}x"],
            ],
            title="prefetch-demo: overlapped sampling",
        )
    )
    print()
    print("cost ledger (identical at every depth — overlap is modelled)")
    print(store.ledger.summary())
    return 0


def _cmd_sampling_bench(args: argparse.Namespace) -> int:
    import time

    from repro.utils.rng import make_rng
    from repro.utils.tables import format_table

    graph, store, runtime, pipeline = _build_sampled_workload(args)
    rng = make_rng(args.seed)
    # Warm-up batch: on the batched backend this pays the one-time CSR
    # snapshot read (visible on the ledger), on reference it warms caches.
    pipeline.sample(args.batch_size, rng)
    snapshot_ms = store.ledger.modelled_millis()
    rows = 0
    t0 = time.perf_counter()
    for _ in range(args.steps):
        batch = pipeline.sample(args.batch_size, rng)
        rows += int(sum(layer.size for layer in batch.context.layers))
    wall_s = time.perf_counter() - t0
    print(
        format_table(
            ["quantity", "value"],
            [
                ["graph", graph.describe()["n_vertices"]],
                ["backend", pipeline.neighborhood.resolved_backend],
                ["timed steps", args.steps],
                ["seeds per step", args.batch_size],
                ["context rows", rows],
                ["wall time (ms)", round(wall_s * 1e3, 3)],
                ["context rows / s", f"{rows / max(wall_s, 1e-9):,.0f}"],
                ["warm-up ledger (ms)", round(snapshot_ms, 3)],
                [
                    "steady-state ledger (ms)",
                    round(store.ledger.modelled_millis() - snapshot_ms, 3),
                ],
            ],
            title=f"sampling-bench: {args.backend} kernels",
        )
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.data import make_dataset as _make
    from repro.serving import (
        ClosedLoopWorkload,
        OpenLoopWorkload,
        ServingConfig,
        ServingEngine,
        build_slo_report,
        diurnal_rate,
    )
    from repro.storage import ImportanceCachePolicy, LRUCachePolicy
    from repro.storage.cluster import make_store

    policies = {
        "importance": lambda: ImportanceCachePolicy(),
        "lru": lambda: LRUCachePolicy(),
        "none": lambda: None,
    }
    policy = policies[args.policy]()
    graph = _make("taobao-small-sim", scale=args.scale, seed=args.seed)
    store = make_store(
        graph,
        args.workers,
        cache_policy=policy,
        cache_budget_fraction=0.1 if policy is not None else 0.0,
        seed=args.seed,
    )
    engine = ServingEngine(
        store,
        config=ServingConfig(embed_cache_capacity=args.embed_cache),
        seed=args.seed,
    )
    users = graph.vertices_of_type("user")
    if args.loop == "open":
        workload = OpenLoopWorkload(
            users,
            duration_us=args.duration_ms * 1e3,
            rate=diurnal_rate(
                args.base_rps, args.peak_rps, burst_multiplier=args.burst_mult
            ),
            fresh_fraction=args.fresh_fraction,
            zipf_exponent=args.zipf,
            seed=args.seed,
        )
        shape = (
            f"open loop, diurnal {args.base_rps:g}-{args.peak_rps:g} rps "
            f"(burst x{args.burst_mult:g})"
        )
    else:
        workload = ClosedLoopWorkload(
            users,
            n_clients=args.clients,
            requests_per_client=args.requests_per_client,
            think_us=args.think_us,
            fresh_fraction=args.fresh_fraction,
            zipf_exponent=args.zipf,
            seed=args.seed,
        )
        shape = (
            f"closed loop, {args.clients} clients x "
            f"{args.requests_per_client} requests, think {args.think_us:g} us"
        )
    records = engine.run(workload)
    report = build_slo_report(records)
    print(
        report.render(
            title=f"serve-bench: {shape}, zipf {args.zipf:g}, "
            f"{args.policy} neighbor cache, embed cache {args.embed_cache}"
        )
    )
    if args.metrics:
        print()
        print(engine.metrics.render())
    return 0


def _cmd_placement_bench(args: argparse.Namespace) -> int:
    from repro.bench.placement import PlacementWorkload, run_placement_comparison
    from repro.data import make_dataset as _make
    from repro.storage.placement import PlacementConfig
    from repro.utils.tables import format_table

    workload = PlacementWorkload(
        n_workers=args.workers,
        n_phases=args.phases,
        requests_per_phase=args.requests,
        reads_per_request=1,
        zipf_exponent=args.zipf,
        issuer_affinity=args.affinity,
        seed=args.seed,
    )
    placement = PlacementConfig(
        epoch_us=args.epoch_us,
        promote_per_epoch=192,
        demote_per_epoch=256,
        migrate_per_epoch=32,
        migrate_dominance=1.5,
        min_decision_weight=0.3,
    )
    graph = _make("taobao-small-sim", scale=args.scale, seed=0)
    result = run_placement_comparison(graph, workload, placement)
    static, adaptive = result["static"], result["adaptive"]
    if args.json:
        _print_contract_payload(
            "cli_placement",
            "adaptive placement vs static partition (repro placement-bench)",
            [
                ("workload", dict(result["workload"])),
                ("static partition + importance cache", dict(static)),
                ("adaptive placement (controller on)", dict(adaptive)),
                (
                    "headline",
                    {
                        "remote_rpc_reduction": result["remote_rpc_reduction"],
                        "remote_read_reduction": result["remote_read_reduction"],
                        "p99_improvement": result["p99_improvement"],
                    },
                ),
            ],
        )
        return 0
    print(
        format_table(
            ["quantity", "static", "adaptive"],
            [
                ["remote RPCs", static["remote_rpcs"], adaptive["remote_rpcs"]],
                ["remote reads", static["remote_reads"], adaptive["remote_reads"]],
                ["local share", static["local_share"], adaptive["local_share"]],
                ["p50 us", static["p50_us"], adaptive["p50_us"]],
                ["p95 us", static["p95_us"], adaptive["p95_us"]],
                ["p99 us", static["p99_us"], adaptive["p99_us"]],
                [
                    "request total (ms)",
                    round(static["request_us"] / 1e3, 3),
                    round(adaptive["request_us"] / 1e3, 3),
                ],
            ],
            title=f"placement-bench: {args.phases} phases x {args.requests} "
            f"Zipf({args.zipf:g}) point reads, hot set rotated per phase",
        )
    )
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["decision epochs", adaptive["epochs"]],
                ["replicas promoted", adaptive["promoted"]],
                ["replicas demoted", adaptive["demoted"]],
                ["vertices migrated", adaptive["migrated"]],
                ["migration RPCs", adaptive["migration_rpcs"]],
                ["items migrated", adaptive["migrate_items"]],
                [
                    "max items / epoch",
                    f"{adaptive['max_epoch_items']} "
                    f"(budget {adaptive['epoch_item_budget']})",
                ],
                ["migrations aborted", adaptive["migrate_aborted"]],
                ["controller time (ms)", round(adaptive["placement_us"] / 1e3, 3)],
            ],
            title="adaptation (priced on the same virtual clock)",
        )
    )
    print(
        f"\nheadline: {result['remote_rpc_reduction']}x fewer remote RPCs, "
        f"p99 {static['p99_us']:g} -> {adaptive['p99_us']:g} us "
        f"({result['p99_improvement']}x)"
    )
    return 0


def _cmd_fault_matrix(args: argparse.Namespace) -> int:
    from repro.bench.fault_matrix import run_fault_matrix
    from repro.data import make_dataset as _make
    from repro.utils.tables import format_table

    graph = _make("taobao-small-sim", scale=args.scale, seed=0)
    try:
        rows = run_fault_matrix(
            graph,
            drop_rates=tuple(args.drop_rates),
            failed_workers=tuple(args.failed_workers),
            policies=tuple(args.policies),
            n_workers=args.workers,
            cache_fraction=args.cache_fraction,
            n_batches=args.batches,
            batch_size=args.batch_size,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        format_table(
            [
                "cell", "reads", "avail", "failover", "suspect",
                "degraded", "retries", "p95 us",
            ],
            [
                [
                    row.cell.label,
                    row.reads_total,
                    f"{row.availability:.4f}",
                    row.failover_reads,
                    row.suspect_routes,
                    row.degraded_reads,
                    row.retries,
                    f"{row.p95_latency_us:.0f}",
                ]
                for row in rows
            ],
            title="fault matrix: 2-hop GraphSAGE workload availability",
        )
    )
    worst = min(rows, key=lambda r: r.availability)
    print(f"\nworst cell: {worst.cell.label} at {worst.availability:.2%}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    graph = load_ahg(args.dataset)
    with np.load(args.embeddings) as data:
        embeddings = data["embeddings"]
    if embeddings.shape[0] != graph.n_vertices:
        print(
            f"embedding rows ({embeddings.shape[0]}) != graph vertices "
            f"({graph.n_vertices})",
            file=sys.stderr,
        )
        return 2
    split = train_test_split_edges(graph, args.holdout, seed=args.seed)
    result = evaluate_link_prediction(embeddings, split)
    print(
        f"ROC-AUC={result.roc_auc:.2f}%  PR-AUC={result.pr_auc:.2f}%  "
        f"F1={result.f1:.2f}%"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "dataset": _cmd_dataset,
        "info": _cmd_info,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "runtime-demo": _cmd_runtime_demo,
        "fault-matrix": _cmd_fault_matrix,
        "trace": _cmd_trace,
        "metrics-report": _cmd_metrics_report,
        "prefetch-demo": _cmd_prefetch_demo,
        "sampling-bench": _cmd_sampling_bench,
        "serve-bench": _cmd_serve_bench,
        "workload-report": _cmd_workload_report,
        "timeseries": _cmd_timeseries,
        "bench-compare": _cmd_bench_compare,
        "placement-bench": _cmd_placement_bench,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
