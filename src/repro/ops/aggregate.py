"""AGGREGATE implementations (paper §3.4).

All take the flattened neighbor-state matrix ``(batch * fanout, d_in)`` plus
the fanout, and emit ``(batch, d_out)``. The paper names element-wise mean,
max-pooling neural network and LSTM as the aggregating methods used across
GNNs; we add sum and (GAT-style) attention.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.nn.rnn import LSTMCell
from repro.nn.tensor import Tensor
from repro.ops.base import Aggregator, register_aggregator


@register_aggregator
class MeanAggregator(Aggregator):
    """Weighted element-wise mean followed by a dense transform
    (GraphSAGE-mean)."""

    name = "mean"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.dense = Dense(in_dim, out_dim, rng, activation="relu")

    def forward(self, neighbor_states: Tensor, fanout: int) -> Tensor:
        pooled = F.mean_rows_segmented(neighbor_states, fanout)
        return self.dense(pooled)


@register_aggregator
class SumAggregator(Aggregator):
    """Sum pooling followed by a dense transform (GCN-style, un-normalized)."""

    name = "sum"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.dense = Dense(in_dim, out_dim, rng, activation="relu")

    def forward(self, neighbor_states: Tensor, fanout: int) -> Tensor:
        pooled = F.sum_rows_segmented(neighbor_states, fanout)
        return self.dense(pooled)


@register_aggregator
class MaxPoolAggregator(Aggregator):
    """Max-pooling neural network (GraphSAGE-pool).

    Each neighbor state runs through a dense layer, then element-wise max
    over the segment.
    """

    name = "maxpool"

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        pool_dim: int | None = None,
    ) -> None:
        pool_dim = pool_dim or out_dim
        self.pre = Dense(in_dim, pool_dim, rng, activation="relu")
        self.post = Dense(pool_dim, out_dim, rng)

    def forward(self, neighbor_states: Tensor, fanout: int) -> Tensor:
        transformed = self.pre(neighbor_states)
        pooled = F.max_rows_segmented(transformed, fanout)
        return self.post(pooled)


@register_aggregator
class LSTMAggregator(Aggregator):
    """LSTM over the (randomly ordered) neighbor sequence (GraphSAGE-LSTM)."""

    name = "lstm"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.cell = LSTMCell(in_dim, out_dim, rng)

    def forward(self, neighbor_states: Tensor, fanout: int) -> Tensor:
        n, d = neighbor_states.shape
        if n % fanout:
            raise OperatorError(f"{n} rows not divisible by fanout {fanout}")
        batch = n // fanout
        h, c = self.cell.init_state(batch)
        for step in range(fanout):
            # Row i*fanout + step is vertex i's step-th neighbor.
            idx = np.arange(batch) * fanout + step
            x = neighbor_states.gather_rows(idx)
            h, c = self.cell(x, h, c)
        return h


@register_aggregator
class AttentionAggregator(Aggregator):
    """Attention-weighted neighbor mean (single-head, GAT-flavoured).

    Scores each neighbor with a learned vector over its transformed state
    and softmax-normalizes within the segment.
    """

    name = "attention"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.transform = Dense(in_dim, out_dim, rng)
        self.score = Dense(out_dim, 1, rng, bias=False)

    def forward(self, neighbor_states: Tensor, fanout: int) -> Tensor:
        n, _ = neighbor_states.shape
        if n % fanout:
            raise OperatorError(f"{n} rows not divisible by fanout {fanout}")
        batch = n // fanout
        transformed = self.transform(neighbor_states)  # (n, out)
        raw = self.score(F.tanh(transformed)).reshape(batch, fanout)
        weights = F.softmax(raw, axis=-1).reshape(n, 1)
        weighted = transformed * weights
        return F.sum_rows_segmented(weighted, fanout)


def make_aggregator(
    name: str, in_dim: int, out_dim: int, rng: np.random.Generator, **kwargs: object
) -> Aggregator:
    """Instantiate a registered aggregator by name."""
    from repro.ops.base import AGGREGATOR_REGISTRY

    try:
        cls = AGGREGATOR_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(AGGREGATOR_REGISTRY))
        raise OperatorError(f"unknown aggregator {name!r} (known: {known})") from None
    return cls(in_dim, out_dim, rng, **kwargs)
