"""AGGREGATE implementations (paper §3.4).

All take the flattened neighbor-state matrix ``(batch * fanout, d_in)`` plus
a segment spec, and emit ``(batch, d_out)``. The paper names element-wise
mean, max-pooling neural network and LSTM as the aggregating methods used
across GNNs; we add sum and (GAT-style) attention.

Segment spec: an ``int`` fanout means equal-size segments (the sampled
fixed-fanout fast path, reshape-based kernels); a 1-D **offsets array**
(``len batch+1``, CSR-style) means ragged segments, routed through the
:mod:`repro.nn.functional` ``segment_*`` kernels. Empty segments aggregate
to zeros (LSTM: the zero initial state).
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.nn.rnn import LSTMCell
from repro.nn.tensor import Tensor
from repro.ops.base import Aggregator, register_aggregator


def _as_offsets(fanout: "int | np.ndarray") -> "np.ndarray | None":
    """``None`` for an int fanout (fixed fast path), else the offsets array.

    Full validation of ragged offsets (monotone from 0, covering the row
    count) happens inside the segment kernels themselves.
    """
    if isinstance(fanout, (int, np.integer)):
        return None
    return np.asarray(fanout, dtype=np.int64)


@register_aggregator
class MeanAggregator(Aggregator):
    """Weighted element-wise mean followed by a dense transform
    (GraphSAGE-mean)."""

    name = "mean"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.dense = Dense(in_dim, out_dim, rng, activation="relu")

    def forward(self, neighbor_states: Tensor, fanout: "int | np.ndarray") -> Tensor:
        offsets = _as_offsets(fanout)
        if offsets is None:
            pooled = F.mean_rows_segmented(neighbor_states, fanout)
        else:
            pooled = F.segment_mean(neighbor_states, offsets)
        return self.dense(pooled)


@register_aggregator
class SumAggregator(Aggregator):
    """Sum pooling followed by a dense transform (GCN-style, un-normalized)."""

    name = "sum"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.dense = Dense(in_dim, out_dim, rng, activation="relu")

    def forward(self, neighbor_states: Tensor, fanout: "int | np.ndarray") -> Tensor:
        offsets = _as_offsets(fanout)
        if offsets is None:
            pooled = F.sum_rows_segmented(neighbor_states, fanout)
        else:
            pooled = F.segment_sum(neighbor_states, offsets)
        return self.dense(pooled)


@register_aggregator
class MaxPoolAggregator(Aggregator):
    """Max-pooling neural network (GraphSAGE-pool).

    Each neighbor state runs through a dense layer, then element-wise max
    over the segment.
    """

    name = "maxpool"

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        pool_dim: int | None = None,
    ) -> None:
        pool_dim = pool_dim or out_dim
        self.pre = Dense(in_dim, pool_dim, rng, activation="relu")
        self.post = Dense(pool_dim, out_dim, rng)

    def forward(self, neighbor_states: Tensor, fanout: "int | np.ndarray") -> Tensor:
        offsets = _as_offsets(fanout)
        transformed = self.pre(neighbor_states)
        if offsets is None:
            pooled = F.max_rows_segmented(transformed, fanout)
        else:
            pooled = F.segment_max(transformed, offsets)
        return self.post(pooled)


@register_aggregator
class LSTMAggregator(Aggregator):
    """LSTM over the (randomly ordered) neighbor sequence (GraphSAGE-LSTM)."""

    name = "lstm"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.cell = LSTMCell(in_dim, out_dim, rng)

    def forward(self, neighbor_states: Tensor, fanout: "int | np.ndarray") -> Tensor:
        offsets = _as_offsets(fanout)
        if offsets is not None:
            return self._forward_ragged(neighbor_states, offsets)
        n, d = neighbor_states.shape
        if n % fanout:
            raise OperatorError(f"{n} rows not divisible by fanout {fanout}")
        batch = n // fanout
        h, c = self.cell.init_state(batch)
        for step in range(fanout):
            # Row i*fanout + step is vertex i's step-th neighbor.
            idx = np.arange(batch) * fanout + step
            x = neighbor_states.gather_rows(idx)
            h, c = self.cell(x, h, c)
        return h

    def _forward_ragged(self, neighbor_states: Tensor, offsets: np.ndarray) -> Tensor:
        """Step the cell over ragged segments, shortest retiring first.

        Step ``t`` advances only the segments with more than ``t``
        neighbors: their step-``t`` rows are gathered, the cell runs on
        that packed sub-batch, and :meth:`~repro.nn.tensor.Tensor
        .scatter_rows` merges the updated ``(h, c)`` back — segments that
        already ran out keep their final state, empty segments keep the
        zero initial state.
        """
        sizes = np.diff(offsets)
        if sizes.size == 0 or np.any(sizes < 0):
            raise OperatorError("offsets must describe at least one segment")
        batch = sizes.size
        h, c = self.cell.init_state(batch)
        for step in range(int(sizes.max())):
            active = np.flatnonzero(sizes > step)
            x = neighbor_states.gather_rows(offsets[:-1][active] + step)
            h_new, c_new = self.cell(x, h.gather_rows(active), c.gather_rows(active))
            h = h.scatter_rows(active, h_new)
            c = c.scatter_rows(active, c_new)
        return h


@register_aggregator
class AttentionAggregator(Aggregator):
    """Attention-weighted neighbor mean (single-head, GAT-flavoured).

    Scores each neighbor with a learned vector over its transformed state
    and softmax-normalizes within the segment.
    """

    name = "attention"

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.transform = Dense(in_dim, out_dim, rng)
        self.score = Dense(out_dim, 1, rng, bias=False)

    def forward(self, neighbor_states: Tensor, fanout: "int | np.ndarray") -> Tensor:
        offsets = _as_offsets(fanout)
        n, _ = neighbor_states.shape
        transformed = self.transform(neighbor_states)  # (n, out)
        raw = self.score(F.tanh(transformed))  # (n, 1)
        if offsets is None:
            if n % fanout:
                raise OperatorError(f"{n} rows not divisible by fanout {fanout}")
            batch = n // fanout
            weights = F.softmax(raw.reshape(batch, fanout), axis=-1).reshape(n, 1)
            return F.sum_rows_segmented(transformed * weights, fanout)
        weights = F.segment_softmax(raw, offsets)
        return F.segment_sum(transformed * weights, offsets)


def make_aggregator(
    name: str, in_dim: int, out_dim: int, rng: np.random.Generator, **kwargs: object
) -> Aggregator:
    """Instantiate a registered aggregator by name."""
    from repro.ops.base import AGGREGATOR_REGISTRY

    try:
        cls = AGGREGATOR_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(AGGREGATOR_REGISTRY))
        raise OperatorError(f"unknown aggregator {name!r} (known: {known})") from None
    return cls(in_dim, out_dim, rng, **kwargs)
