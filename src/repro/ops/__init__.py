"""AliGraph operator layer (paper §3.4).

AGGREGATE collects a vertex's sampled neighborhood into one vector (the
convolution step); COMBINE merges it with the vertex's previous-hop state.
Both are plugins with forward and backward halves (backward via the autograd
engine), and the layer adds the paper's materialization cache for
intermediate ``ĥ^(k)`` vectors, which Table 5 shows saves an order of
magnitude of operator time within a mini-batch.
"""

from repro.ops.aggregate import (
    AttentionAggregator,
    LSTMAggregator,
    MaxPoolAggregator,
    MeanAggregator,
    SumAggregator,
    make_aggregator,
)
from repro.ops.base import AGGREGATOR_REGISTRY, COMBINER_REGISTRY
from repro.ops.combine import (
    ConcatCombiner,
    GRUCombiner,
    SumCombiner,
    make_combiner,
)
from repro.ops.materialize import MaterializationCache, MinibatchExecutor

__all__ = [
    "MeanAggregator",
    "SumAggregator",
    "MaxPoolAggregator",
    "LSTMAggregator",
    "AttentionAggregator",
    "make_aggregator",
    "SumCombiner",
    "ConcatCombiner",
    "GRUCombiner",
    "make_combiner",
    "MaterializationCache",
    "MinibatchExecutor",
    "AGGREGATOR_REGISTRY",
    "COMBINER_REGISTRY",
]
