"""Materialization of intermediate embeddings (paper §3.4, Table 5).

The paper accelerates AGGREGATE/COMBINE by sharing sampled neighbor sets
across a mini-batch and storing the *newest* intermediate vectors
``ĥ^(1..kmax)`` so repeated vertices are not recomputed. Two execution paths
implement the comparison of Table 5:

* **uncached** — each occurrence of a vertex in the sampled expansion tree
  recomputes its embedding (the naive per-vertex GNN recursion, flattened);
* **cached** — hop-k vectors are deduplicated within the batch and reused
  from the :class:`MaterializationCache` across batches ("the stored vector
  ĥ^(k) is updated by ĥ_v^(k)").

Both run the *same* operator plugins, so the measured gap is purely the
eliminated recomputation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError
from repro.nn.tensor import Tensor
from repro.sampling.base import NeighborProvider
from repro.sampling.neighborhood import _ExpandingSampler


class MaterializationCache:
    """Per-hop store of the newest ``ĥ^(k)`` vector of each vertex.

    Array-backed: each hop holds a *sorted* int64 key array plus a
    position array indexing into an append-only contiguous row buffer, so
    lookups are one ``np.isin``, gathers one ``np.searchsorted`` + fancy
    index, and updates overwrite existing rows in place / append new ones
    (buffer grown geometrically) — no per-vertex Python dict traffic on
    the training hot path, and no full-matrix rebuild per update.
    """

    def __init__(self, max_hop: int) -> None:
        if max_hop < 1:
            raise OperatorError("materialization cache needs max_hop >= 1")
        self.max_hop = max_hop
        self._keys: list[np.ndarray] = [
            np.zeros(0, dtype=np.int64) for _ in range(max_hop + 1)
        ]
        self._pos: list[np.ndarray] = [
            np.zeros(0, dtype=np.int64) for _ in range(max_hop + 1)
        ]
        self._buf: "list[np.ndarray | None]" = [None] * (max_hop + 1)
        self._len: list[int] = [0] * (max_hop + 1)
        self.hits = 0
        self.misses = 0

    def lookup(self, hop: int, vertices: np.ndarray) -> tuple[np.ndarray, list[int]]:
        """Split ``vertices`` into (cached mask, missing list) for ``hop``."""
        verts = np.asarray(vertices, dtype=np.int64)
        keys = self._keys[hop]
        if keys.size:
            mask = np.isin(verts, keys)
        else:
            mask = np.zeros(verts.shape, dtype=bool)
        self.hits += int(mask.sum())
        self.misses += int((~mask).sum())
        missing = [int(v) for v in verts[~mask]]
        return mask, missing

    def get_rows(self, hop: int, vertices: np.ndarray) -> np.ndarray:
        """Stacked cached rows (every vertex must be present)."""
        verts = np.asarray(vertices, dtype=np.int64)
        keys = self._keys[hop]
        if keys.size == 0:
            if verts.size == 0:
                raise OperatorError(f"nothing materialized at hop {hop}")
            raise OperatorError(
                f"vertex {int(verts.flat[0])} not materialized at hop {hop}"
            )
        idx = np.searchsorted(keys, verts)
        idx_clipped = np.minimum(idx, keys.size - 1)
        present = keys[idx_clipped] == verts
        if not present.all():
            first = verts[~present][0]
            raise OperatorError(
                f"vertex {int(first)} not materialized at hop {hop}"
            )
        return self._buf[hop][self._pos[hop][idx_clipped]]

    def update(self, hop: int, vertices: np.ndarray, values: np.ndarray) -> None:
        """Store/refresh the hop-``hop`` vectors of ``vertices``."""
        if len(vertices) != len(values):
            raise OperatorError("vertices/values length mismatch")
        verts = np.asarray(vertices, dtype=np.int64).reshape(-1)
        vals = np.asarray(values)
        if verts.size == 0:
            return
        # Last write wins for repeated vertices, matching per-vertex dict
        # assignment order: unique over the reversed array keeps each
        # vertex's *last* occurrence.
        uniq, rev_idx = np.unique(verts[::-1], return_index=True)
        new_rows = vals[verts.size - 1 - rev_idx]
        keys = self._keys[hop]
        if self._buf[hop] is None:
            cap = max(64, 2 * uniq.size)
            self._buf[hop] = np.empty(
                (cap,) + new_rows.shape[1:], dtype=new_rows.dtype
            )
        buf = self._buf[hop]
        idx = np.searchsorted(keys, uniq)
        idx_clipped = np.minimum(idx, max(keys.size - 1, 0))
        present = (
            (keys[idx_clipped] == uniq)
            if keys.size
            else np.zeros(uniq.shape, dtype=bool)
        )
        if present.any():
            buf[self._pos[hop][idx_clipped[present]]] = new_rows[present]
        absent = ~present
        n_new = int(absent.sum())
        if n_new:
            used = self._len[hop]
            if used + n_new > buf.shape[0]:
                cap = max(2 * buf.shape[0], used + n_new)
                grown = np.empty((cap,) + buf.shape[1:], dtype=buf.dtype)
                grown[:used] = buf[:used]
                self._buf[hop] = buf = grown
            buf[used : used + n_new] = new_rows[absent]
            ins = idx[absent]
            self._keys[hop] = np.insert(keys, ins, uniq[absent])
            self._pos[hop] = np.insert(
                self._pos[hop],
                ins,
                np.arange(used, used + n_new, dtype=np.int64),
            )
            self._len[hop] = used + n_new

    def invalidate(self) -> None:
        """Drop everything (call after a parameter update in training)."""
        for hop in range(self.max_hop + 1):
            self._keys[hop] = np.zeros(0, dtype=np.int64)
            self._pos[hop] = np.zeros(0, dtype=np.int64)
            self._buf[hop] = None
            self._len[hop] = 0

    @property
    def hit_rate(self) -> float:
        """Lookup hit fraction since construction."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MinibatchExecutor:
    """Runs the hop-k AGGREGATE/COMBINE recursion over a sampled context.

    Parameters
    ----------
    features:
        ``(n, f)`` input features (``h^(0) = x_v``).
    provider:
        Adjacency source for sampling.
    sampler:
        A neighborhood sampler (any :class:`_ExpandingSampler`).
    aggregators, combiners:
        One per hop, innermost first: hop-k uses ``aggregators[k-1]`` /
        ``combiners[k-1]``.
    fanouts:
        Neighbor samples per hop (aligned with aggregators).
    """

    def __init__(
        self,
        features: np.ndarray,
        provider: NeighborProvider,
        sampler: _ExpandingSampler,
        aggregators: "list[object]",
        combiners: "list[object]",
        fanouts: "list[int]",
    ) -> None:
        if not (len(aggregators) == len(combiners) == len(fanouts)):
            raise OperatorError("need one aggregator/combiner/fanout per hop")
        if any(f < 1 for f in fanouts):
            raise OperatorError(f"fanouts must be positive, got {fanouts}")
        self.features = np.asarray(features, dtype=np.float64)
        self.provider = provider
        self.sampler = sampler
        self.aggregators = list(aggregators)
        self.combiners = list(combiners)
        self.fanouts = list(fanouts)
        self.kmax = len(fanouts)

    # ------------------------------------------------------------------ #
    # Uncached: full-multiplicity recomputation
    # ------------------------------------------------------------------ #
    def embed_batch_uncached(
        self, batch: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """h^(kmax) per seed, recomputing every tree occurrence."""
        batch = np.asarray(batch, dtype=np.int64)
        sample = self.sampler.sample(batch, self.fanouts, rng)
        layers = sample.layers  # multiplicity arrays, layer j size B*prod(f_1..f_j)
        # states[j] holds h^(k) rows for layer j at the current k.
        states = [Tensor(self.features[layer]) for layer in layers]
        for k in range(1, self.kmax + 1):
            agg = self.aggregators[k - 1]
            comb = self.combiners[k - 1]
            new_states = []
            for j in range(len(layers) - k):
                fanout = self.fanouts[j]
                h_neigh = agg(states[j + 1], fanout)
                new_states.append(comb(states[j], h_neigh))
            states = new_states
        return states[0].numpy()

    # ------------------------------------------------------------------ #
    # Cached: dedup + materialization
    # ------------------------------------------------------------------ #
    def embed_batch_cached(
        self,
        batch: np.ndarray,
        rng: np.random.Generator,
        cache: MaterializationCache,
    ) -> np.ndarray:
        """h^(kmax) per seed with per-hop dedup and ĥ^(k) reuse.

        Sampled neighbor sets are shared across the mini-batch: each
        distinct vertex gets one neighbor sample per hop level.
        """
        batch = np.asarray(batch, dtype=np.int64)
        if cache.max_hop < self.kmax:
            raise OperatorError(
                f"cache depth {cache.max_hop} < executor kmax {self.kmax}"
            )
        # Top-down pruning pass: at each hop, only cache-missing vertices
        # sample children; their children become the next hop's demand. A
        # warm cache therefore skips both sampling and compute.
        missing_at: dict[int, np.ndarray] = {}
        children_at: dict[int, np.ndarray] = {}
        demand = np.unique(batch)
        for k in range(self.kmax, 0, -1):
            _, missing = cache.lookup(k, demand)
            missing_arr = np.asarray(missing, dtype=np.int64)
            missing_at[k] = missing_arr
            if missing_arr.size:
                fanout = self.fanouts[self.kmax - k]
                kids, _ = self.sampler.sample_children(missing_arr, fanout, rng)
                kids = kids.reshape(-1)
            else:
                kids = np.zeros(0, dtype=np.int64)
            children_at[k] = kids
            demand = np.unique(np.concatenate([missing_arr, kids]))

        def rows_for(hop: int, vertices: np.ndarray) -> np.ndarray:
            if hop == 0:
                return self.features[vertices]
            return cache.get_rows(hop, vertices)

        # Bottom-up compute of exactly the missing vectors.
        for k in range(1, self.kmax + 1):
            missing_arr = missing_at[k]
            if missing_arr.size == 0:
                continue
            fanout = self.fanouts[self.kmax - k]
            h_children = Tensor(rows_for(k - 1, children_at[k]))
            h_self = Tensor(rows_for(k - 1, missing_arr))
            agg = self.aggregators[k - 1]
            comb = self.combiners[k - 1]
            h_new = comb(h_self, agg(h_children, fanout)).numpy()
            cache.update(k, missing_arr, h_new)
        return cache.get_rows(self.kmax, batch)
