"""COMBINE implementations (paper §3.4).

COMBINE merges a vertex's previous-hop embedding ``h_v^(k-1)`` with the
aggregated neighborhood vector ``h'_v`` into ``h_v^(k)``. "Usually, in
existing GNN methods, h^(k-1) and h' are summed together to [be] fed into a
deep neural network" — that is :class:`SumCombiner`; GraphSAGE concatenates
(:class:`ConcatCombiner`); gated variants use a GRU (:class:`GRUCombiner`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.nn.rnn import GRUCell
from repro.nn.tensor import Tensor
from repro.ops.base import Combiner, register_combiner


@register_combiner
class SumCombiner(Combiner):
    """``h^(k) = act(W (h^(k-1) + h'))`` — requires matching dims."""

    name = "sum"

    def __init__(
        self, self_dim: int, neigh_dim: int, out_dim: int, rng: np.random.Generator
    ) -> None:
        if self_dim != neigh_dim:
            raise OperatorError(
                f"sum combine needs matching dims, got {self_dim} and {neigh_dim}"
            )
        self.dense = Dense(self_dim, out_dim, rng, activation="tanh")

    def forward(self, h_self: Tensor, h_neigh: Tensor) -> Tensor:
        return self.dense(h_self + h_neigh)


@register_combiner
class ConcatCombiner(Combiner):
    """``h^(k) = act(W [h^(k-1); h'])`` — the GraphSAGE combine."""

    name = "concat"

    def __init__(
        self, self_dim: int, neigh_dim: int, out_dim: int, rng: np.random.Generator
    ) -> None:
        self.dense = Dense(self_dim + neigh_dim, out_dim, rng, activation="tanh")

    def forward(self, h_self: Tensor, h_neigh: Tensor) -> Tensor:
        return self.dense(F.concat([h_self, h_neigh], axis=-1))


@register_combiner
class GRUCombiner(Combiner):
    """``h^(k) = GRU(input=h', state=h^(k-1))`` — gated combine."""

    name = "gru"

    def __init__(
        self, self_dim: int, neigh_dim: int, out_dim: int, rng: np.random.Generator
    ) -> None:
        if self_dim != out_dim:
            raise OperatorError(
                f"gru combine keeps state width: self_dim {self_dim} must equal "
                f"out_dim {out_dim}"
            )
        self.cell = GRUCell(neigh_dim, out_dim, rng)

    def forward(self, h_self: Tensor, h_neigh: Tensor) -> Tensor:
        return self.cell(h_neigh, h_self)


def make_combiner(
    name: str,
    self_dim: int,
    neigh_dim: int,
    out_dim: int,
    rng: np.random.Generator,
) -> Combiner:
    """Instantiate a registered combiner by name."""
    from repro.ops.base import COMBINER_REGISTRY

    try:
        cls = COMBINER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(COMBINER_REGISTRY))
        raise OperatorError(f"unknown combiner {name!r} (known: {known})") from None
    return cls(self_dim, neigh_dim, out_dim, rng)
