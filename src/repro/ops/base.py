"""Operator plugin registries.

Mirrors the paper's design: AGGREGATE and COMBINE "are plugins of AliGraph,
which can be implemented independently"; a typical operator has forward and
backward computations so it slots into an end-to-end network. Forward lives
in each operator's ``forward``; backward comes for free from the autograd
engine, so registering an operator only requires naming it.
"""

from __future__ import annotations

from repro.errors import OperatorError
from repro.nn.layers import Module

AGGREGATOR_REGISTRY: dict[str, type] = {}
COMBINER_REGISTRY: dict[str, type] = {}


def register_aggregator(cls: type) -> type:
    """Class decorator adding an AGGREGATE implementation to the registry."""
    name = getattr(cls, "name", None)
    if not name:
        raise OperatorError("aggregators must define a class attribute 'name'")
    AGGREGATOR_REGISTRY[name] = cls
    return cls


def register_combiner(cls: type) -> type:
    """Class decorator adding a COMBINE implementation to the registry."""
    name = getattr(cls, "name", None)
    if not name:
        raise OperatorError("combiners must define a class attribute 'name'")
    COMBINER_REGISTRY[name] = cls
    return cls


class Aggregator(Module):
    """AGGREGATE: maps ``(batch*fanout, d_in)`` neighbor states to
    ``(batch, d_out)``."""

    name = "abstract"
    out_multiplier = 1  # out_dim = out_multiplier * hidden (informational)


class Combiner(Module):
    """COMBINE: merges ``(batch, d_self)`` with ``(batch, d_neigh)`` into
    ``(batch, d_out)``."""

    name = "abstract"
