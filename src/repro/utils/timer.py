"""Wall-clock timing and simulated-cost accounting.

The paper's system experiments (Figures 7–9, Tables 4–5) were measured on an
Alibaba production cluster. We reproduce them on one machine by combining:

* :class:`Timer` — real wall-clock measurement of our pure-Python operators
  (meaningful where the paper's claim is about *recomputation avoided*, e.g.
  Table 5's operator cache), and
* :class:`CostAccumulator` — exact event counting (local reads, remote RPCs,
  cache hits, bytes moved) converted to modelled time through a calibratable
  per-event cost table. The *shape* of every storage-layer result depends only
  on these counts, which we measure exactly.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field


class Timer:
    """Context-manager wall-clock timer with an accumulating total.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps = 0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._start
        self.laps += 1

    @property
    def mean(self) -> float:
        """Mean seconds per lap (0.0 before the first lap)."""
        return self.elapsed / self.laps if self.laps else 0.0


@dataclass
class CostAccumulator:
    """Counts named events and prices them with a per-event cost table.

    ``costs`` maps event name -> cost in *microseconds per event*; events
    without a price contribute zero time but are still counted (useful for
    pure bookkeeping like ``bytes_sent``).

    ``trace_hook`` is the tracing layer's tap: when set (see
    :meth:`repro.runtime.tracing.Tracer.bind_ledger`) every recorded event
    is also stamped onto the active trace span, giving each ledger row a
    ``(trace_id, span_id)`` cross-reference. Untraced runs pay one ``is
    None`` check per record.
    """

    costs: dict[str, float] = field(default_factory=dict)
    counts: Counter = field(default_factory=Counter)
    trace_hook: "object | None" = field(default=None, repr=False, compare=False)

    def record(self, event: str, times: int = 1) -> None:
        """Record ``times`` occurrences of ``event``."""
        if times < 0:
            raise ValueError(f"cannot record a negative count: {times}")
        self.counts[event] += times
        if self.trace_hook is not None:
            self.trace_hook(event, times)

    def count(self, event: str) -> int:
        """Occurrences recorded for ``event`` so far."""
        return self.counts[event]

    def modelled_micros(self) -> float:
        """Total modelled time in microseconds under the cost table."""
        return sum(self.costs.get(ev, 0.0) * n for ev, n in self.counts.items())

    def modelled_millis(self) -> float:
        """Total modelled time in milliseconds."""
        return self.modelled_micros() / 1000.0

    def merge(self, other: "CostAccumulator") -> "CostAccumulator":
        """Fold another accumulator's counts into this one (returns self).

        Per-server runtime ledgers combine into a cluster-wide view this
        way; prices missing from this accumulator's table are adopted from
        ``other`` so the merged modelled time stays complete.
        """
        self.counts.update(other.counts)
        for event, price in other.costs.items():
            self.costs.setdefault(event, price)
        return self

    def summary(self) -> str:
        """Readable per-event breakdown: count, unit price, modelled time.

        Events are ordered by modelled-time contribution (heaviest first),
        then alphabetically, with a total row — printable as-is by benchmarks
        instead of ad-hoc dict poking.
        """
        lines = [f"{'event':<16} {'count':>10} {'us/event':>10} {'total_ms':>10}"]
        rows = sorted(
            self.counts.items(),
            key=lambda kv: (-self.costs.get(kv[0], 0.0) * kv[1], kv[0]),
        )
        for event, n in rows:
            price = self.costs.get(event, 0.0)
            lines.append(
                f"{event:<16} {n:>10} {price:>10.4g} {price * n / 1000.0:>10.4g}"
            )
        lines.append(
            f"{'TOTAL':<16} {sum(self.counts.values()):>10} {'':>10} "
            f"{self.modelled_millis():>10.4g}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        events = "+".join(f"{ev}:{n}" for ev, n in sorted(self.counts.items()))
        return (
            f"CostAccumulator({events or 'empty'}, "
            f"modelled={self.modelled_millis():.4g}ms)"
        )

    def reset(self) -> None:
        """Zero all counters (the cost table is kept)."""
        self.counts.clear()
