"""Plain-text table rendering for the benchmark harness.

Every bench prints its reproduction of a paper table/figure as an aligned
ASCII table so the output can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have exactly one cell per header")
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
