"""Alias method for O(1) sampling from a discrete distribution.

The sampling layer draws weighted neighbors and degree-biased negatives many
millions of times per epoch, so constant-time draws matter. The alias table is
built in O(n) (Vose's algorithm) and supports O(1) single draws as well as
vectorized batch draws.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError


class AliasTable:
    """Precomputed alias table over ``weights`` (need not be normalized).

    Draws return integer indices in ``[0, len(weights))`` distributed
    proportionally to the weights.
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise SamplingError("alias table needs a non-empty 1-D weight vector")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise SamplingError("alias table weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise SamplingError("alias table weights must not all be zero")

        n = weights.size
        prob = weights * (n / total)
        self._prob = np.ones(n, dtype=np.float64)
        self._alias = np.arange(n, dtype=np.int64)

        small = [i for i in range(n) if prob[i] < 1.0]
        large = [i for i in range(n) if prob[i] >= 1.0]
        while small and large:
            s = small.pop()
            g = large.pop()
            self._prob[s] = prob[s]
            self._alias[s] = g
            prob[g] = prob[g] - (1.0 - prob[s])
            if prob[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        # Leftovers are 1.0 up to floating point; leave prob=1, alias=self.
        self._n = n

    def __len__(self) -> int:
        return self._n

    def draw(self, rng: np.random.Generator) -> int:
        """Draw a single index in O(1)."""
        i = int(rng.integers(self._n))
        if rng.random() < self._prob[i]:
            return i
        return int(self._alias[i])

    def draw_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` indices as a vectorized batch."""
        if size < 0:
            raise SamplingError(f"batch size must be non-negative, got {size}")
        idx = rng.integers(self._n, size=size)
        keep = rng.random(size) < self._prob[idx]
        return np.where(keep, idx, self._alias[idx]).astype(np.int64)
