"""Alias method for O(1) sampling from discrete distributions.

The sampling layer draws weighted neighbors and degree-biased negatives many
millions of times per epoch, so constant-time draws matter. Two table shapes:

* :class:`AliasTable` — one distribution (one adjacency list, one noise
  distribution);
* :class:`GroupedAliasTable` — many distributions packed into one flat
  ``prob``/``alias`` array pair spanning all groups (all adjacency lists of a
  CSR snapshot), so a whole *frontier* of weighted draws is one vectorized
  kernel call instead of one table lookup per vertex.

Both are built by the same vectorized Vose construction
(:func:`build_alias_arrays`): instead of the classic per-element Python
small/large stacks, groups are processed in lock-step rounds — every active
group resolves exactly one slot per round, so the build costs
``O(maxdeg)`` vectorized numpy passes rather than ``O(nnz)`` interpreted
steps. Draw distributions are identical to the stack-based construction
(the alias pairing may differ; the implied probabilities do not).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError


def build_alias_arrays(
    weights: np.ndarray, indptr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized grouped Vose construction.

    ``weights`` is a flat non-negative array; ``indptr`` (size ``G+1``)
    delimits ``G`` consecutive groups, each an independent distribution
    (empty groups allowed, all-zero non-empty groups rejected). Returns flat
    ``(prob, alias)`` arrays aligned with ``weights``: a draw for group ``g``
    picks a uniform slot ``i`` in ``[indptr[g], indptr[g+1])`` and keeps it
    with probability ``prob[i]``, else takes ``alias[i]``.

    The construction sorts each group's scaled weights ascending and walks
    two pointers per group — ``lo`` at the smallest original value, ``hi``
    at the largest with a running residual.  Per round, every active group
    either (a) pairs its smallest slot with the residual holder when the
    residual is still >= 1, or (b) closes the residual holder against the
    next-largest slot when the residual dropped below 1.  Each round
    resolves one slot per active group, and every group op is a masked
    numpy gather/scatter, so rounds are vectorized across the whole CSR.
    """
    weights = np.asarray(weights, dtype=np.float64)
    indptr = np.asarray(indptr, dtype=np.int64)
    if weights.ndim != 1:
        raise SamplingError("alias weights must be a 1-D vector")
    if indptr.ndim != 1 or indptr.size < 2:
        raise SamplingError("alias group indptr needs at least two offsets")
    if indptr[0] != 0 or indptr[-1] != weights.size or np.any(np.diff(indptr) < 0):
        raise SamplingError("alias group indptr must be monotone over the weights")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise SamplingError("alias table weights must be finite and non-negative")

    n = weights.size
    sizes = np.diff(indptr)
    cumw = np.concatenate([[0.0], np.cumsum(weights)])
    sums = cumw[indptr[1:]] - cumw[indptr[:-1]]
    if np.any((sums <= 0) & (sizes > 0)):
        raise SamplingError("alias table weights must not all be zero")

    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)
    if n == 0:
        return prob, alias

    # Scale each group so its weights sum to its size (mean 1.0).
    scale = np.ones_like(sums)
    nonempty = sizes > 0
    scale[nonempty] = sizes[nonempty] / sums[nonempty]
    gids = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
    scaled = weights * scale[gids]

    # Within-group ascending sort of the scaled weights (stable, so equal
    # weights keep CSR order).
    order = np.lexsort((scaled, gids))
    lo = indptr[:-1].copy()
    hi = indptr[1:] - 1
    res = np.zeros(sizes.size, dtype=np.float64)
    res[nonempty] = scaled[order[hi[nonempty]]]

    active = np.flatnonzero(hi > lo)
    while active.size:
        case_b = res[active] < 1.0
        a = active[~case_b]
        if a.size:
            # Smallest remaining slot keeps its own mass; the deficit is
            # donated by the current residual holder.
            small = order[lo[a]]
            prob[small] = np.minimum(scaled[small], 1.0)
            alias[small] = order[hi[a]]
            res[a] -= 1.0 - prob[small]
            lo[a] += 1
        b = active[case_b]
        if b.size:
            # The residual holder itself fell below 1: close it against the
            # next-largest slot, which inherits the deficit.
            head = order[hi[b]]
            prob[head] = np.maximum(res[b], 0.0)
            alias[head] = order[hi[b] - 1]
            hi[b] -= 1
            res[b] = scaled[order[hi[b]]] - (1.0 - prob[head])
        active = active[lo[active] < hi[active]]
    # The last remaining slot of each group holds residual ~1.0 up to
    # floating point; prob=1, alias=self was pre-filled.
    return prob, alias


class AliasTable:
    """Precomputed alias table over ``weights`` (need not be normalized).

    Draws return integer indices in ``[0, len(weights))`` distributed
    proportionally to the weights.
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise SamplingError("alias table needs a non-empty 1-D weight vector")
        self._prob, self._alias = build_alias_arrays(
            weights, np.array([0, weights.size], dtype=np.int64)
        )
        self._n = weights.size

    def __len__(self) -> int:
        return self._n

    def draw(self, rng: np.random.Generator) -> int:
        """Draw a single index in O(1)."""
        i = int(rng.integers(self._n))
        if rng.random() < self._prob[i]:
            return i
        return int(self._alias[i])

    def draw_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` indices as a vectorized batch."""
        if size < 0:
            raise SamplingError(f"batch size must be non-negative, got {size}")
        idx = rng.integers(self._n, size=size)
        keep = rng.random(size) < self._prob[idx]
        return np.where(keep, idx, self._alias[idx]).astype(np.int64)


class GroupedAliasTable:
    """One flat alias table spanning many packed distributions.

    Built over a flat ``weights`` array delimited by ``indptr`` — exactly the
    layout of a CSR adjacency snapshot, where group ``g`` is vertex ``g``'s
    neighbor list. A frontier of weighted neighbor draws then costs one
    vectorized kernel call (:meth:`draw_for_groups`) instead of a Python
    loop over per-vertex :class:`AliasTable` lookups.
    """

    def __init__(self, weights: np.ndarray, indptr: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=np.float64)
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._prob, self._alias = build_alias_arrays(self._weights, self._indptr)
        self._sizes = np.diff(self._indptr)

    @property
    def n_groups(self) -> int:
        """Number of packed distributions."""
        return int(self._sizes.size)

    def __len__(self) -> int:
        """Total slots across all groups."""
        return int(self._weights.size)

    def group_size(self, group: int) -> int:
        """Number of slots in ``group``."""
        return int(self._sizes[group])

    def probabilities(self) -> np.ndarray:
        """The implied per-slot draw probabilities (sums to 1 per group).

        Reconstructed from the ``prob``/``alias`` arrays — the distribution
        the table actually samples, used by the equivalence tests.
        """
        n = self._weights.size
        out = self._prob.copy()
        np.add.at(out, self._alias, 1.0 - self._prob)
        sizes = self._sizes[np.repeat(np.arange(self.n_groups), self._sizes)]
        return out / np.maximum(sizes, 1) if n else out

    def draw_for_groups(
        self, groups: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``(len(groups), count)`` flat slot indices, one row per group.

        Every listed group must be non-empty (callers pad empty adjacency
        rows before dispatching here). Returned indices point into the flat
        ``weights`` array — for a CSR snapshot, directly into ``indices``.
        """
        if count < 0:
            raise SamplingError(f"draw count must be non-negative, got {count}")
        groups = np.asarray(groups, dtype=np.int64)
        sizes = self._sizes[groups]
        if np.any(sizes == 0):
            empty = int(groups[np.argmax(sizes == 0)])
            raise SamplingError(f"cannot draw from empty alias group {empty}")
        slot = rng.integers(0, sizes[:, None], size=(groups.size, count))
        flat = self._indptr[groups][:, None] + slot
        keep = rng.random((groups.size, count)) < self._prob[flat]
        return np.where(keep, flat, self._alias[flat])

    def draw_group(
        self, group: int, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``size`` flat slot indices from one group (vectorized batch)."""
        return self.draw_for_groups(np.array([group]), size, rng)[0]

    def update_group(self, group: int, weights: np.ndarray) -> None:
        """Rebuild one group's slots in place (dynamic sampling weights).

        The paper's trainable sampler nudges one vertex's edge weights per
        backward step; rebuilding only that group keeps the flat table
        valid without touching the other ``n_groups - 1`` distributions.
        """
        if not 0 <= group < self.n_groups:
            raise SamplingError(f"alias group {group} out of range")
        weights = np.asarray(weights, dtype=np.float64)
        start, end = int(self._indptr[group]), int(self._indptr[group + 1])
        if weights.shape != (end - start,):
            raise SamplingError(
                f"group {group} holds {end - start} slots, got {weights.shape}"
            )
        prob, alias = build_alias_arrays(
            weights, np.array([0, weights.size], dtype=np.int64)
        )
        self._weights[start:end] = weights
        self._prob[start:end] = prob
        self._alias[start:end] = alias + start
