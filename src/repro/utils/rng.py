"""Deterministic random number generation helpers.

Every stochastic component in the library takes either a seed or a
:class:`numpy.random.Generator`. These helpers normalize the two and derive
independent child generators so that experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an int (seeded generator), an existing generator (returned
    as-is) or ``None`` (fresh OS-entropy generator). Library code should call
    this exactly once at its entry point and pass the generator downward.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used to hand one stream to each simulated graph server / sampler so that
    adding a worker does not perturb the streams of the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
