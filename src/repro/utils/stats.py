"""Small self-contained statistics helpers for sampler equivalence checks.

The batched sampling kernels are validated *distributionally* against the
scalar reference backend (the two consume RNG streams differently, so
bit-equality is only required of the deterministic samplers). The tests and
benchmarks need chi-square p-values for that; to keep the repo dependency-
free these are computed here from scratch via the regularized incomplete
gamma function (series + continued-fraction forms, Numerical Recipes style)
rather than pulling in scipy.

The module also hosts the seeded :class:`ZipfSampler` — the hot-key skew
generator behind the serving tier's load shapes (and a reusable building
block for hub-weighted workloads elsewhere): rank-``r`` of a population of
``n`` keys is drawn with probability proportional to ``r ** -exponent``,
the canonical model of "a few users dominate the traffic".
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError

_MAX_ITER = 500
_EPS = 3.0e-14


def _lower_gamma_series(s: float, x: float) -> float:
    """P(s, x) by series expansion — converges fast for x < s + 1."""
    term = 1.0 / s
    total = term
    a = s
    for _ in range(_MAX_ITER):
        a += 1.0
        term *= x / a
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    return total * math.exp(-x + s * math.log(x) - math.lgamma(s))


def _upper_gamma_cf(s: float, x: float) -> float:
    """Q(s, x) by Lentz continued fraction — converges fast for x >= s + 1."""
    tiny = 1.0e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITER + 1):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def gammainc_lower(s: float, x: float) -> float:
    """Regularized lower incomplete gamma P(s, x), for s > 0, x >= 0."""
    if s <= 0:
        raise ReproError(f"gamma shape must be positive, got {s}")
    if x < 0:
        raise ReproError(f"gamma argument must be non-negative, got {x}")
    if x == 0.0:
        return 0.0
    if x < s + 1.0:
        return _lower_gamma_series(s, x)
    return 1.0 - _upper_gamma_cf(s, x)


def chi2_sf(stat: float, df: int) -> float:
    """Chi-square survival function P(X >= stat) with ``df`` degrees."""
    if df < 1:
        raise ReproError(f"chi-square df must be positive, got {df}")
    if stat <= 0.0:
        return 1.0
    if stat < df + 1.0:
        return 1.0 - _lower_gamma_series(df / 2.0, stat / 2.0)
    return _upper_gamma_cf(df / 2.0, stat / 2.0)


def chi_square_gof(counts: np.ndarray, probs: np.ndarray) -> "tuple[float, float]":
    """Goodness-of-fit of observed ``counts`` against expected ``probs``.

    Returns ``(statistic, p_value)``. Zero-probability cells must hold zero
    counts (p-value 0.0 otherwise); cells are not pooled, so callers should
    draw enough samples for expected counts of a few per cell.
    """
    counts = np.asarray(counts, dtype=np.float64)
    probs = np.asarray(probs, dtype=np.float64)
    if counts.shape != probs.shape or counts.ndim != 1:
        raise ReproError("counts and probs must be aligned 1-D vectors")
    total = counts.sum()
    if total <= 0:
        raise ReproError("chi-square needs at least one observation")
    zero = probs <= 0
    if np.any(counts[zero] > 0):
        return math.inf, 0.0
    live = ~zero
    expected = probs[live] / probs[live].sum() * total
    stat = float(np.sum((counts[live] - expected) ** 2 / expected))
    df = int(live.sum()) - 1
    if df < 1:
        return stat, 1.0
    return stat, chi2_sf(stat, df)


def zipf_probs(n: int, exponent: float = 1.1) -> np.ndarray:
    """Normalized Zipf probabilities over ranks ``1..n``.

    ``probs[r] ∝ (r + 1) ** -exponent`` (0-indexed), so index 0 is the
    hottest key. ``exponent`` may be any non-negative value; 0 degrades to
    the uniform distribution, which makes "skew off" a parameter choice
    rather than a separate code path.
    """
    if n < 1:
        raise ReproError(f"zipf population must be >= 1, got {n}")
    if exponent < 0:
        raise ReproError(f"zipf exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    probs = ranks ** -float(exponent)
    return probs / probs.sum()


class ZipfSampler:
    """Seeded hot-key sampler: rank-skewed draws from a fixed population.

    ``population`` is an id array whose *order defines hotness* (index 0 is
    rank 1, the hottest). Draws are vectorized — inverse-CDF via
    ``np.searchsorted`` on the precomputed cumulative distribution — and
    consume the caller's RNG stream, so two same-seed runs replay the same
    key sequence bit for bit.
    """

    def __init__(
        self, population: "np.ndarray | int", exponent: float = 1.1
    ) -> None:
        if isinstance(population, (int, np.integer)):
            population = np.arange(int(population), dtype=np.int64)
        self.population = np.asarray(population).reshape(-1)
        self.exponent = float(exponent)
        self.probs = zipf_probs(self.population.size, exponent)
        self._cdf = np.cumsum(self.probs)
        # Guard the last bin against floating-point undershoot so a draw of
        # u -> 1.0 can never index past the population.
        self._cdf[-1] = 1.0

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` keys (with replacement) from the population."""
        if size < 0:
            raise ReproError(f"sample size must be >= 0, got {size}")
        idx = np.searchsorted(self._cdf, rng.random(size), side="right")
        return self.population[idx]


def chi_square_homogeneity(
    counts_a: np.ndarray, counts_b: np.ndarray
) -> "tuple[float, float]":
    """Two-sample test: were ``counts_a`` and ``counts_b`` drawn alike?

    Standard 2×k contingency chi-square; cells empty in both samples are
    dropped. Returns ``(statistic, p_value)``.
    """
    counts_a = np.asarray(counts_a, dtype=np.float64)
    counts_b = np.asarray(counts_b, dtype=np.float64)
    if counts_a.shape != counts_b.shape or counts_a.ndim != 1:
        raise ReproError("count vectors must be aligned and 1-D")
    live = (counts_a + counts_b) > 0
    a, b = counts_a[live], counts_b[live]
    na, nb = a.sum(), b.sum()
    if na <= 0 or nb <= 0:
        raise ReproError("both samples need at least one observation")
    pooled = (a + b) / (na + nb)
    stat = float(
        np.sum((a - na * pooled) ** 2 / (na * pooled))
        + np.sum((b - nb * pooled) ** 2 / (nb * pooled))
    )
    df = int(live.sum()) - 1
    if df < 1:
        return stat, 1.0
    return stat, chi2_sf(stat, df)
