"""A small LRU cache with hit/miss accounting.

Used by the storage layer in two places the paper calls out explicitly:
(1) the caches fronting the vertex/edge attribute indices IV and IE, and
(2) the LRU neighbor-caching baseline of Figure 9.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.errors import StorageError


class LRUCache:
    """Least-recently-used cache with a fixed capacity and hit statistics."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise StorageError(f"LRU capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self._store: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        if key in self._store:
            self._store.move_to_end(key)
            self.hits += 1
            return self._store[key]
        self.misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> Hashable | None:
        """Insert/refresh ``key``; evicts the least recently used entry.

        Returns the evicted key (callers maintaining external indices —
        e.g. the replica registry — deregister it), or None.
        """
        if self.capacity == 0:
            return None
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = value
        if len(self._store) > self.capacity:
            evicted, _ = self._store.popitem(last=False)
            self.evictions += 1
            return evicted
        return None

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value without touching recency or statistics."""
        return self._store.get(key, default)

    def keys(self) -> "tuple[Hashable, ...]":
        """Currently cached keys, least recently used first."""
        return tuple(self._store.keys())

    def delete(self, key: Hashable) -> bool:
        """Remove ``key`` if present (no stat changes); returns whether it was."""
        if key in self._store:
            del self._store[key]
            return True
        return False

    def clear(self) -> None:
        """Drop all entries but keep the accumulated statistics."""
        self._store.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 if none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
