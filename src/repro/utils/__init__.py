"""Shared utilities: seeded RNG, alias sampling, LRU cache, power-law tools,
timing/cost accounting and plain-text table rendering."""

from repro.utils.alias import AliasTable
from repro.utils.lru import LRUCache
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.timer import CostAccumulator, Timer

__all__ = [
    "AliasTable",
    "LRUCache",
    "make_rng",
    "spawn_rngs",
    "format_table",
    "CostAccumulator",
    "Timer",
]
