"""Power-law distribution tools.

The caching design of AliGraph rests on two theorems: if the in/out degree
distributions are power laws then (1) k-hop neighborhood sizes and (2) the
importance metric Imp^(k) are power laws too, so only a tiny vertex fraction
is worth caching. This module provides the tooling to *verify those theorems
empirically* on generated graphs (used by tests and the Figure 8 bench) and to
sample power-law degree sequences for the synthetic Taobao substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a discrete power-law MLE fit ``p(x) ~ x^{-alpha}``."""

    alpha: float
    xmin: float
    n_tail: int

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ValueError(f"power-law exponent must exceed 1, got {self.alpha}")


def fit_power_law(values: np.ndarray, xmin: float = 1.0) -> PowerLawFit:
    """Fit a power-law tail exponent by the discrete Hill/MLE estimator.

    ``alpha = 1 + n / sum(ln(x_i / (xmin - 0.5)))`` over the tail
    ``x_i >= xmin`` (Clauset et al.'s discrete approximation). Values below
    ``xmin`` are ignored; zero values never enter the tail.
    """
    values = np.asarray(values, dtype=np.float64)
    tail = values[values >= xmin]
    if tail.size < 10:
        raise ValueError(
            f"need at least 10 tail samples >= xmin={xmin} to fit, got {tail.size}"
        )
    alpha = 1.0 + tail.size / np.sum(np.log(tail / (xmin - 0.5)))
    return PowerLawFit(alpha=float(alpha), xmin=xmin, n_tail=int(tail.size))


def tail_mass(values: np.ndarray, top_fraction: float) -> float:
    """Fraction of the total mass carried by the top ``top_fraction`` values.

    A heavy-tailed (power-law-ish) sample concentrates most of its mass in a
    tiny head — e.g. the top 10% of vertices carrying >50% of total degree.
    Tests use this as a robust, assumption-light heavy-tail check.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    values = np.sort(np.asarray(values, dtype=np.float64))[::-1]
    total = values.sum()
    if total <= 0:
        return 0.0
    k = max(1, int(round(top_fraction * values.size)))
    return float(values[:k].sum() / total)


def sample_power_law_degrees(
    n: int,
    alpha: float,
    min_degree: int,
    max_degree: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``n`` integer degrees from a truncated discrete power law.

    Uses inverse-transform sampling on the continuous Pareto CDF, then floors
    to integers — the standard construction for synthetic scale-free degree
    sequences.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if alpha <= 1.0:
        raise ValueError(f"alpha must exceed 1, got {alpha}")
    if not 1 <= min_degree <= max_degree:
        raise ValueError(
            f"need 1 <= min_degree <= max_degree, got {min_degree}, {max_degree}"
        )
    u = rng.random(n)
    lo = float(min_degree)
    hi = float(max_degree) + 1.0
    exp = 1.0 - alpha
    # Inverse CDF of the truncated Pareto on [lo, hi).
    samples = (lo**exp + u * (hi**exp - lo**exp)) ** (1.0 / exp)
    return np.minimum(np.floor(samples).astype(np.int64), max_degree)


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, →1 = skewed).

    Another assumption-light skewness measure used by the theorem tests:
    power-law importance scores should have a high Gini.
    """
    values = np.sort(np.asarray(values, dtype=np.float64))
    if np.any(values < 0):
        raise ValueError("gini requires non-negative values")
    n = values.size
    if n == 0 or values.sum() == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * values) / (n * values.sum())) - (n + 1.0) / n)
