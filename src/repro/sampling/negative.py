"""NEGATIVE samplers: contrastive negatives for training (paper §3.3).

Negative sampling "accelerates the convergence of the training process"; the
paper notes negatives usually come from the local graph server and the
algorithm is free in how it draws them. Three standard strategies:

* :class:`UniformNegativeSampler` — uniform over the vertex pool;
* :class:`DegreeBiasedNegativeSampler` — unigram^0.75 (word2vec's noise
  distribution, the default of DeepWalk-family objectives) via an alias
  table;
* :class:`TypeAwareNegativeSampler` — draws negatives of the same vertex
  type as the corrupted endpoint (required on AHGs so a corrupted user-item
  edge stays user-item).

All support excluding the true positives of each anchor ("strict" mode) by
rejection, bounded by ``max_retries``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.graph.graph import Graph
from repro.sampling.base import Sampler, check_batch_size
from repro.utils.alias import AliasTable


class _PoolNegativeSampler(Sampler):
    """Common machinery: a vertex pool + optional true-edge rejection.

    ``backend="batched"`` (default) runs strict-mode rejection as rounds of
    masked vectorized redraws — all still-colliding slots across the whole
    batch redraw together, with membership tested against sorted
    ``(row, vertex)`` keys. ``reference`` keeps the original per-slot scalar
    rejection loop. Both give each slot up to ``max_retries`` redraws and
    keep a stubborn collision rather than looping forever.
    """

    def __init__(
        self,
        graph: Graph,
        pool: np.ndarray,
        strict: bool = False,
        backend: str = "batched",
    ) -> None:
        super().__init__()
        if pool.size == 0:
            raise SamplingError("negative sampler has an empty vertex pool")
        if backend not in ("batched", "reference"):
            raise SamplingError(f"unknown negative-sampler backend {backend!r}")
        self.graph = graph
        self.pool = pool.astype(np.int64)
        self.strict = strict
        self.backend = backend
        self.max_retries = 10

    def _draw(self, size: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def sample(
        self,
        anchors: np.ndarray,
        neg_num: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """``(len(anchors), neg_num)`` negatives, one row per anchor.

        In strict mode a draw colliding with an anchor's true neighbor (or
        the anchor itself) is redrawn up to ``max_retries`` times; a stubborn
        collision is kept rather than looping forever — at real graph scale
        collisions are vanishingly rare, which is why negative sampling is
        cheap (Table 4).
        """
        anchors = np.asarray(anchors, dtype=np.int64)
        check_batch_size(neg_num)
        out = self._draw(anchors.size * neg_num, rng).reshape(anchors.size, neg_num)
        if not self.strict:
            return out
        if self.backend == "batched":
            return self._reject_batched(anchors, out, rng)
        for i, anchor in enumerate(anchors):
            forbidden = set(int(u) for u in self.graph.out_neighbors(int(anchor)))
            forbidden.add(int(anchor))
            for j in range(neg_num):
                tries = 0
                while int(out[i, j]) in forbidden and tries < self.max_retries:
                    out[i, j] = self._draw(1, rng)[0]
                    tries += 1
        return out

    def _reject_batched(
        self, anchors: np.ndarray, out: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized strict rejection: rounds of masked redraws.

        Forbidden (row, vertex) pairs are encoded as ``row * n + vertex``
        keys; per-row neighbor lists are gathered off the graph's CSR, and
        since rows ascend the concatenation of sorted CSR segments is
        already globally sorted — membership is one ``searchsorted`` per
        round over the whole batch.
        """
        m, neg_num = out.shape
        n = self.graph.n_vertices
        indptr, indices, _ = self.graph.csr_arrays()
        deg = indptr[anchors + 1] - indptr[anchors]
        offsets = np.concatenate([[0], np.cumsum(deg)])
        pos = np.arange(offsets[-1], dtype=np.int64) - np.repeat(offsets[:-1], deg)
        row_of = np.repeat(np.arange(m, dtype=np.int64), deg)
        forbidden = np.concatenate(
            [
                row_of * n + indices[np.repeat(indptr[anchors], deg) + pos],
                np.arange(m, dtype=np.int64) * n + anchors,  # the anchor itself
            ]
        )
        forbidden.sort()
        row_key = np.arange(m, dtype=np.int64)[:, None] * n
        for _ in range(self.max_retries):
            keys = (row_key + out).ravel()
            loc = np.searchsorted(forbidden, keys)
            hit = loc < forbidden.size
            hit[hit] = forbidden[loc[hit]] == keys[hit]
            bad = np.flatnonzero(hit)
            if bad.size == 0:
                break
            out.ravel()[bad] = self._draw(bad.size, rng)
        return out


class UniformNegativeSampler(_PoolNegativeSampler):
    """Uniform negatives over the vertex pool."""

    name = "negative_uniform"

    def __init__(
        self,
        graph: Graph,
        vertices: np.ndarray | None = None,
        strict: bool = False,
        backend: str = "batched",
    ) -> None:
        pool = (
            np.asarray(vertices, dtype=np.int64)
            if vertices is not None
            else graph.vertices()
        )
        super().__init__(graph, pool, strict=strict, backend=backend)

    def _draw(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.pool[rng.integers(self.pool.size, size=size)]


class DegreeBiasedNegativeSampler(_PoolNegativeSampler):
    """Unigram^power negatives (word2vec noise distribution, power=0.75)."""

    name = "negative_degree"

    def __init__(
        self,
        graph: Graph,
        power: float = 0.75,
        vertices: np.ndarray | None = None,
        strict: bool = False,
        backend: str = "batched",
    ) -> None:
        pool = (
            np.asarray(vertices, dtype=np.int64)
            if vertices is not None
            else graph.vertices()
        )
        super().__init__(graph, pool, strict=strict, backend=backend)
        if power < 0:
            raise SamplingError(f"power must be non-negative, got {power}")
        degrees = graph.out_degrees()[self.pool].astype(np.float64)
        self._alias = AliasTable(np.power(degrees + 1.0, power))

    def _draw(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.pool[self._alias.draw_batch(rng, size)]


class TypeAwareNegativeSampler(Sampler):
    """Per-vertex-type negatives on an AHG.

    ``sample`` draws negatives of the *requested type*, so a corrupted
    (user, item) edge gets item negatives. Internally keeps one
    degree-biased sampler per vertex type.
    """

    name = "negative_typed"

    def __init__(
        self, graph: AttributedHeterogeneousGraph, power: float = 0.75
    ) -> None:
        super().__init__()
        if not isinstance(graph, AttributedHeterogeneousGraph):
            raise SamplingError("type-aware negatives need an AHG")
        self.graph = graph
        self._per_type: dict[str, DegreeBiasedNegativeSampler] = {}
        for name in graph.vertex_type_names:
            pool = graph.vertices_of_type(name)
            if pool.size:
                self._per_type[name] = DegreeBiasedNegativeSampler(
                    graph, power=power, vertices=pool
                )

    def sample(
        self,
        anchors: np.ndarray,
        neg_num: int,
        rng: np.random.Generator,
        vertex_type: str | None = None,
    ) -> np.ndarray:
        """Negatives of ``vertex_type`` (default: the type of each anchor)."""
        anchors = np.asarray(anchors, dtype=np.int64)
        check_batch_size(neg_num)
        if vertex_type is not None:
            sampler = self._sampler_for(vertex_type)
            return sampler.sample(anchors, neg_num, rng)
        out = np.empty((anchors.size, neg_num), dtype=np.int64)
        anchor_types = self.graph.vertex_types[anchors]
        for code in np.unique(anchor_types):
            rows = np.flatnonzero(anchor_types == code)
            tname = self.graph.vertex_type_names[int(code)]
            out[rows] = self._sampler_for(tname).sample(anchors[rows], neg_num, rng)
        return out

    def _sampler_for(self, vertex_type: str) -> DegreeBiasedNegativeSampler:
        try:
            return self._per_type[vertex_type]
        except KeyError:
            raise SamplingError(
                f"no vertices of type {vertex_type!r} to draw negatives from"
            ) from None
