"""Random-walk generators: DeepWalk, node2vec and metapath walks.

The skip-gram family (DeepWalk, Node2Vec, Metapath2Vec, GATNE's training
walks, Mixture GNN) all consume vertex sequences; these generators produce
them over any :class:`Graph`/AHG. Walks stop early at sink vertices — the
truncated walk is returned as-is.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.graph.graph import Graph
from repro.sampling.kernels import CsrAdjacency
from repro.utils.alias import GroupedAliasTable


def random_walks(
    graph: Graph,
    starts: np.ndarray,
    length: int,
    rng: np.random.Generator,
    weighted: bool = False,
    backend: str = "batched",
) -> "list[np.ndarray]":
    """Uniform (or weight-proportional) walks of ``length`` steps per start.

    The ``batched`` backend steps *all* walks in lock-step over a CSR
    snapshot — one vectorized draw per step for the whole frontier of alive
    walks (weighted steps go through one grouped alias table spanning every
    adjacency list). ``reference`` keeps the original per-walk scalar loop;
    the two are distributionally equivalent but consume the RNG stream
    differently.
    """
    if length < 1:
        raise SamplingError(f"walk length must be positive, got {length}")
    if backend not in ("batched", "reference"):
        raise SamplingError(f"unknown walk backend {backend!r}")
    starts = np.atleast_1d(np.asarray(starts, dtype=np.int64))
    if backend == "batched":
        return _random_walks_batched(graph, starts, length, rng, weighted)
    walks = []
    for start in starts:
        walk = [int(start)]
        current = int(start)
        for _ in range(length):
            nbrs = graph.out_neighbors(current)
            if nbrs.size == 0:
                break
            if weighted:
                w = graph.out_weights(current)
                current = int(nbrs[rng.choice(nbrs.size, p=w / w.sum())])
            else:
                current = int(nbrs[rng.integers(nbrs.size)])
            walk.append(current)
        walks.append(np.asarray(walk, dtype=np.int64))
    return walks


def _random_walks_batched(
    graph: Graph,
    starts: np.ndarray,
    length: int,
    rng: np.random.Generator,
    weighted: bool,
) -> "list[np.ndarray]":
    """Lock-step frontier walker over a CSR snapshot."""
    csr = CsrAdjacency.from_graph(graph)
    table = GroupedAliasTable(csr.weights, csr.indptr) if weighted else None
    m = starts.size
    out = np.empty((m, length + 1), dtype=np.int64)
    out[:, 0] = starts
    current = starts.copy()
    lengths = np.ones(m, dtype=np.int64)
    alive = csr.degrees[current] > 0  # walks not yet stuck at a sink
    for step in range(1, length + 1):
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            break
        vs = current[idx]
        if weighted:
            flat = table.draw_for_groups(vs, 1, rng)[:, 0]
            nxt = csr.indices[flat]
        else:
            slot = rng.integers(0, csr.degrees[vs])
            nxt = csr.indices[csr.indptr[vs] + slot]
        out[idx, step] = nxt
        current[idx] = nxt
        lengths[idx] += 1
        alive[idx] = csr.degrees[nxt] > 0
    return [out[i, : lengths[i]] for i in range(m)]


def node2vec_walks(
    graph: Graph,
    starts: np.ndarray,
    length: int,
    rng: np.random.Generator,
    p: float = 1.0,
    q: float = 1.0,
) -> "list[np.ndarray]":
    """Biased walks with node2vec's return (p) and in-out (q) parameters.

    Transition from ``t -> v -> x`` is reweighted by 1/p if ``x == t``, 1 if
    ``x`` neighbors ``t``, and 1/q otherwise.
    """
    if length < 1:
        raise SamplingError(f"walk length must be positive, got {length}")
    if p <= 0 or q <= 0:
        raise SamplingError(f"p and q must be positive, got p={p}, q={q}")
    neighbor_sets = [set(int(u) for u in graph.out_neighbors(v)) for v in range(graph.n_vertices)]
    walks = []
    for start in np.asarray(starts, dtype=np.int64):
        walk = [int(start)]
        prev: int | None = None
        current = int(start)
        for _ in range(length):
            nbrs = graph.out_neighbors(current)
            if nbrs.size == 0:
                break
            if prev is None:
                nxt = int(nbrs[rng.integers(nbrs.size)])
            else:
                bias = np.empty(nbrs.size, dtype=np.float64)
                prev_nbrs = neighbor_sets[prev]
                for i, x in enumerate(nbrs):
                    x = int(x)
                    if x == prev:
                        bias[i] = 1.0 / p
                    elif x in prev_nbrs:
                        bias[i] = 1.0
                    else:
                        bias[i] = 1.0 / q
                nxt = int(nbrs[rng.choice(nbrs.size, p=bias / bias.sum())])
            walk.append(nxt)
            prev, current = current, nxt
        walks.append(np.asarray(walk, dtype=np.int64))
    return walks


def metapath_walks(
    graph: AttributedHeterogeneousGraph,
    starts: np.ndarray,
    metapath: "list[str]",
    length: int,
    rng: np.random.Generator,
) -> "list[np.ndarray]":
    """Metapath2Vec walks constrained to follow a vertex-type pattern.

    ``metapath`` is a cyclic vertex-type sequence, e.g. ``["user", "item"]``;
    each step moves to a uniformly chosen neighbor whose type matches the
    next entry (cycling). Walks stop early when no neighbor matches.
    """
    if length < 1:
        raise SamplingError(f"walk length must be positive, got {length}")
    if len(metapath) < 2:
        raise SamplingError("a metapath needs at least two vertex types")
    type_codes = [graph.vertex_type_code(t) for t in metapath]
    walks = []
    for start in np.asarray(starts, dtype=np.int64):
        start = int(start)
        if int(graph.vertex_types[start]) != type_codes[0]:
            raise SamplingError(
                f"walk start {start} is not of type {metapath[0]!r}"
            )
        walk = [start]
        current = start
        for step in range(length):
            want = type_codes[(step + 1) % len(type_codes)]
            nbrs = graph.out_neighbors(current)
            if nbrs.size == 0:
                break
            matching = nbrs[graph.vertex_types[nbrs] == want]
            if matching.size == 0:
                break
            current = int(matching[rng.integers(matching.size)])
            walk.append(current)
        walks.append(np.asarray(walk, dtype=np.int64))
    return walks


def walk_context_pairs(
    walks: "list[np.ndarray]", window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Skip-gram (center, context) pairs within ``window`` of each other."""
    if window < 1:
        raise SamplingError(f"window must be positive, got {window}")
    centers: list[int] = []
    contexts: list[int] = []
    for walk in walks:
        for i, center in enumerate(walk):
            lo = max(0, i - window)
            hi = min(len(walk), i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    centers.append(int(center))
                    contexts.append(int(walk[j]))
    return (
        np.asarray(centers, dtype=np.int64),
        np.asarray(contexts, dtype=np.int64),
    )
