"""TRAVERSE samplers: batches of vertices or edges from the (partitioned)
graph (paper §3.3).

TRAVERSE seeds every training step: it draws the mini-batch of vertices or
edges the NEIGHBORHOOD and NEGATIVE samplers then expand. In AliGraph these
read from local subgraphs; here they accept either a full graph or a single
partition's vertex set.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.graph.graph import Graph
from repro.sampling.base import Sampler, check_batch_size
from repro.utils.alias import AliasTable


class VertexTraverseSampler(Sampler):
    """Samples vertex batches, optionally restricted by vertex type/partition.

    ``weighting`` is ``"uniform"`` or ``"degree"`` (degree-proportional via
    an alias table, the common choice for skip-gram centers).
    """

    name = "traverse_vertex"

    def __init__(
        self,
        graph: Graph,
        vertex_type: str | None = None,
        vertices: np.ndarray | None = None,
        weighting: str = "uniform",
    ) -> None:
        super().__init__()
        if weighting not in ("uniform", "degree"):
            raise SamplingError(f"unknown weighting {weighting!r}")
        self.graph = graph
        self.vertex_type = vertex_type
        if vertices is not None:
            self._pool = np.asarray(vertices, dtype=np.int64)
        elif vertex_type is not None:
            if not isinstance(graph, AttributedHeterogeneousGraph):
                raise SamplingError("vertex_type filtering needs an AHG")
            self._pool = graph.vertices_of_type(vertex_type)
        else:
            self._pool = graph.vertices()
        if self._pool.size == 0:
            raise SamplingError("traverse sampler has an empty vertex pool")
        self._alias: AliasTable | None = None
        if weighting == "degree":
            degrees = graph.out_degrees()[self._pool].astype(np.float64) + 1.0
            self._alias = AliasTable(degrees)

    def sample(self, batch_size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``batch_size`` vertex ids (with replacement)."""
        check_batch_size(batch_size)
        if self._alias is not None:
            idx = self._alias.draw_batch(rng, batch_size)
        else:
            idx = rng.integers(self._pool.size, size=batch_size)
        return self._pool[idx]

    def epoch_batches(
        self, batch_size: int, rng: np.random.Generator
    ) -> "list[np.ndarray]":
        """Shuffle the pool once and cut it into batches (one epoch)."""
        check_batch_size(batch_size)
        perm = rng.permutation(self._pool)
        return [perm[i : i + batch_size] for i in range(0, perm.size, batch_size)]


class EdgeTraverseSampler(Sampler):
    """Samples edge batches ``(src, dst)``, optionally of one edge type.

    Mirrors Figure 5's ``s1.sample(edge_type, batch_size)``: GNN training on
    link tasks seeds each step with a batch of positive edges.
    """

    name = "traverse_edge"

    def __init__(
        self,
        graph: Graph,
        edge_type: str | None = None,
        weighted: bool = False,
    ) -> None:
        super().__init__()
        self.edge_type = edge_type
        src, dst, w = graph.edge_array()
        if edge_type is not None:
            if not isinstance(graph, AttributedHeterogeneousGraph):
                raise SamplingError("edge_type filtering needs an AHG")
            mask = graph.edge_types == graph.edge_type_code(edge_type)
            src, dst, w = src[mask], dst[mask], w[mask]
        if src.size == 0:
            raise SamplingError("traverse sampler has an empty edge pool")
        self._src = src
        self._dst = dst
        self._alias = AliasTable(w) if weighted else None

    @property
    def n_edges(self) -> int:
        """Edges in this sampler's pool."""
        return int(self._src.size)

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``batch_size`` edges as ``(src, dst)`` arrays."""
        check_batch_size(batch_size)
        if self._alias is not None:
            idx = self._alias.draw_batch(rng, batch_size)
        else:
            idx = rng.integers(self._src.size, size=batch_size)
        return self._src[idx], self._dst[idx]

    def epoch_batches(
        self, batch_size: int, rng: np.random.Generator
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Shuffle all edges once and cut into batches (one epoch)."""
        check_batch_size(batch_size)
        perm = rng.permutation(self._src.size)
        return [
            (self._src[perm[i : i + batch_size]], self._dst[perm[i : i + batch_size]])
            for i in range(0, perm.size, batch_size)
        ]
