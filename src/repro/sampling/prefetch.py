"""Overlapped sampling: bounded prefetch of training batches (paper §3.3).

AliGraph's sampling servers run ahead of the trainers: while step ``i``
computes its forward/backward pass, the sampling stage is already resolving
step ``i+1``'s neighborhood reads. This module models that overlap without
giving up the repo's determinism contract:

* :class:`PrefetchingPipeline` — a bounded depth-``N`` producer wrapped
  around any batch source. Production stays *sequential in batch order*
  (same RNG stream, same virtual clock, same spans), so the emitted batch
  sequence is bit-identical at every depth; the buffer only changes *when*
  each batch is produced relative to its consumption. A sliding
  frontier-dedup window measures how many sampled vertices recur across
  adjacent in-flight batches (the reads a real overlapped fetcher would
  coalesce) as the ``pipeline.coalesced`` metric — measured, never acted
  on, so fetch semantics and the cost ledger are untouched.
* :func:`simulate_makespan` / :func:`overlap_report` — the bounded-buffer
  pipeline schedule: producer ``i`` may start once slot ``i-N`` is free,
  consumer ``i`` once batch ``i`` exists. Depth 0 degenerates to the
  serial sum; large depths approach ``max(Σ sample, Σ compute)``.
* :func:`stage_costs` — per-step sample/compute costs read back from a
  :class:`~repro.runtime.tracing.StageProfiler`, so the model's inputs are
  measured, not assumed.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.errors import SamplingError

__all__ = [
    "PrefetchingPipeline",
    "OverlapReport",
    "simulate_makespan",
    "overlap_report",
    "stage_costs",
]


class PrefetchingPipeline:
    """Bounded depth-``N`` prefetcher over a batch producer.

    Parameters
    ----------
    produce:
        Callable ``produce(rng) -> batch``. Each call must draw from
        ``rng`` exactly as an unprefetched loop would — the pipeline calls
        it strictly in batch order, which is what makes every depth emit
        the identical sequence.
    depth:
        Buffer depth. 0 disables buffering entirely (produce-on-demand,
        today's behaviour); ``N >= 1`` keeps up to ``N`` batches resident
        ahead of the consumer.
    frontier_of:
        Optional ``frontier_of(batch) -> array`` extracting the vertex
        frontier of a produced batch (e.g.
        ``lambda b: b.context.all_vertices()``). When set, overlap with
        the previous ``window`` frontiers is accumulated in
        :attr:`coalesced`.
    window:
        Number of preceding frontiers the dedup window holds.
    metrics:
        Optional :class:`~repro.runtime.metrics.MetricsRegistry`; records
        the ``pipeline.coalesced`` counter and a
        ``pipeline.prefetch_buffer`` gauge of buffer occupancy.
    tracer:
        Optional :class:`~repro.runtime.tracing.Tracer` for the pipeline's
        *own* spans (``prefetch.produce`` with a ``prefetch.coalesced``
        event). Deliberately separate from the sampling tracer: the
        underlying read-path traces must stay byte-identical across
        depths, so prefetch observability is opt-in and out-of-band.
    """

    def __init__(
        self,
        produce: "Callable[[np.random.Generator], object]",
        depth: int,
        frontier_of: "Callable[[object], np.ndarray] | None" = None,
        window: int = 2,
        metrics: "object | None" = None,
        tracer: "object | None" = None,
    ) -> None:
        if depth < 0:
            raise SamplingError(f"prefetch depth must be >= 0, got {depth}")
        if window < 0:
            raise SamplingError(f"dedup window must be >= 0, got {window}")
        self._produce = produce
        self.depth = depth
        self.frontier_of = frontier_of
        self._frontiers: "deque[np.ndarray]" = deque(maxlen=window or 1)
        self.window = window
        self.metrics = metrics
        self.tracer = tracer
        self.produced = 0
        self.consumed = 0
        #: Sampled vertices that recurred within the dedup window — the
        #: reads an overlapped fetcher could coalesce across in-flight
        #: batches. A measurement only; no fetch is actually elided.
        self.coalesced = 0

    def _produce_one(self, rng: np.random.Generator) -> object:
        span_ctx = (
            self.tracer.span(
                "prefetch.produce", index=self.produced, depth=self.depth
            )
            if self.tracer is not None
            else nullcontext()
        )
        with span_ctx as span:
            item = self._produce(rng)
            if self.frontier_of is not None and self.window:
                frontier = np.unique(
                    np.asarray(self.frontier_of(item), dtype=np.int64)
                )
                if self._frontiers:
                    seen = np.unique(np.concatenate(list(self._frontiers)))
                    overlap = int(
                        np.intersect1d(
                            frontier, seen, assume_unique=True
                        ).size
                    )
                    if overlap:
                        self.coalesced += overlap
                        if self.metrics is not None:
                            self.metrics.counter("pipeline.coalesced").inc(
                                overlap
                            )
                        if span is not None:
                            span.event("prefetch.coalesced", overlap)
                self._frontiers.append(frontier)
        self.produced += 1
        return item

    def run(
        self, n_batches: int, rng: np.random.Generator
    ) -> "Iterator[object]":
        """Yield exactly ``n_batches`` batches, buffering up to ``depth``.

        Production never runs past ``n_batches``, so produced == consumed
        at exhaustion and a depth-``N`` run charges the same sampling work
        (ledger events, RNG draws, metrics) as a depth-0 run.
        """
        if n_batches < 0:
            raise SamplingError(f"n_batches must be >= 0, got {n_batches}")
        to_produce = n_batches
        buffer: "deque[object]" = deque()

        def fill() -> None:
            nonlocal to_produce
            while to_produce > 0 and len(buffer) < self.depth:
                buffer.append(self._produce_one(rng))
                to_produce -= 1
            if self.metrics is not None:
                self.metrics.gauge("pipeline.prefetch_buffer").set(
                    len(buffer)
                )

        for _ in range(n_batches):
            fill()
            if buffer:
                item = buffer.popleft()
            else:  # depth 0: produce on demand
                item = self._produce_one(rng)
                to_produce -= 1
            self.consumed += 1
            fill()
            yield item


@dataclass(frozen=True)
class OverlapReport:
    """Makespan of one pipelined schedule vs its serial baseline."""

    depth: int
    n_batches: int
    sample_us: float
    compute_us: float
    serial_us: float
    makespan_us: float

    @property
    def speedup(self) -> float:
        """Serial time over pipelined makespan (1.0 = no overlap win)."""
        return self.serial_us / self.makespan_us if self.makespan_us else 1.0


def simulate_makespan(
    sample_us: "list[float]", compute_us: "list[float]", depth: int
) -> float:
    """Makespan of a bounded-buffer producer/consumer schedule.

    ``sample_us[i]`` is batch ``i``'s sampling (producer) cost and
    ``compute_us[i]`` its training-step (consumer) cost. With buffer depth
    ``D >= 1`` the consumer pops batch ``i`` from the buffer when it
    *starts* computing on it, freeing that slot — so the producer may
    start batch ``i`` once batch ``i`` - ``D`` has been popped::

        cons_start[i] = max(cons_done[i-1], prod_done[i])
        prod_done[i]  = max(prod_done[i-1], cons_start[i-D]) + s[i]
        cons_done[i]  = cons_start[i] + c[i]

    Depth 0 is the serial schedule: ``sum(s) + sum(c)``.
    """
    if len(sample_us) != len(compute_us):
        raise SamplingError("sample_us/compute_us length mismatch")
    if depth < 0:
        raise SamplingError(f"prefetch depth must be >= 0, got {depth}")
    n = len(sample_us)
    if n == 0:
        return 0.0
    if depth == 0:
        return float(sum(sample_us) + sum(compute_us))
    prod_done = [0.0] * n
    cons_start = [0.0] * n
    cons_done = [0.0] * n
    for i in range(n):
        start = prod_done[i - 1] if i else 0.0
        if i >= depth:
            start = max(start, cons_start[i - depth])
        prod_done[i] = start + float(sample_us[i])
        cons_start[i] = max(
            cons_done[i - 1] if i else 0.0, prod_done[i]
        )
        cons_done[i] = cons_start[i] + float(compute_us[i])
    return cons_done[-1]


def overlap_report(
    sample_us: "list[float]", compute_us: "list[float]", depth: int
) -> OverlapReport:
    """Bundle :func:`simulate_makespan` with its serial baseline."""
    serial = simulate_makespan(sample_us, compute_us, 0)
    makespan = simulate_makespan(sample_us, compute_us, depth)
    return OverlapReport(
        depth=depth,
        n_batches=len(sample_us),
        sample_us=float(sum(sample_us)),
        compute_us=float(sum(compute_us)),
        serial_us=serial,
        makespan_us=makespan,
    )


def stage_costs(
    profiler: "object", sample_stages: "tuple[str, ...]" = ("sample",)
) -> "tuple[float, float]":
    """Mean per-step ``(sample_us, compute_us)`` from a stage profiler.

    Stages named in ``sample_stages`` count as producer (sampling) time;
    every other recorded stage is consumer (compute) time. Feeds measured
    costs into :func:`simulate_makespan` so overlap projections rest on
    profiled numbers rather than assumptions.
    """
    totals = profiler.stage_totals()
    steps = int(profiler.metrics.counter("train.steps").value) or 1
    sample = sum(v for k, v in totals.items() if k in sample_stages)
    compute = sum(v for k, v in totals.items() if k not in sample_stages)
    return sample / steps, compute / steps
