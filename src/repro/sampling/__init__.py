"""AliGraph sampling layer (paper §3.3).

Three sampler families — TRAVERSE, NEIGHBORHOOD, NEGATIVE — behind a plugin
interface with forward *and* backward (dynamic weight updates registered like
operator gradients), plus random-walk generators and the Figure 5 pipeline
that stitches the three families into one training-sample stage.
"""

from repro.sampling.base import (
    GraphProvider,
    NeighborProvider,
    Sampler,
    SnapshotProvider,
    StoreProvider,
)
from repro.sampling.blocks import KHopBlock, build_block, build_block_from_tables
from repro.sampling.kernels import CsrAdjacency
from repro.sampling.negative import (
    DegreeBiasedNegativeSampler,
    TypeAwareNegativeSampler,
    UniformNegativeSampler,
)
from repro.sampling.neighborhood import (
    FullNeighborSampler,
    ImportanceNeighborSampler,
    NeighborhoodSample,
    TopKNeighborSampler,
    UniformNeighborSampler,
    WeightedNeighborSampler,
)
from repro.sampling.pipeline import SamplingPipeline, TrainingBatch
from repro.sampling.prefetch import (
    OverlapReport,
    PrefetchingPipeline,
    overlap_report,
    simulate_makespan,
    stage_costs,
)
from repro.sampling.randomwalk import metapath_walks, node2vec_walks, random_walks
from repro.sampling.traverse import EdgeTraverseSampler, VertexTraverseSampler

__all__ = [
    "Sampler",
    "NeighborProvider",
    "GraphProvider",
    "SnapshotProvider",
    "StoreProvider",
    "CsrAdjacency",
    "KHopBlock",
    "build_block",
    "build_block_from_tables",
    "VertexTraverseSampler",
    "EdgeTraverseSampler",
    "NeighborhoodSample",
    "UniformNeighborSampler",
    "WeightedNeighborSampler",
    "TopKNeighborSampler",
    "ImportanceNeighborSampler",
    "FullNeighborSampler",
    "UniformNegativeSampler",
    "DegreeBiasedNegativeSampler",
    "TypeAwareNegativeSampler",
    "SamplingPipeline",
    "TrainingBatch",
    "PrefetchingPipeline",
    "OverlapReport",
    "simulate_makespan",
    "overlap_report",
    "stage_costs",
    "random_walks",
    "node2vec_walks",
    "metapath_walks",
]
