"""Minibatch k-hop computation blocks for the GNN compute path.

``GNNFramework.fit`` historically ran the encoder over **all n vertices
every training step** and then gathered the ~batch-sized loss rows, so at
n=10k roughly 95% of forward/backward FLOPs were wasted. A
:class:`KHopBlock` is the DistDGL-style fix: per step, the deduped loss
vertices seed a k-hop frontier expansion (one vectorized
``sample_children`` call per hop), every discovered vertex is relabeled
into a compact block-local id space, and the encoder runs over only those
rows — per-step cost proportional to the batch, not the graph.

Exactness contract: the encoder's per-hop ops (gather, fixed-fanout
segment reduce, dense matmul, normalize) are all *row-wise*, so running
them over the block's row subset produces bit-identical values to the
full-graph forward restricted to the same vertices — **provided both use
the same per-vertex neighbor draws**. :func:`build_block_from_tables`
pins the draws to pre-sampled ``(n, fanout)`` hop tables for exactly that
comparison (the ulp-exactness tests); :func:`build_block` draws frontiers
live from a sampler for training.

Level convention: ``layers[0]`` is the *input* level (vertices whose raw
features are gathered) and ``layers[kmax]`` the seed set; hop ``k`` of the
encoder consumes ``layers[k]`` states and produces ``layers[k+1]`` states,
mirroring ``hop_tables[k]`` of the full-graph path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError


@dataclass
class KHopBlock:
    """Compact k-hop computation block over block-local ids.

    ``layers[k]`` holds the sorted unique *global* vertex ids alive at
    level ``k`` (``layers[-1]`` is the seed set; every level is a superset
    of the one above, since COMBINE needs each vertex's own previous-hop
    state). ``self_index[k]`` locates ``layers[k+1]``'s vertices inside
    ``layers[k]``; ``child_index[k]`` is the ``(len(layers[k+1]),
    fanout_k)`` table of sampled-neighbor positions inside ``layers[k]``
    — the block-local relabeling of the hop-k SAMPLE output.
    """

    layers: "list[np.ndarray]"
    self_index: "list[np.ndarray]"
    child_index: "list[np.ndarray]"
    hop_nums: "list[int]"

    @property
    def n_hops(self) -> int:
        """Number of aggregation hops (kmax)."""
        return len(self.hop_nums)

    @property
    def seeds(self) -> np.ndarray:
        """The sorted unique seed vertex ids (the output rows)."""
        return self.layers[-1]

    @property
    def n_input_rows(self) -> int:
        """Feature rows the block forward gathers (the FLOP proxy)."""
        return int(self.layers[0].size)

    def total_rows(self) -> int:
        """Vertex rows across all levels (block size / memory proxy)."""
        return int(sum(layer.size for layer in self.layers))

    def seed_positions(self, vertices: np.ndarray) -> np.ndarray:
        """Block-local output rows of ``vertices`` (must all be seeds)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        pos = np.searchsorted(self.seeds, vertices)
        if pos.size and (
            np.any(pos >= self.seeds.size)
            or np.any(self.seeds[np.minimum(pos, self.seeds.size - 1)] != vertices)
        ):
            raise SamplingError("vertices outside the block's seed set")
        return pos


def _relabel(
    layer: np.ndarray, above: np.ndarray, children: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """(self_index, child_index) of ``above``/``children`` within ``layer``."""
    return (
        np.searchsorted(layer, above),
        np.searchsorted(layer, children),
    )


def _assemble(
    seeds: np.ndarray,
    hop_nums: "list[int]",
    sample_hop,
) -> KHopBlock:
    """Shared top-down construction: ``sample_hop(k, frontier)`` per hop."""
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        raise SamplingError("cannot build a block from an empty seed set")
    kmax = len(hop_nums)
    layers: "list[np.ndarray]" = [None] * (kmax + 1)
    children_at: "list[np.ndarray]" = [None] * kmax
    layers[kmax] = seeds
    for k in range(kmax - 1, -1, -1):
        frontier = layers[k + 1]
        children = sample_hop(k, frontier)
        if children.shape != (frontier.size, hop_nums[k]):
            raise SamplingError(
                f"hop {k} sampler returned shape {children.shape}, expected "
                f"{(frontier.size, hop_nums[k])}"
            )
        children_at[k] = children
        layers[k] = np.unique(np.concatenate([frontier, children.ravel()]))
    self_index = []
    child_index = []
    for k in range(kmax):
        s, c = _relabel(layers[k], layers[k + 1], children_at[k])
        self_index.append(s)
        child_index.append(c)
    return KHopBlock(
        layers=layers,
        self_index=self_index,
        child_index=child_index,
        hop_nums=list(hop_nums),
    )


def build_block(
    seeds: np.ndarray,
    sampler: "object",
    hop_nums: "list[int]",
    rng: np.random.Generator,
) -> KHopBlock:
    """Build a block by sampling frontiers live through ``sampler``.

    ``sampler`` is any neighborhood sampler exposing the public
    ``sample_children(vertices, count, rng)`` API; each hop is one
    vectorized draw over the deduped frontier (one neighbor set per unique
    vertex per level — the per-vertex hop-table semantics of the
    full-graph path, scoped to the block).
    """
    if not hop_nums or any(h < 1 for h in hop_nums):
        raise SamplingError(f"hop_nums must be positive, got {hop_nums}")

    def sample_hop(k: int, frontier: np.ndarray) -> np.ndarray:
        children, _ = sampler.sample_children(frontier, hop_nums[k], rng)
        return children

    return _assemble(seeds, hop_nums, sample_hop)


def build_block_from_tables(
    seeds: np.ndarray, hop_tables: "list[np.ndarray]"
) -> KHopBlock:
    """Build a block whose draws are *looked up* from full hop tables.

    ``hop_tables[k]`` is the full-graph path's ``(n, fanout_k)`` SAMPLE
    output for hop k. The resulting block aggregates exactly the neighbor
    sets the full-graph forward uses, which is what makes block output
    rows ulp-comparable to the full forward restricted to the seeds.
    """
    if not hop_tables:
        raise SamplingError("hop_tables must be non-empty")
    hop_nums = [int(t.shape[1]) for t in hop_tables]

    def sample_hop(k: int, frontier: np.ndarray) -> np.ndarray:
        return np.asarray(hop_tables[k], dtype=np.int64)[frontier]

    return _assemble(seeds, hop_nums, sample_hop)
