"""NEIGHBORHOOD samplers: per-vertex context generation (paper §3.3).

A neighborhood sampler expands a batch of vertices hop by hop with aligned
fan-outs (``hop_nums``), producing the context the AGGREGATE/COMBINE
operators consume. Variants reproduce the sampling strategies of the GNNs in
the paper's Table 1:

* :class:`UniformNeighborSampler` — GraphSAGE's node-wise uniform sampling;
* :class:`WeightedNeighborSampler` — edge-weight proportional draws through
  alias tables, with *dynamic weights*: ``backward`` nudges per-edge sampling
  weights like a gradient step (the paper's trainable sampler);
* :class:`TopKNeighborSampler` — deterministic heaviest-k (AHEP-style
  importance pruning);
* :class:`ImportanceNeighborSampler` — degree-proportional importance
  sampling in the FastGCN/AS-GCN family, with inclusion-probability
  weights exposed for variance correction;
* :class:`FullNeighborSampler` — no sampling (exact GCN), with a fan-out cap
  as a safety valve on power-law hubs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import NeighborProvider, Sampler
from repro.utils.alias import AliasTable


@dataclass
class NeighborhoodSample:
    """Multi-hop context of a vertex batch.

    ``layers[0]`` is the seed batch; ``layers[k]`` holds the hop-k context,
    flattened so that the ``hop_nums[k-1]`` samples for ``layers[k-1][i]``
    sit at ``layers[k][i * hop_nums[k-1] : (i+1) * hop_nums[k-1]]``. Padding
    for vertices with no neighbors repeats the vertex itself (self-loop
    semantics), recorded in ``pad_mask``.
    """

    layers: list[np.ndarray]
    hop_nums: list[int]
    pad_masks: list[np.ndarray] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        """Seed batch size."""
        return int(self.layers[0].size)

    @property
    def n_hops(self) -> int:
        """Number of expanded hops."""
        return len(self.layers) - 1

    def hop(self, k: int) -> np.ndarray:
        """Hop-k layer reshaped to ``(len(layers[k-1]), hop_nums[k-1])``."""
        if not 1 <= k <= self.n_hops:
            raise SamplingError(f"hop {k} out of range [1, {self.n_hops}]")
        return self.layers[k].reshape(self.layers[k - 1].size, self.hop_nums[k - 1])

    def all_vertices(self) -> np.ndarray:
        """Unique vertex ids appearing anywhere in the sample."""
        return np.unique(np.concatenate(self.layers))


class _ExpandingSampler(Sampler):
    """Shared multi-hop expansion loop; subclasses pick per-vertex samples."""

    def __init__(self, provider: NeighborProvider) -> None:
        super().__init__()
        self.provider = provider

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return exactly ``count`` neighbor ids for ``vertex``.

        Vertices without neighbors are padded with themselves.
        """
        raise NotImplementedError

    def sample(
        self,
        batch: np.ndarray,
        hop_nums: "list[int]",
        rng: np.random.Generator,
    ) -> NeighborhoodSample:
        """Expand ``batch`` by ``hop_nums`` fan-outs per hop."""
        batch = np.asarray(batch, dtype=np.int64)
        if batch.size == 0:
            raise SamplingError("cannot expand an empty batch")
        if not hop_nums or any(h < 1 for h in hop_nums):
            raise SamplingError(f"hop_nums must be positive, got {hop_nums}")
        layers = [batch]
        pad_masks: list[np.ndarray] = []
        for fanout in hop_nums:
            prev = layers[-1]
            # One batched (deduplicated) read of the whole frontier before
            # the per-vertex draws — the distributed provider coalesces
            # this hop's remote traffic into one RPC per owning server.
            self.provider.prefetch(np.unique(prev))
            out = np.empty(prev.size * fanout, dtype=np.int64)
            pad = np.zeros(prev.size * fanout, dtype=bool)
            for i, v in enumerate(prev):
                v = int(v)
                picked = self._sample_one(v, fanout, rng)
                out[i * fanout : (i + 1) * fanout] = picked
                pad[i * fanout : (i + 1) * fanout] = picked == v
            layers.append(out)
            pad_masks.append(pad)
        return NeighborhoodSample(layers=layers, hop_nums=list(hop_nums), pad_masks=pad_masks)


class UniformNeighborSampler(_ExpandingSampler):
    """GraphSAGE-style uniform with-replacement neighbor sampling."""

    name = "neighborhood_uniform"

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        return nbrs[rng.integers(nbrs.size, size=count)]


class WeightedNeighborSampler(_ExpandingSampler):
    """Edge-weight proportional sampling with dynamic (trainable) weights.

    Per-vertex alias tables are built lazily and invalidated when
    ``backward`` adjusts that vertex's weights — the paper's "register a
    gradient function for the sampler" mechanism.
    """

    name = "neighborhood_weighted"

    def __init__(self, provider: NeighborProvider) -> None:
        super().__init__(provider)
        self._weights: dict[int, np.ndarray] = {}
        self._tables: dict[int, AliasTable] = {}
        self.register_update_fn(self._apply_weight_update)

    def current_weights(self, vertex: int) -> np.ndarray:
        """The (possibly updated) sampling weights of ``vertex``'s edges."""
        if vertex not in self._weights:
            self._weights[vertex] = np.array(
                self.provider.weights(vertex), dtype=np.float64
            )
        return self._weights[vertex]

    def _apply_weight_update(
        self, vertex: int, grads: np.ndarray, lr: float = 0.1
    ) -> None:
        """Gradient-like multiplicative update of ``vertex``'s edge weights."""
        weights = self.current_weights(vertex)
        grads = np.asarray(grads, dtype=np.float64)
        if grads.shape != weights.shape:
            raise SamplingError(
                f"gradient shape {grads.shape} does not match the "
                f"{weights.shape} weights of vertex {vertex}"
            )
        updated = np.maximum(weights * np.exp(lr * grads), 1e-12)
        self._weights[vertex] = updated
        self._tables.pop(vertex, None)  # invalidate the alias table

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        table = self._tables.get(vertex)
        if table is None:
            table = AliasTable(self.current_weights(vertex))
            self._tables[vertex] = table
        return nbrs[table.draw_batch(rng, count)]


class TopKNeighborSampler(_ExpandingSampler):
    """Deterministic heaviest-``count`` neighbors (ties by id).

    Repeats the heaviest neighbors cyclically when the fan-out exceeds the
    degree so output stays aligned.
    """

    name = "neighborhood_topk"

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        weights = self.provider.weights(vertex)
        order = np.lexsort((nbrs, -weights))
        top = nbrs[order[: min(count, nbrs.size)]]
        reps = int(np.ceil(count / top.size))
        return np.tile(top, reps)[:count]


class ImportanceNeighborSampler(_ExpandingSampler):
    """Degree-proportional importance sampling (FastGCN/AS-GCN family).

    Samples neighbor ``u`` of ``v`` with probability proportional to
    ``deg(u)^beta`` (``beta=1`` emphasizes hubs; FastGCN's q(u) ∝ deg).
    ``inclusion_probability`` exposes the per-draw probabilities so callers
    can build unbiased (importance-weighted) aggregations.
    """

    name = "neighborhood_importance"

    def __init__(self, provider: NeighborProvider, degrees: np.ndarray, beta: float = 1.0):
        super().__init__(provider)
        degrees = np.asarray(degrees, dtype=np.float64)
        if degrees.ndim != 1:
            raise SamplingError("degrees must be a 1-D vector")
        self.beta = beta
        self._scores = np.power(np.maximum(degrees, 1.0), beta)

    def inclusion_probability(self, vertex: int) -> np.ndarray:
        """p(u | v) over ``v``'s neighbor list (sums to 1)."""
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.zeros(0, dtype=np.float64)
        scores = self._scores[nbrs]
        return scores / scores.sum()

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        probs = self.inclusion_probability(vertex)
        return nbrs[rng.choice(nbrs.size, size=count, p=probs)]


class FullNeighborSampler(_ExpandingSampler):
    """No sampling: the full neighbor set, cyclically padded to ``count``.

    ``max_fanout`` caps hub explosion; pass the graph's max degree as the
    fan-out to make the expansion exact.
    """

    name = "neighborhood_full"

    def __init__(self, provider: NeighborProvider, max_fanout: int = 512) -> None:
        super().__init__(provider)
        if max_fanout < 1:
            raise SamplingError("max_fanout must be positive")
        self.max_fanout = max_fanout

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        take = nbrs[: min(self.max_fanout, nbrs.size)]
        reps = int(np.ceil(count / take.size))
        return np.tile(take, reps)[:count]
