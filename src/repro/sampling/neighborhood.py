"""NEIGHBORHOOD samplers: per-vertex context generation (paper §3.3).

A neighborhood sampler expands a batch of vertices hop by hop with aligned
fan-outs (``hop_nums``), producing the context the AGGREGATE/COMBINE
operators consume. Variants reproduce the sampling strategies of the GNNs in
the paper's Table 1:

* :class:`UniformNeighborSampler` — GraphSAGE's node-wise uniform sampling;
* :class:`WeightedNeighborSampler` — edge-weight proportional draws through
  alias tables, with *dynamic weights*: ``backward`` nudges per-edge sampling
  weights like a gradient step (the paper's trainable sampler);
* :class:`TopKNeighborSampler` — deterministic heaviest-k (AHEP-style
  importance pruning);
* :class:`ImportanceNeighborSampler` — degree-proportional importance
  sampling in the FastGCN/AS-GCN family, with inclusion-probability
  weights exposed for variance correction;
* :class:`FullNeighborSampler` — no sampling (exact GCN), with a fan-out cap
  as a safety valve on power-law hubs.

Every sampler exposes two execution backends behind the same public
:meth:`_ExpandingSampler.sample_children` API:

* ``batched`` — one vectorized draw for the whole frontier over a
  :class:`~repro.sampling.kernels.CsrAdjacency` snapshot (uniform draws are
  a broadcast ``rng.integers``; weighted/importance draws go through one
  :class:`~repro.utils.alias.GroupedAliasTable` spanning every adjacency
  list). The snapshot is built once from the provider and rebuilt whenever
  the provider's ``version`` counter moves (dynamic-graph updates).
* ``reference`` — the original per-vertex scalar loop, kept as the
  equivalence oracle: deterministic samplers must match it exactly, the
  stochastic ones distributionally (chi-square tested).

``backend="auto"`` (the default) picks ``batched`` when the provider's CSR
snapshot is free to take (in-memory providers) and ``reference`` when reads
are priced (the distributed store path keeps per-hop prefetch + per-vertex
draws, so its cost ledgers are unchanged); pass ``backend="batched"`` to a
store-backed sampler to pay for one bulk snapshot instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SamplingError
from repro.sampling.base import NeighborProvider, Sampler
from repro.sampling.kernels import CsrAdjacency
from repro.utils.alias import AliasTable, GroupedAliasTable

_BACKENDS = ("auto", "batched", "reference")


@dataclass
class NeighborhoodSample:
    """Multi-hop context of a vertex batch.

    ``layers[0]`` is the seed batch; ``layers[k]`` holds the hop-k context,
    flattened so that the ``hop_nums[k-1]`` samples for ``layers[k-1][i]``
    sit at ``layers[k][i * hop_nums[k-1] : (i+1) * hop_nums[k-1]]``.

    ``pad_masks[k-1]`` (aligned with ``layers[k]``) records the *self-loop
    contract*: an entry is True exactly when the sampled child equals its
    parent vertex. Vertices with no neighbors are padded by repeating
    themselves, so all their entries are True — but a genuine self-loop
    edge draw is marked True as well. The mask therefore answers "does this
    slot aggregate the parent's own features?", not "was this slot
    synthesized?"; downstream consumers (e.g. mean aggregation that wants
    to discount padding) treat the two cases identically.
    """

    layers: list[np.ndarray]
    hop_nums: list[int]
    pad_masks: list[np.ndarray] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        """Seed batch size."""
        return int(self.layers[0].size)

    @property
    def n_hops(self) -> int:
        """Number of expanded hops."""
        return len(self.layers) - 1

    def hop(self, k: int) -> np.ndarray:
        """Hop-k layer reshaped to ``(len(layers[k-1]), hop_nums[k-1])``."""
        if not 1 <= k <= self.n_hops:
            raise SamplingError(f"hop {k} out of range [1, {self.n_hops}]")
        return self.layers[k].reshape(self.layers[k - 1].size, self.hop_nums[k - 1])

    def all_vertices(self) -> np.ndarray:
        """Unique vertex ids appearing anywhere in the sample."""
        return np.unique(np.concatenate(self.layers))


class _ExpandingSampler(Sampler):
    """Shared multi-hop expansion; subclasses supply the draw kernels.

    Subclasses implement ``_sample_one`` (scalar reference draw) and
    ``_sample_children_batched`` (vectorized frontier draw); everything
    else — backend selection, CSR snapshot lifecycle, hop expansion —
    lives here.
    """

    def __init__(self, provider: NeighborProvider, backend: str = "auto") -> None:
        super().__init__()
        if backend not in _BACKENDS:
            raise SamplingError(
                f"unknown sampler backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.provider = provider
        self.backend = backend
        self._csr: CsrAdjacency | None = None
        self._csr_version = -1

    # ------------------------------------------------------------------ #
    # Backend / snapshot lifecycle
    # ------------------------------------------------------------------ #
    @property
    def resolved_backend(self) -> str:
        """The backend actually in use (``auto`` resolved per provider)."""
        if self.backend != "auto":
            return self.backend
        return "batched" if getattr(self.provider, "csr_cost_free", False) else "reference"

    def csr(self) -> CsrAdjacency:
        """The adjacency snapshot backing the batched kernels.

        Built lazily from the provider; rebuilt automatically when the
        provider's ``version`` counter moves (dynamic-graph snapshots).
        """
        version = getattr(self.provider, "version", 0)
        if self._csr is None or version != self._csr_version:
            self._csr = self.provider.csr_snapshot()
            self._csr_version = version
            self._on_csr_refresh()
        return self._csr

    def refresh_csr(self) -> None:
        """Drop the CSR snapshot (and derived tables); rebuilt on next draw."""
        self._csr = None
        self._csr_version = -1
        self._on_csr_refresh()

    def _on_csr_refresh(self) -> None:
        """Hook for subclasses holding tables derived from the snapshot."""

    def rebind(self, provider: NeighborProvider) -> None:
        """Point the sampler at a new provider and refresh the snapshot."""
        self.provider = provider
        self.refresh_csr()

    # ------------------------------------------------------------------ #
    # Draw kernels
    # ------------------------------------------------------------------ #
    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Scalar reference draw: exactly ``count`` neighbor ids of ``vertex``.

        Vertices without neighbors are padded with themselves.

        .. deprecated:: PR 5
            Private — the reference backend's inner kernel only. External
            callers use :meth:`sample_children`, which batches the whole
            frontier and works on either backend.
        """
        raise NotImplementedError

    def _sample_children_batched(
        self, vertices: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized draw: ``(len(vertices), count)`` neighbor ids."""
        raise NotImplementedError

    def sample_children(
        self, vertices: np.ndarray, count: int, rng: np.random.Generator
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Draw ``count`` children for every frontier vertex — one call.

        The public batched API: returns ``(children, pad_mask)``, both of
        shape ``(len(vertices), count)``. ``pad_mask`` marks entries equal
        to their parent (the self-loop contract of
        :class:`NeighborhoodSample`). On the ``batched`` backend this is a
        handful of numpy kernel calls over the CSR snapshot; on
        ``reference`` it loops the scalar oracle per vertex (prefetching
        the deduplicated frontier first, so store-backed providers coalesce
        the hop into batched RPCs).
        """
        if count < 1:
            raise SamplingError(f"fan-out must be positive, got {count}")
        vertices = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        if self.resolved_backend == "batched":
            children = self._sample_children_batched(vertices, count, rng)
        else:
            self.provider.prefetch(np.unique(vertices))
            children = np.empty((vertices.size, count), dtype=np.int64)
            for i, v in enumerate(vertices):
                children[i] = self._sample_one(int(v), count, rng)
        return children, children == vertices[:, None]

    def sample(
        self,
        batch: np.ndarray,
        hop_nums: "list[int]",
        rng: np.random.Generator,
    ) -> NeighborhoodSample:
        """Expand ``batch`` by ``hop_nums`` fan-outs per hop."""
        batch = np.asarray(batch, dtype=np.int64)
        if batch.size == 0:
            raise SamplingError("cannot expand an empty batch")
        if not hop_nums or any(h < 1 for h in hop_nums):
            raise SamplingError(f"hop_nums must be positive, got {hop_nums}")
        layers = [batch]
        pad_masks: list[np.ndarray] = []
        for fanout in hop_nums:
            children, pad = self.sample_children(layers[-1], fanout, rng)
            layers.append(children.reshape(-1))
            pad_masks.append(pad.reshape(-1))
        return NeighborhoodSample(layers=layers, hop_nums=list(hop_nums), pad_masks=pad_masks)


class UniformNeighborSampler(_ExpandingSampler):
    """GraphSAGE-style uniform with-replacement neighbor sampling."""

    name = "neighborhood_uniform"

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        return nbrs[rng.integers(nbrs.size, size=count)]

    def _sample_children_batched(
        self, vertices: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self.csr().sample_uniform(vertices, count, rng)


class WeightedNeighborSampler(_ExpandingSampler):
    """Edge-weight proportional sampling with dynamic (trainable) weights.

    Alias tables are built lazily and invalidated when ``backward`` adjusts
    a vertex's weights — the paper's "register a gradient function for the
    sampler" mechanism. The batched backend keeps one
    :class:`~repro.utils.alias.GroupedAliasTable` spanning every adjacency
    list and rebuilds only the touched vertex's slots per update; the
    reference backend keeps the original per-vertex tables.
    """

    name = "neighborhood_weighted"

    def __init__(self, provider: NeighborProvider, backend: str = "auto") -> None:
        super().__init__(provider, backend=backend)
        self._weights: dict[int, np.ndarray] = {}
        self._tables: dict[int, AliasTable] = {}
        self._grouped: GroupedAliasTable | None = None
        self.register_update_fn(self._apply_weight_update)

    def current_weights(self, vertex: int) -> np.ndarray:
        """The (possibly updated) sampling weights of ``vertex``'s edges."""
        if vertex not in self._weights:
            self._weights[vertex] = np.array(
                self.provider.weights(vertex), dtype=np.float64
            )
        return self._weights[vertex]

    def _apply_weight_update(
        self, vertex: int, grads: np.ndarray, lr: float = 0.1
    ) -> None:
        """Gradient-like multiplicative update of ``vertex``'s edge weights."""
        weights = self.current_weights(vertex)
        grads = np.asarray(grads, dtype=np.float64)
        if grads.shape != weights.shape:
            raise SamplingError(
                f"gradient shape {grads.shape} does not match the "
                f"{weights.shape} weights of vertex {vertex}"
            )
        updated = np.maximum(weights * np.exp(lr * grads), 1e-12)
        self._weights[vertex] = updated
        self._tables.pop(vertex, None)  # invalidate the reference table
        if self._grouped is not None:  # patch the batched table in place
            self._grouped.update_group(vertex, updated)

    def _on_csr_refresh(self) -> None:
        self._grouped = None

    def _grouped_table(self) -> GroupedAliasTable:
        csr = self.csr()
        if self._grouped is None:
            weights = csr.weights.copy()
            for vertex, override in self._weights.items():
                start, end = csr.indptr[vertex], csr.indptr[vertex + 1]
                if override.size == end - start:
                    weights[start:end] = override
            self._grouped = GroupedAliasTable(weights, csr.indptr)
        return self._grouped

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        table = self._tables.get(vertex)
        if table is None:
            table = AliasTable(self.current_weights(vertex))
            self._tables[vertex] = table
        return nbrs[table.draw_batch(rng, count)]

    def _sample_children_batched(
        self, vertices: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self.csr().sample_alias(vertices, count, rng, self._grouped_table())


class TopKNeighborSampler(_ExpandingSampler):
    """Deterministic heaviest-``count`` neighbors (ties by id).

    Repeats the heaviest neighbors cyclically when the fan-out exceeds the
    degree so output stays aligned. Both backends produce identical output
    (the batched kernel gathers through the snapshot's cached per-row
    weight ranking).
    """

    name = "neighborhood_topk"

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        weights = self.provider.weights(vertex)
        order = np.lexsort((nbrs, -weights))
        top = nbrs[order[: min(count, nbrs.size)]]
        reps = int(np.ceil(count / top.size))
        return np.tile(top, reps)[:count]

    def _sample_children_batched(
        self, vertices: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self.csr().sample_ranked(vertices, count)


class ImportanceNeighborSampler(_ExpandingSampler):
    """Degree-proportional importance sampling (FastGCN/AS-GCN family).

    Samples neighbor ``u`` of ``v`` with probability proportional to
    ``deg(u)^beta`` (``beta=1`` emphasizes hubs; FastGCN's q(u) ∝ deg).
    ``inclusion_probability`` exposes the per-draw probabilities so callers
    can build unbiased (importance-weighted) aggregations. The batched
    backend packs ``deg^beta`` scores for every adjacency slot into one
    grouped alias table.
    """

    name = "neighborhood_importance"

    def __init__(
        self,
        provider: NeighborProvider,
        degrees: np.ndarray,
        beta: float = 1.0,
        backend: str = "auto",
    ):
        super().__init__(provider, backend=backend)
        degrees = np.asarray(degrees, dtype=np.float64)
        if degrees.ndim != 1:
            raise SamplingError("degrees must be a 1-D vector")
        self.beta = beta
        self._scores = np.power(np.maximum(degrees, 1.0), beta)
        self._grouped: GroupedAliasTable | None = None

    def _on_csr_refresh(self) -> None:
        self._grouped = None

    def inclusion_probability(self, vertex: int) -> np.ndarray:
        """p(u | v) over ``v``'s neighbor list (sums to 1)."""
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.zeros(0, dtype=np.float64)
        scores = self._scores[nbrs]
        return scores / scores.sum()

    def _grouped_table(self) -> GroupedAliasTable:
        csr = self.csr()
        if self._grouped is None:
            self._grouped = GroupedAliasTable(self._scores[csr.indices], csr.indptr)
        return self._grouped

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        probs = self.inclusion_probability(vertex)
        return nbrs[rng.choice(nbrs.size, size=count, p=probs)]

    def _sample_children_batched(
        self, vertices: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self.csr().sample_alias(vertices, count, rng, self._grouped_table())


class FullNeighborSampler(_ExpandingSampler):
    """No sampling: the full neighbor set, cyclically padded to ``count``.

    ``max_fanout`` caps hub explosion; pass the graph's max degree as the
    fan-out to make the expansion exact. Both backends produce identical
    output.
    """

    name = "neighborhood_full"

    def __init__(
        self,
        provider: NeighborProvider,
        max_fanout: int = 512,
        backend: str = "auto",
    ) -> None:
        super().__init__(provider, backend=backend)
        if max_fanout < 1:
            raise SamplingError("max_fanout must be positive")
        self.max_fanout = max_fanout

    def _sample_one(
        self, vertex: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        nbrs = self.provider.neighbors(vertex)
        if nbrs.size == 0:
            return np.full(count, vertex, dtype=np.int64)
        take = nbrs[: min(self.max_fanout, nbrs.size)]
        reps = int(np.ceil(count / take.size))
        return np.tile(take, reps)[:count]

    def _sample_children_batched(
        self, vertices: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self.csr().sample_leading(vertices, count, max_take=self.max_fanout)
