"""Vectorized frontier-sampling kernels: CSR snapshots for batched draws.

The paper's sampling layer runs "many millions of times per epoch" (§3.3),
which is why it is engineered around O(1) alias draws — but O(1) per draw
still loses to array-shaped expansion when every draw carries Python
dispatch. This module packs adjacency into a :class:`CsrAdjacency` snapshot
(concatenated neighbor/weight arrays + offsets) so a whole frontier expands
in a handful of numpy kernel calls:

* uniform fan-out: one broadcast ``rng.integers`` over per-row degrees;
* weighted / importance fan-out: one
  :class:`~repro.utils.alias.GroupedAliasTable` draw spanning every
  adjacency list at once;
* top-k / full fan-out: one gather through a precomputed per-row weight
  ranking.

Snapshots are built once from a :class:`~repro.sampling.base
.NeighborProvider` (zero-copy off an in-memory :class:`Graph`, one bulk
batched read off the distributed store) and refreshed when the underlying
graph changes — providers advertise a ``version`` counter; samplers rebuild
their snapshot when it moves (dynamic graphs, §4.1's incremental updates).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError


class CsrAdjacency:
    """Immutable CSR snapshot of an adjacency source.

    ``indices[indptr[v]:indptr[v+1]]`` are vertex ``v``'s out-neighbors and
    ``weights`` the aligned edge weights. The per-row descending-weight
    ranking used by the deterministic samplers is built lazily and cached.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise SamplingError("CSR indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise SamplingError("CSR indptr must be monotone from 0")
        if self.indices.shape != self.weights.shape or self.indices.ndim != 1:
            raise SamplingError("CSR indices/weights must be aligned 1-D arrays")
        if self.indptr[-1] != self.indices.size:
            raise SamplingError("CSR indptr does not cover the indices array")
        self.degrees = np.diff(self.indptr)
        self._ranked: np.ndarray | None = None

    @classmethod
    def from_graph(cls, graph: "object") -> "CsrAdjacency":
        """Zero-copy snapshot of an in-memory :class:`Graph`'s out-CSR."""
        indptr, indices, weights = graph.csr_arrays()
        return cls(indptr, indices, weights)

    @classmethod
    def from_provider(
        cls, provider: "object", n_vertices: "int | None" = None
    ) -> "CsrAdjacency":
        """Snapshot built by scanning ``provider`` once, vertex by vertex.

        The generic (and priced) path: every adjacency row is read through
        the provider, so a distributed provider pays one full-graph read —
        built *once*, then every subsequent frontier draw is local. Providers
        with a cheaper bulk path override ``csr_snapshot`` instead.
        """
        n = int(n_vertices if n_vertices is not None else provider.n_vertices)
        rows = [np.asarray(provider.neighbors(v), dtype=np.int64) for v in range(n)]
        wrows = [np.asarray(provider.weights(v), dtype=np.float64) for v in range(n)]
        return cls.from_rows(rows, wrows)

    @classmethod
    def from_rows(
        cls, rows: "list[np.ndarray]", weight_rows: "list[np.ndarray] | None" = None
    ) -> "CsrAdjacency":
        """Assemble a snapshot from per-vertex neighbor (and weight) rows."""
        counts = np.array([row.size for row in rows], dtype=np.int64)
        indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = (
            np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        if weight_rows is None:
            weights = np.ones(indices.size, dtype=np.float64)
        else:
            weights = (
                np.concatenate(weight_rows)
                if weight_rows
                else np.zeros(0, dtype=np.float64)
            ).astype(np.float64, copy=False)
        return cls(indptr, indices, weights)

    @property
    def n_vertices(self) -> int:
        """Rows in the snapshot."""
        return int(self.indptr.size - 1)

    @property
    def n_slots(self) -> int:
        """Total packed adjacency entries."""
        return int(self.indices.size)

    def neighbors(self, v: int) -> np.ndarray:
        """Vertex ``v``'s packed neighbor slice (a view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def weights_of(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors` (a view)."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def ranked(self) -> np.ndarray:
        """Flat permutation ranking each row by (-weight, neighbor id).

        ``indices[ranked()[indptr[v] + t]]`` is vertex ``v``'s ``t``-th
        heaviest neighbor (ties broken by ascending id) — the gather order
        of the deterministic top-k sampler. Built once, cached.
        """
        if self._ranked is None:
            gids = np.repeat(
                np.arange(self.n_vertices, dtype=np.int64), self.degrees
            )
            self._ranked = np.lexsort((self.indices, -self.weights, gids))
        return self._ranked

    # ------------------------------------------------------------------ #
    # Batched draw kernels
    # ------------------------------------------------------------------ #
    def _pad_empty(
        self, vertices: np.ndarray, count: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Self-padded output scaffold + the non-empty row mask."""
        out = np.repeat(vertices[:, None], count, axis=1)
        return out, self.degrees[vertices] > 0

    def sample_uniform(
        self, vertices: np.ndarray, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform with-replacement fan-out: ``(len(vertices), count)`` ids.

        Zero-degree rows pad with the vertex itself (self-loop semantics).
        """
        out, nz = self._pad_empty(vertices, count)
        if nz.any():
            vs = vertices[nz]
            slot = rng.integers(0, self.degrees[vs][:, None], size=(vs.size, count))
            out[nz] = self.indices[self.indptr[vs][:, None] + slot]
        return out

    def sample_alias(
        self,
        vertices: np.ndarray,
        count: int,
        rng: np.random.Generator,
        table: "object",
    ) -> np.ndarray:
        """Weighted fan-out through a grouped alias ``table`` over this CSR."""
        out, nz = self._pad_empty(vertices, count)
        if nz.any():
            flat = table.draw_for_groups(vertices[nz], count, rng)
            out[nz] = self.indices[flat]
        return out

    def sample_ranked(
        self, vertices: np.ndarray, count: int, max_take: "int | None" = None
    ) -> np.ndarray:
        """Deterministic heaviest-``count`` fan-out, cyclically tiled.

        Row ``v`` yields its ``min(count, deg, max_take)`` top-ranked
        neighbors repeated cyclically to ``count`` — the batched form of the
        top-k sampler's ``np.tile`` contract.
        """
        return self._gather_cyclic(self.ranked(), vertices, count, max_take)

    def sample_leading(
        self, vertices: np.ndarray, count: int, max_take: "int | None" = None
    ) -> np.ndarray:
        """Like :meth:`sample_ranked` but in raw CSR order (full sampler)."""
        return self._gather_cyclic(None, vertices, count, max_take)

    def _gather_cyclic(
        self,
        perm: "np.ndarray | None",
        vertices: np.ndarray,
        count: int,
        max_take: "int | None",
    ) -> np.ndarray:
        out, nz = self._pad_empty(vertices, count)
        if nz.any():
            vs = vertices[nz]
            take = self.degrees[vs]
            if max_take is not None:
                take = np.minimum(take, max_take)
            pos = np.arange(count, dtype=np.int64)[None, :] % take[:, None]
            flat = self.indptr[vs][:, None] + pos
            if perm is not None:
                flat = perm[flat]
            out[nz] = self.indices[flat]
        return out
