"""Sampler plugin interface and neighbor providers.

Samplers are plugins (paper: "we treat all samplers as plugins. Each of them
can be implemented independently") with two halves:

* ``sample(...)`` — the forward computation;
* ``backward(feedback)`` — the update path. The paper implements dynamic
  sampling weights "in a sampler's backward computation, just like gradient
  back propagation of an operator": callers register an update function and
  feed it feedback; weighted samplers use it to adjust their distributions.

Neighborhood samplers read adjacency through a :class:`NeighborProvider`, so
the same sampler runs against a plain in-memory :class:`Graph` or against the
distributed store (with local/cache/remote accounting), matching the paper's
"one-hop neighbors from local storage, multi-hop from local cache, else a
call to a remote graph server".
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SamplingError
from repro.graph.graph import Graph


class Sampler:
    """Base class for all samplers (TRAVERSE / NEIGHBORHOOD / NEGATIVE)."""

    name = "abstract"

    def __init__(self) -> None:
        self._update_fn: Callable[..., None] | None = None

    def register_update_fn(self, fn: Callable[..., None]) -> None:
        """Register the backward (weight update) function of this sampler."""
        self._update_fn = fn

    def backward(self, *args: object, **kwargs: object) -> None:
        """Run the registered update function (no-op when none registered).

        Synchronous vs asynchronous application is the training loop's
        choice (paper: "the updating mode ... is due to the training
        algorithm"); here backward applies immediately when called.
        """
        if self._update_fn is not None:
            self._update_fn(*args, **kwargs)


class NeighborProvider:
    """Adjacency access abstraction consumed by neighborhood samplers."""

    #: Whether a full CSR snapshot of this provider is free to take (pure
    #: memory views, no priced reads). Samplers with ``backend="auto"``
    #: pick the batched kernels exactly when this is True; priced providers
    #: keep the per-vertex reference path so their cost ledgers are
    #: unchanged unless a snapshot is explicitly requested.
    csr_cost_free = False

    #: Adjacency version counter. Providers over mutable sources bump this
    #: on every structural change; samplers compare it against the version
    #: their CSR snapshot was built at and rebuild when it moved.
    version = 0

    def neighbors(self, vertex: int) -> np.ndarray:
        """Out-neighbor ids of ``vertex``."""
        raise NotImplementedError

    def prefetch(self, vertices: np.ndarray) -> None:
        """Hint that ``vertices`` are about to be read.

        Samplers call this once per hop with the whole frontier; providers
        backed by the distributed store use it to coalesce the hop's remote
        reads into batched RPCs. The in-memory provider ignores it.
        """

    def weights(self, vertex: int) -> np.ndarray:
        """Edge weights aligned with :meth:`neighbors`."""
        raise NotImplementedError

    def csr_snapshot(self) -> "object":
        """A :class:`~repro.sampling.kernels.CsrAdjacency` of this provider.

        The default scans the provider one vertex at a time (every read
        priced as usual); providers with a cheaper bulk path override it.
        """
        from repro.sampling.kernels import CsrAdjacency

        return CsrAdjacency.from_provider(self)

    @property
    def n_vertices(self) -> int:
        """Total vertices addressable through this provider."""
        raise NotImplementedError


class GraphProvider(NeighborProvider):
    """Direct in-memory adjacency access (single-machine path)."""

    csr_cost_free = True

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.graph.out_neighbors(vertex)

    def weights(self, vertex: int) -> np.ndarray:
        return self.graph.out_weights(vertex)

    def csr_snapshot(self) -> "object":
        from repro.sampling.kernels import CsrAdjacency

        return CsrAdjacency.from_graph(self.graph)

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices


class SnapshotProvider(NeighborProvider):
    """Adjacency over one timestamp of a :class:`DynamicGraph`.

    :meth:`advance` moves to another snapshot and bumps :attr:`version`, so
    batched samplers bound to this provider rebuild their CSR on the next
    draw — the "refresh on dynamic-graph updates" contract without the
    sampler knowing about dynamic graphs at all.
    """

    csr_cost_free = True

    def __init__(self, dynamic_graph: "object", t: int = 0) -> None:
        self.dynamic_graph = dynamic_graph
        self.t = int(t)
        self.graph = dynamic_graph.snapshot(self.t)
        self.version = 0

    def advance(self, t: int) -> "SnapshotProvider":
        """Rebind to snapshot ``t`` (no-op when already there)."""
        t = int(t)
        if t != self.t:
            self.graph = self.dynamic_graph.snapshot(t)
            self.t = t
            self.version += 1
        return self

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.graph.out_neighbors(vertex)

    def weights(self, vertex: int) -> np.ndarray:
        return self.graph.out_weights(vertex)

    def csr_snapshot(self) -> "object":
        from repro.sampling.kernels import CsrAdjacency

        return CsrAdjacency.from_graph(self.graph)

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices


class StoreProvider(NeighborProvider):
    """Adjacency access through the distributed store, as one worker.

    Every read is routed (and priced) by the store: local shard, neighbor
    cache, or remote RPC. ``from_part`` identifies the issuing worker.
    Weights for remote vertices are uniform — shipping weight vectors is a
    cost the paper's samplers avoid by using cached/dynamic local weights.

    With ``batched=True`` (the default), :meth:`prefetch` resolves a whole
    frontier through ``store.get_neighbors_batch`` — one deduplicated RPC
    per destination server via the runtime — and :meth:`neighbors` serves
    from the prefetched rows; vertices read outside a prefetch fall back to
    the per-vertex path, so results are identical either way.
    """

    def __init__(self, store: "object", from_part: int, batched: bool = True) -> None:
        # Typed loosely to avoid a circular import with repro.storage.
        self.store = store
        self.from_part = from_part
        self.batched = batched
        self._prefetched: "dict[int, np.ndarray]" = {}

    def prefetch(self, vertices: np.ndarray) -> None:
        if not self.batched:
            return
        self._prefetched = self.store.get_neighbors_batch(
            vertices, from_part=self.from_part
        )

    def csr_snapshot(self) -> "object":
        """CSR snapshot via one bulk batched read of the whole graph.

        Every row is fetched through ``get_neighbors_batch`` — one
        deduplicated RPC per owning server, fully priced on the cost
        ledger. Pays once; afterwards batched kernels draw without any
        per-hop store traffic (weights stay uniform, as for all remote
        reads through this provider).
        """
        from repro.sampling.kernels import CsrAdjacency

        all_vertices = np.arange(self.n_vertices, dtype=np.int64)
        fetched = self.store.get_neighbors_batch(
            all_vertices, from_part=self.from_part
        )
        rows = [
            np.asarray(fetched[int(v)], dtype=np.int64) for v in all_vertices
        ]
        return CsrAdjacency.from_rows(rows)

    def neighbors(self, vertex: int) -> np.ndarray:
        row = self._prefetched.get(int(vertex))
        if row is not None:
            return row
        return self.store.neighbors(vertex, from_part=self.from_part)

    def weights(self, vertex: int) -> np.ndarray:
        return np.ones(self.neighbors(vertex).size, dtype=np.float64)

    @property
    def n_vertices(self) -> int:
        return self.store.graph.n_vertices


def check_batch_size(batch_size: int) -> None:
    """Shared validation for sampler batch sizes."""
    if batch_size < 1:
        raise SamplingError(f"batch size must be positive, got {batch_size}")
