"""The Figure 5 sampling stage: TRAVERSE + NEIGHBORHOOD + NEGATIVE.

The paper's canonical training-sample stage is::

    vertex  = s1.sample(edge_type, batch_size)        # TRAVERSE
    context = s2.sample(edge_type, vertex, hop_nums)   # NEIGHBORHOOD
    neg     = s3.sample(edge_type, vertex, neg_num)    # NEGATIVE

:class:`SamplingPipeline` packages exactly that, returning a
:class:`TrainingBatch`. When the neighborhood sampler reads through a
:class:`StoreProvider` the distributed sub-batching happens implicitly: each
vertex's context resolves against its owning graph server (or a cache), and
the stitched result comes back in batch order.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.sampling.base import Sampler, check_batch_size
from repro.sampling.neighborhood import NeighborhoodSample


@dataclass
class TrainingBatch:
    """One training step's worth of samples."""

    vertices: np.ndarray
    context: NeighborhoodSample
    negatives: np.ndarray

    @property
    def batch_size(self) -> int:
        """Seed vertices in this batch."""
        return int(self.vertices.size)


class SamplingPipeline:
    """Composes the three sampler families into one stage.

    When a :class:`~repro.runtime.metrics.MetricsRegistry` is supplied, each
    stage runs inside a span timer (``pipeline.traverse_us`` /
    ``pipeline.neighborhood_us`` / ``pipeline.negative_us``) and the
    ``pipeline.batches`` counter tracks produced batches.
    """

    def __init__(
        self,
        traverse: Sampler,
        neighborhood: Sampler,
        negative: Sampler,
        hop_nums: "list[int]",
        neg_num: int,
        metrics: "object | None" = None,
    ) -> None:
        check_batch_size(neg_num)
        self.traverse = traverse
        self.neighborhood = neighborhood
        self.negative = negative
        self.hop_nums = list(hop_nums)
        self.neg_num = neg_num
        self.metrics = metrics

    def _span(self, name: str):
        if self.metrics is None:
            return nullcontext()
        return self.metrics.timer(name)

    def sample(self, batch_size: int, rng: np.random.Generator) -> TrainingBatch:
        """Produce one :class:`TrainingBatch` of ``batch_size`` seeds."""
        with self._span("pipeline.traverse_us"):
            vertices = self.traverse.sample(batch_size, rng)
            if isinstance(vertices, tuple):  # edge traverse: use source endpoints
                vertices = vertices[0]
        with self._span("pipeline.neighborhood_us"):
            context = self.neighborhood.sample(vertices, self.hop_nums, rng)
        with self._span("pipeline.negative_us"):
            negatives = self.negative.sample(vertices, self.neg_num, rng)
        if self.metrics is not None:
            self.metrics.counter("pipeline.batches").inc()
        return TrainingBatch(vertices=vertices, context=context, negatives=negatives)
