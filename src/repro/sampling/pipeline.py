"""The Figure 5 sampling stage: TRAVERSE + NEIGHBORHOOD + NEGATIVE.

The paper's canonical training-sample stage is::

    vertex  = s1.sample(edge_type, batch_size)        # TRAVERSE
    context = s2.sample(edge_type, vertex, hop_nums)   # NEIGHBORHOOD
    neg     = s3.sample(edge_type, vertex, neg_num)    # NEGATIVE

:class:`SamplingPipeline` packages exactly that, returning a
:class:`TrainingBatch`. When the neighborhood sampler reads through a
:class:`StoreProvider` the distributed sub-batching happens implicitly: each
vertex's context resolves against its owning graph server (or a cache), and
the stitched result comes back in batch order.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.sampling.base import Sampler, check_batch_size
from repro.sampling.neighborhood import NeighborhoodSample


@dataclass
class TrainingBatch:
    """One training step's worth of samples."""

    vertices: np.ndarray
    context: NeighborhoodSample
    negatives: np.ndarray

    @property
    def batch_size(self) -> int:
        """Seed vertices in this batch."""
        return int(self.vertices.size)


class SamplingPipeline:
    """Composes the three sampler families into one stage.

    When a :class:`~repro.runtime.metrics.MetricsRegistry` is supplied, each
    stage runs inside a span timer (``pipeline.traverse_us`` /
    ``pipeline.neighborhood_us`` / ``pipeline.negative_us``), the
    ``pipeline.batches`` counter tracks produced batches and
    ``pipeline.seeds`` counts sampled seeds labeled by the traverse
    sampler's edge/vertex type. With a registry whose clock is bound to the
    RPC runtime's virtual clock, the stage timers are deterministic.

    When a :class:`~repro.runtime.tracing.Tracer` is supplied, every
    :meth:`sample` call roots one trace (``pipeline.sample``) with one
    child span per stage — the store, batcher and RPC spans opened further
    down the read path nest under them.
    """

    def __init__(
        self,
        traverse: Sampler,
        neighborhood: Sampler,
        negative: Sampler,
        hop_nums: "list[int]",
        neg_num: int,
        metrics: "object | None" = None,
        tracer: "object | None" = None,
    ) -> None:
        check_batch_size(neg_num)
        self.traverse = traverse
        self.neighborhood = neighborhood
        self.negative = negative
        self.hop_nums = list(hop_nums)
        self.neg_num = neg_num
        self.metrics = metrics
        self.tracer = tracer

    def _span(self, name: str):
        if self.metrics is None:
            return nullcontext()
        return self.metrics.timer(name)

    def _trace_span(self, name: str, **attrs: object):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    def _seed_type(self) -> str:
        """Label value for per-type seed accounting (``edge_type`` label)."""
        for attr in ("edge_type", "vertex_type"):
            value = getattr(self.traverse, attr, None)
            if value is not None:
                return str(value)
        return "any"

    def sample(self, batch_size: int, rng: np.random.Generator) -> TrainingBatch:
        """Produce one :class:`TrainingBatch` of ``batch_size`` seeds."""
        with self._trace_span(
            "pipeline.sample", batch_size=batch_size, hop_nums=str(self.hop_nums)
        ):
            with self._trace_span("pipeline.traverse"), self._span(
                "pipeline.traverse_us"
            ):
                vertices = self.traverse.sample(batch_size, rng)
                if isinstance(vertices, tuple):  # edge traverse: source endpoints
                    vertices = vertices[0]
            with self._trace_span("pipeline.neighborhood"), self._span(
                "pipeline.neighborhood_us"
            ):
                context = self.neighborhood.sample(vertices, self.hop_nums, rng)
            with self._trace_span("pipeline.negative"), self._span(
                "pipeline.negative_us"
            ):
                negatives = self.negative.sample(vertices, self.neg_num, rng)
            if self.metrics is not None:
                self.metrics.counter("pipeline.batches").inc()
                self.metrics.counter(
                    "pipeline.seeds", labels={"edge_type": self._seed_type()}
                ).inc(batch_size)
        return TrainingBatch(vertices=vertices, context=context, negatives=negatives)
