"""Seeded load generators: open- and closed-loop arrival processes.

The two canonical ways of driving a service (and they disagree about what
overload looks like, which is why the serving bench runs both):

* **open loop** — arrivals follow a time-varying Poisson process that does
  not care whether the server keeps up. This is "millions of users" traffic:
  a slow server just grows its queues. Arrival times come from thinning a
  homogeneous Poisson process at the shape's peak rate, so any integrable
  rate shape works with one code path.
* **closed loop** — a fixed population of clients, each issuing its next
  request only after the previous one finished plus an exponential think
  time. Slow service *reduces* offered load, which is how benchmark
  harnesses accidentally hide latency problems.

Traffic shapes are plain ``rate(t_us) -> requests/s`` callables;
:func:`diurnal_rate` builds the paper-motivated shape (sinusoidal
day/night swing plus a flash-burst window), and hot-key skew comes from the
seeded :class:`~repro.utils.stats.ZipfSampler` over the user population.
Every random choice — arrival gaps, thinning accepts, request class, user —
draws from one seeded generator in event order, so a workload replays bit
for bit under the same seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ServingError
from repro.serving.requests import (
    CLASS_CACHED,
    CLASS_FRESH,
    ServeRecord,
    ServeRequest,
)
from repro.utils.rng import make_rng
from repro.utils.stats import ZipfSampler

#: Default per-class deadlines (µs of virtual time past arrival). Cached
#: reads are latency-critical; fresh recomputes buy accuracy with a looser
#: budget. At the simulation's cost scale (remote_rpc=100us) these are
#: "a few cache reads" vs "a couple of hop expansions".
DEFAULT_DEADLINES_US = {CLASS_CACHED: 2_000.0, CLASS_FRESH: 30_000.0}


def constant_rate(rps: float):
    """A flat traffic shape of ``rps`` requests per (virtual) second."""
    if rps <= 0:
        raise ServingError(f"rate must be positive, got {rps}")
    return lambda t_us: rps


def diurnal_rate(
    base_rps: float,
    peak_rps: float,
    period_us: float = 4_000_000.0,
    burst_at: float = 0.6,
    burst_width: float = 0.05,
    burst_multiplier: float = 1.0,
):
    """The diurnal-burst shape: day/night sinusoid plus a flash burst.

    Rate swings sinusoidally between ``base_rps`` (trough) and ``peak_rps``
    (crest) with period ``period_us``; within the window starting at
    fraction ``burst_at`` of each period and lasting ``burst_width`` of it,
    the rate is additionally multiplied by ``burst_multiplier`` (a flash
    sale / celebrity event spike). ``burst_multiplier=1`` disables the
    burst.
    """
    if not 0 < base_rps <= peak_rps:
        raise ServingError(
            f"need 0 < base_rps <= peak_rps, got {base_rps}, {peak_rps}"
        )
    if period_us <= 0:
        raise ServingError(f"period must be positive, got {period_us}")
    if burst_multiplier < 1.0:
        raise ServingError(
            f"burst multiplier must be >= 1, got {burst_multiplier}"
        )

    def rate(t_us: float) -> float:
        phase = (t_us % period_us) / period_us
        mid = (base_rps + peak_rps) / 2.0
        swing = (peak_rps - base_rps) / 2.0
        r = mid + swing * math.sin(2.0 * math.pi * (phase - 0.25))
        if burst_at <= phase < burst_at + burst_width:
            r *= burst_multiplier
        return r

    rate.peak_rps = peak_rps * burst_multiplier
    return rate


class _RequestMinter:
    """Shared request construction: user draw, class mix, deadlines."""

    def __init__(
        self,
        users: np.ndarray,
        fresh_fraction: float,
        deadlines_us: "dict[str, float] | None",
        zipf_exponent: float,
    ) -> None:
        users = np.asarray(users, dtype=np.int64).reshape(-1)
        if users.size == 0:
            raise ServingError("need at least one user to serve")
        if not 0.0 <= fresh_fraction <= 1.0:
            raise ServingError(
                f"fresh_fraction must be in [0, 1], got {fresh_fraction}"
            )
        self.users = users
        self.fresh_fraction = fresh_fraction
        self.deadlines_us = dict(DEFAULT_DEADLINES_US)
        if deadlines_us:
            self.deadlines_us.update(deadlines_us)
        self._zipf = ZipfSampler(users, exponent=zipf_exponent)
        self._next_id = 0

    def mint(
        self,
        arrival_us: float,
        rng: np.random.Generator,
        client_id: "int | None" = None,
    ) -> ServeRequest:
        user = int(self._zipf.sample(1, rng)[0])
        cls = CLASS_FRESH if rng.random() < self.fresh_fraction else CLASS_CACHED
        req = ServeRequest(
            req_id=self._next_id,
            user=user,
            cls=cls,
            arrival_us=arrival_us,
            deadline_us=arrival_us + self.deadlines_us[cls],
            client_id=client_id,
        )
        self._next_id += 1
        return req


class OpenLoopWorkload:
    """Time-varying Poisson arrivals, indifferent to server progress.

    ``rate`` is a ``rate(t_us) -> rps`` callable (see :func:`diurnal_rate`
    / :func:`constant_rate`); its ``peak_rps`` attribute, when present,
    bounds the thinning envelope (otherwise the shape is probed on a
    coarse grid and headroom added).
    """

    def __init__(
        self,
        users: np.ndarray,
        duration_us: float,
        rate,
        fresh_fraction: float = 0.1,
        deadlines_us: "dict[str, float] | None" = None,
        zipf_exponent: float = 1.1,
        seed: int = 0,
    ) -> None:
        if duration_us <= 0:
            raise ServingError(f"duration must be positive, got {duration_us}")
        self.duration_us = float(duration_us)
        self.rate = rate
        self.seed = seed
        self._minter = _RequestMinter(
            users, fresh_fraction, deadlines_us, zipf_exponent
        )

    def _envelope_rps(self) -> float:
        peak = getattr(self.rate, "peak_rps", None)
        if peak is not None:
            return float(peak)
        grid = np.linspace(0.0, self.duration_us, 257)
        return 1.25 * max(self.rate(float(t)) for t in grid)

    def initial_arrivals(self) -> "list[ServeRequest]":
        """The full arrival schedule (open loop: all decided up front)."""
        rng = make_rng(self.seed)
        envelope = self._envelope_rps()
        if envelope <= 0:
            raise ServingError("traffic shape has a non-positive peak rate")
        mean_gap_us = 1e6 / envelope
        requests: "list[ServeRequest]" = []
        t = 0.0
        while True:
            t += float(rng.exponential(mean_gap_us))
            if t >= self.duration_us:
                break
            # Poisson thinning: accept with prob rate(t)/envelope.
            if rng.random() < self.rate(t) / envelope:
                requests.append(self._minter.mint(t, rng))
        return requests

    def on_done(self, record: ServeRecord) -> "list[ServeRequest]":
        """Open-loop traffic never reacts to completions."""
        return []


class ClosedLoopWorkload:
    """A fixed client population with exponential think times.

    Each of ``n_clients`` issues ``requests_per_client`` requests; the next
    request of a client enters the system ``think`` after its previous one
    reached a terminal outcome (served, shed or dropped — a shed request
    still sends its user back to thinking, which is exactly the
    self-throttling that distinguishes closed-loop load).
    """

    def __init__(
        self,
        users: np.ndarray,
        n_clients: int,
        requests_per_client: int,
        think_us: float = 10_000.0,
        fresh_fraction: float = 0.1,
        deadlines_us: "dict[str, float] | None" = None,
        zipf_exponent: float = 1.1,
        seed: int = 0,
    ) -> None:
        if n_clients < 1:
            raise ServingError(f"need >= 1 client, got {n_clients}")
        if requests_per_client < 1:
            raise ServingError(
                f"need >= 1 request per client, got {requests_per_client}"
            )
        if think_us <= 0:
            raise ServingError(f"think time must be positive, got {think_us}")
        self.n_clients = n_clients
        self.requests_per_client = requests_per_client
        self.think_us = float(think_us)
        self.seed = seed
        self._minter = _RequestMinter(
            users, fresh_fraction, deadlines_us, zipf_exponent
        )
        self._rng = make_rng(seed)
        self._remaining = {c: requests_per_client for c in range(n_clients)}
        self._client_of: "dict[int, int]" = {}

    def _issue(self, client: int, at_us: float) -> ServeRequest:
        self._remaining[client] -= 1
        req = self._minter.mint(at_us, self._rng, client_id=client)
        self._client_of[req.req_id] = client
        return req

    def initial_arrivals(self) -> "list[ServeRequest]":
        """Each client's first request, after an initial think draw.

        The stagger prevents the degenerate all-arrive-at-zero start while
        keeping the schedule a pure function of the seed.
        """
        out = []
        for client in range(self.n_clients):
            at = float(self._rng.exponential(self.think_us))
            out.append(self._issue(client, at))
        return out

    def on_done(self, record: ServeRecord) -> "list[ServeRequest]":
        """Wake the issuing client; it thinks, then asks again."""
        client = self._client_of.pop(record.req_id, None)
        if client is None or self._remaining[client] <= 0:
            return []
        at = record.end_us + float(self._rng.exponential(self.think_us))
        return [self._issue(client, at)]
