"""SLO reporting: per-class latency tails, goodput and loss accounting.

A serving tier is judged against its service-level objectives, not its
means: the questions are "what is the p99 per request class?", "how many
answers arrived *within deadline* per second?" (goodput) and "how much
load was shed or expired?". :func:`build_slo_report` folds a request trace
(the :class:`~repro.serving.requests.ServeRecord` list an engine run
returns) into exactly those rows, using the registry's exact nearest-rank
percentiles so the numbers match every other latency table in the repo.

Reports are plain data (:meth:`SLOReport.to_dict` is JSON-ready), render
as an aligned table, and are **bit-comparable**: the determinism tests and
the serving bench assert equality of whole reports across same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.metrics import Histogram
from repro.serving.requests import (
    OUTCOME_DEADLINE,
    OUTCOME_LATE,
    OUTCOME_OK,
    OUTCOME_SHED,
    REQUEST_CLASSES,
)
from repro.utils.tables import format_table


@dataclass
class SLOClassReport:
    """SLO outcome of one request class."""

    cls: str
    requests: int = 0
    ok: int = 0
    late: int = 0
    shed: int = 0
    expired: int = 0
    cache_hits: int = 0
    p50_us: float = 0.0
    p95_us: float = 0.0
    p99_us: float = 0.0
    mean_us: float = 0.0

    @property
    def completed(self) -> int:
        """Requests that received an answer (in or out of deadline)."""
        return self.ok + self.late

    def to_dict(self) -> dict:
        return {
            "class": self.cls,
            "requests": self.requests,
            "ok": self.ok,
            "late": self.late,
            "shed": self.shed,
            "expired": self.expired,
            "cache_hits": self.cache_hits,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "mean_us": self.mean_us,
        }


@dataclass
class SLOReport:
    """The full SLO table of one serving run."""

    duration_us: float
    classes: "list[SLOClassReport]" = field(default_factory=list)

    def class_report(self, cls: str) -> SLOClassReport:
        """The row for request class ``cls``."""
        for row in self.classes:
            if row.cls == cls:
                return row
        raise KeyError(cls)

    @property
    def goodput_rps(self) -> float:
        """In-deadline answers per simulated second, all classes."""
        if self.duration_us <= 0:
            return 0.0
        return sum(r.ok for r in self.classes) / (self.duration_us / 1e6)

    @property
    def total_requests(self) -> int:
        return sum(r.requests for r in self.classes)

    def to_dict(self) -> dict:
        """JSON-ready payload (the determinism comparison unit)."""
        return {
            "duration_us": self.duration_us,
            "goodput_rps": round(self.goodput_rps, 6),
            "classes": [r.to_dict() for r in self.classes],
        }

    def render(self, title: str = "serving SLO report") -> str:
        """Aligned per-class table plus a goodput footer."""
        rows = []
        for r in self.classes:
            rows.append(
                [
                    r.cls,
                    r.requests,
                    r.ok,
                    r.late,
                    r.shed,
                    r.expired,
                    r.cache_hits,
                    round(r.p50_us, 1),
                    round(r.p95_us, 1),
                    round(r.p99_us, 1),
                ]
            )
        table = format_table(
            [
                "class", "requests", "ok", "late", "shed", "expired",
                "cache_hits", "p50 us", "p95 us", "p99 us",
            ],
            rows,
            title=title,
        )
        secs = self.duration_us / 1e6
        return (
            f"{table}\n  goodput: {self.goodput_rps:.1f} in-deadline "
            f"answers/s over {secs:.3f} simulated seconds"
        )


def build_slo_report(
    records: "list",
    duration_us: "float | None" = None,
) -> SLOReport:
    """Fold a request trace into an :class:`SLOReport`.

    ``duration_us`` defaults to the last terminal event's timestamp, so
    goodput is measured over the span the trace actually covers. Latency
    percentiles are computed over *answered* requests only (ok + late);
    shed and expired requests are counted, not averaged in — a shed
    request has no latency, it has an outcome.
    """
    if duration_us is None:
        duration_us = max((r.end_us for r in records), default=0.0)
    report = SLOReport(duration_us=float(duration_us))
    for cls in REQUEST_CLASSES:
        row = SLOClassReport(cls=cls)
        lat = Histogram(f"slo.{cls}")
        for rec in records:
            if rec.cls != cls:
                continue
            row.requests += 1
            if rec.cache_hit:
                row.cache_hits += 1
            if rec.outcome == OUTCOME_OK:
                row.ok += 1
            elif rec.outcome == OUTCOME_LATE:
                row.late += 1
            elif rec.outcome == OUTCOME_SHED:
                row.shed += 1
            elif rec.outcome == OUTCOME_DEADLINE:
                row.expired += 1
            if rec.outcome in (OUTCOME_OK, OUTCOME_LATE):
                lat.observe(rec.latency_us)
        if lat.count:
            row.p50_us, row.p95_us, row.p99_us = lat.percentiles((50, 95, 99))
            row.mean_us = round(lat.mean, 3)
        if row.requests:
            report.classes.append(row)
    return report
