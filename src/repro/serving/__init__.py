"""Online inference serving tier (the request-facing front of the platform).

AliGraph's purpose is answering Taobao-scale recommendation queries; this
package closes the loop from stored graph to served answer. It layers a
request-serving front end over the existing substrate — distributed store,
batched sampling kernels, RPC runtime, importance caches — all on the same
virtual clock, so every prior read-path optimization becomes a measurable
end-to-end latency/goodput win:

* :mod:`repro.serving.requests` — request classes (cheap ``cached`` read
  vs expensive ``fresh`` recompute), outcomes and the request-trace record;
* :mod:`repro.serving.admission` — SLO-aware admission control: bounded
  per-class queues, shed-on-overflow, deadline-aware drops;
* :mod:`repro.serving.engine` — :class:`ServingEngine`, the event-driven
  serving loop (embedding-cache reads, on-demand k-hop inference through
  the store, deterministic virtual-clock accounting);
* :mod:`repro.serving.loadgen` — seeded open- and closed-loop load
  generators with diurnal-burst and Zipf hot-key traffic shapes;
* :mod:`repro.serving.slo` — p50/p95/p99, goodput and shed/expired
  accounting per request class, bit-comparable across same-seed runs.

Quickstart::

    from repro.data import make_dataset
    from repro.serving import (
        OpenLoopWorkload, ServingEngine, build_slo_report, diurnal_rate,
    )
    from repro.storage import ImportanceCachePolicy
    from repro.storage.cluster import make_store

    graph = make_dataset("taobao-small-sim", scale=0.2)
    store = make_store(graph, 4, cache_policy=ImportanceCachePolicy(),
                       cache_budget_fraction=0.1)
    engine = ServingEngine(store, seed=7)
    workload = OpenLoopWorkload(
        users=graph.vertices_of_type("user"), duration_us=2_000_000,
        rate=diurnal_rate(200, 800, burst_multiplier=3.0), seed=7,
    )
    print(build_slo_report(engine.run(workload)).render())
"""

from repro.serving.admission import AdmissionController, BoundedQueue
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.loadgen import (
    DEFAULT_DEADLINES_US,
    ClosedLoopWorkload,
    OpenLoopWorkload,
    constant_rate,
    diurnal_rate,
)
from repro.serving.requests import (
    CLASS_CACHED,
    CLASS_FRESH,
    OUTCOME_DEADLINE,
    OUTCOME_LATE,
    OUTCOME_OK,
    OUTCOME_SHED,
    OUTCOMES,
    REQUEST_CLASSES,
    ServeRecord,
    ServeRequest,
)
from repro.serving.slo import SLOClassReport, SLOReport, build_slo_report

__all__ = [
    "AdmissionController",
    "BoundedQueue",
    "ServingConfig",
    "ServingEngine",
    "ClosedLoopWorkload",
    "OpenLoopWorkload",
    "constant_rate",
    "diurnal_rate",
    "DEFAULT_DEADLINES_US",
    "CLASS_CACHED",
    "CLASS_FRESH",
    "REQUEST_CLASSES",
    "OUTCOME_OK",
    "OUTCOME_LATE",
    "OUTCOME_SHED",
    "OUTCOME_DEADLINE",
    "OUTCOMES",
    "ServeRecord",
    "ServeRequest",
    "SLOClassReport",
    "SLOReport",
    "build_slo_report",
]
