"""SLO-aware admission control: bounded per-class queues + deadline drops.

A serving tier that accepts everything under overload answers nothing on
time; production front ends bound their queues and reject (shed) excess
load *at admission*, where the rejection costs microseconds, instead of
timing out after the work is done. Two mechanisms, both deterministic:

* **shed on overflow** — each request class has its own bounded FIFO; an
  arrival finding its class queue full is rejected immediately. Cached and
  fresh traffic are bounded independently so a burst of expensive fresh
  recomputes cannot starve the cheap cached reads behind it.
* **deadline-aware drop** — a request whose deadline has already passed
  when the server would start it is dropped *without* being served: the
  answer could no longer be useful, so serving it would only add queueing
  delay to every request behind it.

The controller owns queue state and the shed/expire decisions; the engine
owns time and service. Queue depths are mirrored into ``serving.queue_depth
{class=...}`` gauges so saturation shows up in every metrics export.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ServingError
from repro.serving.requests import CLASS_CACHED, REQUEST_CLASSES, ServeRequest


class BoundedQueue:
    """Bounded FIFO of admitted-but-unserved requests for one class."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServingError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.high_water = 0
        self._queue: "deque[ServeRequest]" = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """Whether an arrival would be shed."""
        return len(self._queue) >= self.capacity

    def push(self, req: ServeRequest) -> None:
        """Enqueue ``req`` (caller checks :attr:`full` first — admission
        decisions belong to the controller, not the queue)."""
        if self.full:
            raise ServingError(f"queue of capacity {self.capacity} overflowed")
        self._queue.append(req)
        self.high_water = max(self.high_water, len(self._queue))

    def head(self) -> "ServeRequest | None":
        """The next request to serve, or None when empty."""
        return self._queue[0] if self._queue else None

    def pop(self) -> ServeRequest:
        """Dequeue the head."""
        if not self._queue:
            raise ServingError("pop from an empty queue")
        return self._queue.popleft()


class AdmissionController:
    """Per-class bounded queues with shed and deadline-drop accounting."""

    def __init__(
        self,
        capacities: "dict[str, int]",
        metrics: "object | None" = None,
    ) -> None:
        unknown = set(capacities) - set(REQUEST_CLASSES)
        if unknown:
            raise ServingError(f"unknown request classes {sorted(unknown)}")
        self.queues = {
            cls: BoundedQueue(capacities.get(cls, 64))
            for cls in REQUEST_CLASSES
        }
        self.metrics = metrics
        self.shed = {cls: 0 for cls in REQUEST_CLASSES}
        self.expired = {cls: 0 for cls in REQUEST_CLASSES}

    def _gauge(self, cls: str) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "serving.queue_depth", labels={"class": cls}
            ).set(len(self.queues[cls]))

    def offer(self, req: ServeRequest) -> bool:
        """Admit ``req`` or shed it; returns whether it was admitted."""
        queue = self.queues[req.cls]
        if queue.full:
            self.shed[req.cls] += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "serving.shed", labels={"class": req.cls}
                ).inc()
            return False
        queue.push(req)
        self._gauge(req.cls)
        return True

    @property
    def depth(self) -> int:
        """Admitted requests currently waiting, across classes."""
        return sum(len(q) for q in self.queues.values())

    def next_request(self) -> "ServeRequest | None":
        """Peek the next request to serve across classes.

        Earliest arrival wins; on an exact tie the cached class goes first
        (it is the cheap, latency-critical tier). Deterministic because
        arrival times and queue contents are.
        """
        best: "ServeRequest | None" = None
        for cls in (CLASS_CACHED,) + tuple(
            c for c in REQUEST_CLASSES if c != CLASS_CACHED
        ):
            head = self.queues[cls].head()
            if head is None:
                continue
            if best is None or head.arrival_us < best.arrival_us:
                best = head
        return best

    def take(self, req: ServeRequest) -> None:
        """Remove ``req`` (previously returned by :meth:`next_request`)."""
        popped = self.queues[req.cls].pop()
        if popped is not req:
            raise ServingError("take() must follow next_request()")
        self._gauge(req.cls)

    def expire(self, req: ServeRequest) -> None:
        """Account a deadline drop decided by the engine at dequeue."""
        self.expired[req.cls] += 1
        if self.metrics is not None:
            self.metrics.counter(
                "serving.deadline_drops", labels={"class": req.cls}
            ).inc()
