"""The serving front end: one engine turning queries into answers on time.

:class:`ServingEngine` is the request-serving loop the reproduction was
missing — the piece that turns the stored graph, the sampling kernels and
the RPC runtime into *measured end-to-end latency*. It is an event-driven
simulation on the runtime's :class:`~repro.runtime.rpc.VirtualClock`:

* **cached reads** resolve against a bounded per-user embedding LRU — a
  few microseconds when the user is hot, an escalation to the fresh path
  when not (which then refills the cache, so Zipf-skewed traffic converges
  to a high hit rate);
* **fresh inference** samples the user's k-hop neighborhood through the
  :class:`~repro.storage.cluster.DistributedGraphStore` — per-hop frontier
  prefetch, deduplicated batched RPCs, importance-cache hits, failover;
  everything the read path learned in PRs 1–5 now shows up as serving
  latency — and aggregates base vectors bottom-up (mean + combine +
  normalize, the Algorithm-1 forward shape) into a fresh embedding;
* **admission control** (:mod:`repro.serving.admission`) bounds each
  request class's queue, sheds on overflow and drops expired requests at
  dequeue instead of serving useless answers.

Time accounting per served request: RPC wire time lands on the clock while
the store executes (retry waits included); non-RPC read costs (local reads,
cache hits, shipping) are taken from the cost-ledger delta; compute is
modelled as ``context rows x compute_us_per_row`` — the same constant the
prefetch-overlap bench calibrated against a profiled GNN fit. Every service
draws from one seeded RNG in event order, so a run's **request trace**
(the returned :class:`~repro.serving.requests.ServeRecord` list) is
bit-identical across same-seed runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServingError
from repro.obs.timeseries import NULL_TIMESERIES
from repro.obs.workload import NULL_RECORDER
from repro.runtime.rpc import RpcRuntime
from repro.sampling.base import StoreProvider
from repro.sampling.neighborhood import UniformNeighborSampler
from repro.serving.admission import AdmissionController
from repro.serving.requests import (
    CLASS_CACHED,
    CLASS_FRESH,
    OUTCOME_DEADLINE,
    OUTCOME_LATE,
    OUTCOME_OK,
    OUTCOME_SHED,
    ServeRecord,
    ServeRequest,
)
from repro.utils.lru import LRUCache
from repro.utils.rng import make_rng


@dataclass
class ServingConfig:
    """Knobs of the serving engine (defaults sized to the cost model)."""

    #: Fan-outs of the fresh-inference neighborhood expansion.
    hop_nums: "list[int]" = field(default_factory=lambda: [10, 5])
    #: Cost of answering a cached read from the embedding table.
    cached_lookup_us: float = 5.0
    #: Modelled forward-aggregation cost per sampled context row.
    compute_us_per_row: float = 0.18
    #: Per-class admission queue bounds (cheap tier deep, expensive shallow).
    queue_capacities: "dict[str, int]" = field(
        default_factory=lambda: {CLASS_CACHED: 64, CLASS_FRESH: 16}
    )
    #: Per-user embedding cache entries (0 disables the cached tier: every
    #: cached-class read escalates to a recompute — the cacheless baseline).
    embed_cache_capacity: int = 512
    #: Width of the base/serving embedding vectors.
    embed_dim: int = 16
    #: Whether a recompute installs its result for later cached reads.
    fresh_fills_cache: bool = True

    def __post_init__(self) -> None:
        if not self.hop_nums or any(h < 1 for h in self.hop_nums):
            raise ServingError(f"hop_nums must be positive, got {self.hop_nums}")
        if self.cached_lookup_us < 0 or self.compute_us_per_row < 0:
            raise ServingError("service costs must be >= 0")
        if self.embed_cache_capacity < 0:
            raise ServingError(
                f"cache capacity must be >= 0, got {self.embed_cache_capacity}"
            )


class ServingEngine:
    """Single-station serving loop over a distributed graph store.

    The engine shares the store's attached :class:`RpcRuntime` (creating a
    fault-free one when absent) so serving, sampling and RPC all advance
    one virtual clock and feed one metrics registry. ``base_vectors``
    supplies the per-vertex embeddings the fresh path aggregates — pass a
    trained model's table, or let the engine derive a seeded stand-in.
    """

    def __init__(
        self,
        store: "object",
        config: "ServingConfig | None" = None,
        base_vectors: "np.ndarray | None" = None,
        tracer: "object | None" = None,
        recorder: "object" = NULL_RECORDER,
        timeseries: "object" = NULL_TIMESERIES,
        placement: "object | None" = None,
        seed: int = 0,
    ) -> None:
        self.store = store
        self.config = config or ServingConfig()
        if store.runtime is None:
            store.attach_runtime(RpcRuntime(store))
        self.runtime: RpcRuntime = store.runtime
        self.clock = self.runtime.clock
        self.metrics = self.runtime.metrics
        self.tracer = tracer
        #: Workload-introspection hooks (repro.obs): the recorder sees one
        #: record_request per finished request, the sampler is polled per
        #: request. Null objects by default.
        self.recorder = recorder
        self.timeseries = timeseries
        #: Optional :class:`~repro.storage.placement.PlacementController`
        #: polled once per finished request — adaptation runs between
        #: services, never inside one, so per-request latency stays a pure
        #: read measurement while promotions/migrations still track the
        #: serving traffic on the same clock.
        self.placement = placement
        self.seed = seed
        self._rng = make_rng(seed)
        n = store.graph.n_vertices
        if base_vectors is None:
            raw = self._rng.normal(size=(n, self.config.embed_dim))
            base_vectors = raw / (
                np.linalg.norm(raw, axis=1, keepdims=True) + 1e-12
            )
        base_vectors = np.asarray(base_vectors, dtype=np.float64)
        if base_vectors.shape[0] != n:
            raise ServingError(
                f"base_vectors rows ({base_vectors.shape[0]}) != graph "
                f"vertices ({n})"
            )
        self.base_vectors = base_vectors
        self.sampler = UniformNeighborSampler(
            StoreProvider(store, from_part=0)
        )
        self.embed_cache = LRUCache(self.config.embed_cache_capacity)
        self.admission = AdmissionController(
            self.config.queue_capacities, metrics=self.metrics
        )
        self.records: "list[ServeRecord]" = []

    # ------------------------------------------------------------------ #
    # Fresh inference: sample through the store, aggregate bottom-up
    # ------------------------------------------------------------------ #
    def _aggregate(self, context) -> np.ndarray:
        """Fold a k-hop context into one embedding (mean + combine + L2).

        The minibatch shape of the Algorithm-1 forward: deepest hop first,
        each level's children are mean-pooled per parent, combined with the
        parent's own base vector and re-normalized.
        """
        base = self.base_vectors
        layers = context.layers
        d = base.shape[1]
        vecs = base[layers[-1]]
        for k in range(context.n_hops, 0, -1):
            fanout = context.hop_nums[k - 1]
            parents = layers[k - 1]
            pooled = vecs.reshape(parents.size, fanout, d).mean(axis=1)
            combined = 0.5 * base[parents] + 0.5 * pooled
            norms = np.linalg.norm(combined, axis=1, keepdims=True) + 1e-12
            vecs = combined / norms
        return vecs[0]

    def _recompute(self, user: int) -> "tuple[np.ndarray, float]":
        """Run fresh inference for ``user``; returns ``(vector, cost_us)``.

        RPC time lands on the clock during the store reads; the remaining
        modelled read cost (ledger delta minus what the clock already
        absorbed) plus the per-row compute model is returned for the
        caller to advance.
        """
        ledger_before = self.store.ledger.modelled_micros()
        clock_before = self.clock.now_us
        context = self.sampler.sample(
            np.asarray([user], dtype=np.int64), self.config.hop_nums, self._rng
        )
        rpc_us = self.clock.now_us - clock_before
        ledger_us = self.store.ledger.modelled_micros() - ledger_before
        rows = int(sum(layer.size for layer in context.layers))
        local_us = max(0.0, ledger_us - rpc_us)
        vector = self._aggregate(context)
        return vector, local_us + rows * self.config.compute_us_per_row

    def _serve(self, req: ServeRequest, start_us: float) -> "tuple[float, bool]":
        """Serve ``req`` starting at ``start_us``; returns ``(end, hit)``."""
        self.clock.advance_to(start_us)
        cache_hit = False
        if req.cls == CLASS_CACHED and self.config.embed_cache_capacity > 0:
            if self.embed_cache.get(req.user) is not None:
                cache_hit = True
                self.metrics.counter("serving.embed_cache_hits").inc()
                self.clock.advance(self.config.cached_lookup_us)
            else:
                self.metrics.counter("serving.embed_cache_misses").inc()
        if not cache_hit:
            vector, cost_us = self._recompute(req.user)
            self.clock.advance(cost_us)
            if self.config.fresh_fills_cache and self.config.embed_cache_capacity:
                self.embed_cache.put(req.user, vector)
        return self.clock.now_us, cache_hit

    # ------------------------------------------------------------------ #
    # The event loop
    # ------------------------------------------------------------------ #
    def _record(
        self,
        req: ServeRequest,
        outcome: str,
        end_us: float,
        queue_us: float,
        service_us: float,
        cache_hit: bool = False,
    ) -> ServeRecord:
        rec = ServeRecord(
            req_id=req.req_id,
            user=req.user,
            cls=req.cls,
            outcome=outcome,
            arrival_us=req.arrival_us,
            end_us=end_us,
            queue_us=queue_us,
            service_us=service_us,
            cache_hit=cache_hit,
        )
        self.records.append(rec)
        self.metrics.counter(
            "serving.requests", labels={"class": req.cls}
        ).inc()
        if outcome in (OUTCOME_OK, OUTCOME_LATE):
            self.metrics.counter(
                "serving.completed", labels={"class": req.cls}
            ).inc()
            self.metrics.histogram(
                "serving.latency_us", labels={"class": req.cls}
            ).observe(rec.latency_us)
            self.metrics.histogram(
                "serving.queue_us", labels={"class": req.cls}
            ).observe(queue_us)
        if self.tracer is not None:
            self.tracer.record_span(
                "serve.request",
                req.arrival_us,
                end_us,
                user=req.user,
                request_class=req.cls,
                outcome=outcome,
                cache_hit=cache_hit,
            )
        if self.recorder.enabled:
            self.recorder.record_request(req.user, req.cls, outcome, cache_hit)
        self.timeseries.poll()
        if self.placement is not None:
            self.placement.poll()
        return rec

    def run(self, workload) -> "list[ServeRecord]":
        """Drive ``workload`` to exhaustion; returns the request trace.

        ``workload`` provides ``initial_arrivals()`` and ``on_done(record)``
        (see :mod:`repro.serving.loadgen`). Arrivals and the single service
        station are merged into one deterministic event order: the server
        takes the queued request with the earliest arrival whenever it
        would start no later than the next arrival; otherwise the next
        arrival is admitted (or shed). Closed-loop workloads feed new
        arrivals back through ``on_done`` — pushed times never precede the
        completion that caused them, so heap order is safe.
        """
        heap: "list[tuple[float, int, ServeRequest]]" = []
        seq = 0

        def push(reqs: "list[ServeRequest]") -> None:
            nonlocal seq
            for r in reqs:
                heapq.heappush(heap, (r.arrival_us, seq, r))
                seq += 1

        push(workload.initial_arrivals())
        out_start = len(self.records)
        server_free_us = self.clock.now_us

        def finish(rec: ServeRecord) -> None:
            push(workload.on_done(rec))

        while heap or self.admission.depth:
            next_arrival_us = heap[0][0] if heap else float("inf")
            head = self.admission.next_request()
            if head is not None and (
                max(server_free_us, head.arrival_us) <= next_arrival_us
            ):
                self.admission.take(head)
                start_us = max(server_free_us, head.arrival_us)
                if start_us >= head.deadline_us:
                    # Expired in the queue: drop without serving.
                    self.admission.expire(head)
                    finish(
                        self._record(
                            head,
                            OUTCOME_DEADLINE,
                            end_us=start_us,
                            queue_us=start_us - head.arrival_us,
                            service_us=0.0,
                        )
                    )
                    continue
                end_us, cache_hit = self._serve(head, start_us)
                server_free_us = end_us
                outcome = (
                    OUTCOME_OK if end_us <= head.deadline_us else OUTCOME_LATE
                )
                finish(
                    self._record(
                        head,
                        outcome,
                        end_us=end_us,
                        queue_us=start_us - head.arrival_us,
                        service_us=end_us - start_us,
                        cache_hit=cache_hit,
                    )
                )
                continue
            _, _, req = heapq.heappop(heap)
            if not self.admission.offer(req):
                finish(
                    self._record(
                        req,
                        OUTCOME_SHED,
                        end_us=req.arrival_us,
                        queue_us=0.0,
                        service_us=0.0,
                    )
                )
        return self.records[out_start:]
