"""Request and result envelopes of the online serving tier.

AliGraph exists to answer recommendation queries, and those queries come in
two operationally different shapes (GLISP draws the same line between its
offline training and online inference subsystems):

* **cached** — "give me this user's embedding": a read against the
  precomputed per-user embedding table. Cheap, latency-critical, the
  overwhelming majority of traffic.
* **fresh** — "recompute this user against the live graph": an on-demand
  k-hop sampling pass through the distributed store followed by a forward
  aggregation. Expensive, tolerant of a looser deadline, issued when the
  cached answer is too stale (a user just clicked something new).

A :class:`ServeRequest` carries one query through admission, queueing and
service; the engine emits one :class:`ServeRecord` per request — the
**request trace** — which is the unit of the determinism contract: two
same-seed runs produce identical record lists, field for field.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Request classes (the admission controller bounds each independently).
CLASS_CACHED = "cached"
CLASS_FRESH = "fresh"
REQUEST_CLASSES = (CLASS_CACHED, CLASS_FRESH)

#: Terminal outcomes of a request.
OUTCOME_OK = "ok"  # served within its deadline
OUTCOME_LATE = "late"  # served, but past its deadline (not goodput)
OUTCOME_SHED = "shed"  # rejected at admission (class queue full)
OUTCOME_DEADLINE = "deadline"  # dropped at dequeue: already expired
OUTCOMES = (OUTCOME_OK, OUTCOME_LATE, OUTCOME_SHED, OUTCOME_DEADLINE)


@dataclass(frozen=True)
class ServeRequest:
    """One inference query entering the engine.

    ``deadline_us`` is absolute (virtual-clock time by which the answer is
    useful); ``client_id`` is set on closed-loop traffic so the completion
    can wake the issuing client.
    """

    req_id: int
    user: int
    cls: str
    arrival_us: float
    deadline_us: float
    client_id: "int | None" = None


@dataclass(frozen=True)
class ServeRecord:
    """One row of the request trace: what happened to one request.

    ``queue_us`` is time spent admitted-but-waiting, ``service_us`` the
    time on the server (0 for shed/expired requests), ``end_us`` the
    moment the terminal outcome was decided. ``cache_hit`` records whether
    a cached-class read was answered from the embedding cache (False also
    for every fresh-class request).
    """

    req_id: int
    user: int
    cls: str
    outcome: str
    arrival_us: float
    end_us: float
    queue_us: float
    service_us: float
    cache_hit: bool = False

    @property
    def latency_us(self) -> float:
        """Arrival-to-answer latency (shed requests answer instantly)."""
        return self.end_us - self.arrival_us
