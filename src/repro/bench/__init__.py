"""Benchmark harness: experiment records and report rendering.

Each benchmark module under ``benchmarks/`` regenerates one table or figure
of the paper; this package holds the shared scaffolding — result records
carrying the paper's reference numbers alongside the measured ones, and the
renderer that prints them side by side.
"""

from repro.bench.harness import ExperimentRecord, ExperimentReport

__all__ = ["ExperimentRecord", "ExperimentReport"]
