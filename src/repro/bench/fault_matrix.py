"""The fault matrix: availability of the read path under injected failures.

Sweeps {drop rate x failed workers x cache policy} over a 2-hop
GraphSAGE-style sampling workload and measures, per cell:

* **availability** — the fraction of neighbor reads served *with data*
  (local shard, issuer cache, healthy remote, replica failover or suspect
  route). Reads no server or replica can serve degrade to an empty row
  (the store runs with ``degraded_reads=True`` so one dead cold vertex
  does not abort the whole workload) and count as unavailable.
* **failover / suspect-route / degraded counts** from the cost ledger;
* **retries and p95 modelled RPC latency** from the runtime metrics.

This is the serving-layer availability story the paper's §4.3 caching
theorems imply: important vertices are replicated "on each partition it
occurs", so a failed worker's hot data survives in the importance caches
while cold tails degrade — and an LRU or cacheless store has strictly
less coverage. Shared by ``benchmarks/bench_fault_matrix.py`` and the
``repro fault-matrix`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.runtime.faults import FaultPlan
from repro.runtime.rpc import RpcRuntime
from repro.storage.cache import (
    CachePolicy,
    ImportanceCachePolicy,
    LRUCachePolicy,
)
from repro.storage.cluster import DistributedGraphStore, make_store
from repro.storage.costmodel import EV_FAILOVER_READ, EV_SUSPECT_ROUTE
from repro.utils.rng import make_rng

#: Cache policies the matrix sweeps, by name.
POLICIES: "dict[str, type[CachePolicy] | None]" = {
    "none": None,
    "lru": LRUCachePolicy,
    "importance": ImportanceCachePolicy,
}


@dataclass(frozen=True)
class FaultMatrixCell:
    """One swept configuration of the fault matrix."""

    drop_rate: float
    n_failed: int
    policy: str

    @property
    def label(self) -> str:
        return (
            f"drop={self.drop_rate:.0%} failed={self.n_failed} "
            f"cache={self.policy}"
        )


@dataclass(frozen=True)
class FaultMatrixRow:
    """Measured outcome of one cell."""

    cell: FaultMatrixCell
    reads_total: int
    reads_served: int
    failover_reads: int
    suspect_routes: int
    degraded_reads: int
    retries: int
    p95_latency_us: float
    modelled_ms: float

    @property
    def availability(self) -> float:
        """Fraction of neighbor reads served with data."""
        if self.reads_total == 0:
            return 1.0
        return self.reads_served / self.reads_total


def _run_workload(
    store: DistributedGraphStore,
    hop_nums: "tuple[int, ...]",
    n_batches: int,
    batch_size: int,
    seed: int,
    from_part: int,
) -> "tuple[int, int]":
    """Drive the 2-hop GraphSAGE-style expansion.

    Mirrors what the neighborhood samplers do through ``prefetch`` — one
    deduplicated ``get_neighbors_batch`` per hop frontier — and counts
    *logical* reads (one per sampled neighbor, before the batcher's dedup)
    so availability is weighted the way the traffic actually is: a hub
    sampled forty times is forty served reads, and coalescing them into
    one RPC does not change what the workload observed. Returns
    ``(reads_issued, reads_degraded)``.

    Seed vertices are drawn from live shards only — a trainer cannot
    enumerate minibatch ids on a fail-stopped worker, so it re-shards its
    seed list around the dead partition. Hop expansion has no such
    freedom: sampled neighbors land wherever the graph points, including
    the failed worker, and those reads are where caching earns (or fails
    to earn) its availability.
    """
    rng = make_rng(seed)
    graph = store.graph
    n = graph.n_vertices
    all_ids = np.arange(n)
    owners = np.array([store.owner(int(v)) for v in all_ids])
    alive = all_ids[~np.isin(owners, list(store.failed_workers))]
    reads = 0
    degraded = 0
    for b in range(n_batches):
        frontier = alive[
            (np.arange(b * batch_size, (b + 1) * batch_size)) % alive.size
        ]
        for fanout in hop_nums:
            uniq, mult = np.unique(frontier, return_counts=True)
            weight = dict(zip(uniq.tolist(), mult.tolist()))
            rows = store.get_neighbors_batch(frontier, from_part=from_part)
            reads += int(frontier.size)
            # A degraded read comes back as an empty row for a vertex the
            # analytical snapshot knows has neighbors (the workload never
            # mutates the graph, so the snapshot is ground truth).
            degraded += sum(
                weight[v]
                for v, row in rows.items()
                if row.size == 0 and graph.out_neighbors(v).size > 0
            )
            nxt = [
                rng.choice(row, size=fanout, replace=True)
                for row in (rows[int(v)] for v in uniq)
                if row.size
            ]
            if not nxt:
                break
            frontier = np.concatenate(nxt)
    return reads, degraded


def run_fault_matrix(
    graph: Graph,
    drop_rates: "tuple[float, ...]" = (0.0, 0.2),
    failed_workers: "tuple[int, ...]" = (0, 1),
    policies: "tuple[str, ...]" = ("none", "lru", "importance"),
    n_workers: int = 4,
    cache_fraction: float = 0.25,
    hop_nums: "tuple[int, ...]" = (10, 5),
    n_batches: int = 2,
    batch_size: int = 64,
    seed: int = 7,
) -> "list[FaultMatrixRow]":
    """Sweep the fault matrix over ``graph``; one row per cell.

    Worker 0 issues every read; failed workers are taken from the top of
    the part range (never the issuer), so a cell with ``n_failed=1`` runs
    with worker ``n_workers - 1`` fail-stopped before the first read.
    """
    rows: "list[FaultMatrixRow]" = []
    for policy_name in policies:
        if policy_name not in POLICIES:
            raise ValueError(
                f"unknown policy {policy_name!r}; have {sorted(POLICIES)}"
            )
        for drop_rate in drop_rates:
            for n_failed in failed_workers:
                if n_failed >= n_workers:
                    raise ValueError(
                        f"cannot fail {n_failed} of {n_workers} workers"
                    )
                cell = FaultMatrixCell(drop_rate, n_failed, policy_name)
                policy_cls = POLICIES[policy_name]
                store = make_store(
                    graph,
                    n_workers,
                    cache_policy=policy_cls() if policy_cls else None,
                    cache_budget_fraction=(
                        cache_fraction if policy_cls else 0.0
                    ),
                    seed=seed,
                    degraded_reads=True,
                )
                store.attach_runtime(
                    RpcRuntime(
                        store, faults=FaultPlan(drop_rate=drop_rate, seed=seed)
                    )
                )
                for k in range(n_failed):
                    store.fail_worker(n_workers - 1 - k)
                reads, degraded = _run_workload(
                    store, hop_nums, n_batches, batch_size, seed, from_part=0
                )
                metrics = store.runtime.metrics
                rows.append(
                    FaultMatrixRow(
                        cell=cell,
                        reads_total=reads,
                        reads_served=reads - degraded,
                        failover_reads=store.ledger.count(EV_FAILOVER_READ),
                        suspect_routes=store.ledger.count(EV_SUSPECT_ROUTE),
                        degraded_reads=degraded,
                        retries=metrics.counter("rpc.retries").value,
                        p95_latency_us=metrics.histogram(
                            "rpc.latency_us"
                        ).percentile(95),
                        modelled_ms=store.ledger.modelled_millis(),
                    )
                )
    return rows
