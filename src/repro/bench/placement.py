"""Adaptive-placement benchmark harness: shifting-Zipf point reads.

Drives the same seeded request schedule against two arms of a
:class:`~repro.storage.cluster.DistributedGraphStore`:

* **static** — the paper's offline placement: hash partition + importance
  cache, untouched for the whole run;
* **adaptive** — the same starting state with a
  :class:`~repro.storage.placement.PlacementController` polled between
  requests, free to promote/demote replicas and migrate vertices within
  its per-epoch traffic budget.

The workload is deliberately adversarial to static placement: point reads
(batches of a few vertices, so remote misses cannot amortize into one big
coalesced RPC) drawn Zipf-skewed over a hot set that **rotates every
phase** — a fresh rank→vertex permutation per phase invalidates whatever
the previous phase localized — and each hot vertex has a per-phase *home*
issuer that dominates its reads (tenant affinity), which is what makes
migration, not just replication, the right move.

Per-request latency is the cost-ledger delta around the read (the same §4
pricing every other bench uses); controller work happens between requests
and is accounted separately (``placement_overhead_us``, migration RPCs on
the ``migration_rpc`` ledger event), so the p50/p95/p99 comparison is
strictly over request service time while the *totals* still price the
migration traffic on the same clock. Everything is seeded: two same-seed
calls return ``==``-equal payloads. Shared by
``benchmarks/bench_placement.py`` and the ``repro placement-bench`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.obs.workload import AccessRecorder
from repro.storage.cache import ImportanceCachePolicy
from repro.storage.cluster import make_store
from repro.storage.costmodel import EV_MIGRATION_RPC, EV_REMOTE_RPC
from repro.storage.placement import PlacementConfig, PlacementController
from repro.utils.rng import make_rng
from repro.utils.stats import ZipfSampler


@dataclass(frozen=True)
class PlacementWorkload:
    """Knobs of the shifting-Zipf point-read workload."""

    n_workers: int = 4
    n_phases: int = 3
    requests_per_phase: int = 4000
    reads_per_request: int = 2
    zipf_exponent: float = 1.5
    #: Probability a request is issued by its lead vertex's per-phase
    #: home worker (the rest issue uniformly at random).
    issuer_affinity: float = 0.85
    seed: int = 0


def build_schedule(
    n_vertices: int, workload: PlacementWorkload
) -> "list[tuple[int, tuple[int, ...]]]":
    """The seeded request schedule both arms replay verbatim.

    Each phase draws a fresh rank→vertex permutation (the hot-set
    rotation) and a fresh per-vertex home-issuer map; requests inside a
    phase are Zipf draws with tenant-affine issuers.
    """
    rng = make_rng(workload.seed)
    schedule: "list[tuple[int, tuple[int, ...]]]" = []
    for _phase in range(workload.n_phases):
        perm = rng.permutation(n_vertices).astype(np.int64)
        sampler = ZipfSampler(perm, exponent=workload.zipf_exponent)
        home = rng.integers(0, workload.n_workers, size=n_vertices)
        for _ in range(workload.requests_per_phase):
            reads = sampler.sample(workload.reads_per_request, rng)
            if rng.random() < workload.issuer_affinity:
                issuer = int(home[int(reads[0])])
            else:
                issuer = int(rng.integers(workload.n_workers))
            schedule.append((issuer, tuple(int(v) for v in reads)))
    return schedule


def run_arm(
    graph: Graph,
    schedule: "list[tuple[int, tuple[int, ...]]]",
    workload: PlacementWorkload,
    adaptive: bool,
    placement: "PlacementConfig | None" = None,
) -> dict:
    """Replay ``schedule`` against one arm; returns the measured dict."""
    store = make_store(
        graph,
        workload.n_workers,
        cache_policy=ImportanceCachePolicy(),
        cache_budget_fraction=0.02,
        seed=workload.seed,
    )
    controller: "PlacementController | None" = None
    if adaptive:
        controller = PlacementController(
            store, config=placement or PlacementConfig()
        )
    else:
        store.attach_recorder(AccessRecorder())

    latencies = np.zeros(len(schedule), dtype=np.float64)
    overhead_us = 0.0
    for i, (issuer, vertices) in enumerate(schedule):
        before = store.ledger.modelled_micros()
        store.get_neighbors_batch(vertices, issuer)
        latencies[i] = store.ledger.modelled_micros() - before
        if controller is not None:
            before = store.ledger.modelled_micros()
            controller.poll()
            overhead_us += store.ledger.modelled_micros() - before

    routes = store.recorder.route_reads
    total_reads = store.recorder.total_reads
    counts = store.ledger.counts
    measured = {
        "remote_rpcs": int(counts[EV_REMOTE_RPC]),
        "remote_reads": int(
            sum(routes.get(r, 0) for r in ("remote", "failover", "suspect"))
        ),
        "local_share": round(
            (routes.get("local", 0) + routes.get("cache_hit", 0))
            / total_reads,
            6,
        )
        if total_reads
        else 0.0,
        "p50_us": round(float(np.percentile(latencies, 50)), 3),
        "p95_us": round(float(np.percentile(latencies, 95)), 3),
        "p99_us": round(float(np.percentile(latencies, 99)), 3),
        "request_us": round(float(latencies.sum()), 3),
        "placement_us": round(overhead_us, 3),
    }
    if controller is not None:
        totals = controller.totals()
        measured.update(
            {
                "epochs": totals["epochs"],
                "promoted": totals["promoted"],
                "demoted": totals["demoted"],
                "migrated": totals["migrated"],
                "migrate_items": totals["migrate_items"],
                "migrate_aborted": totals["migrate_aborted"],
                "migration_rpcs": int(counts[EV_MIGRATION_RPC]),
                "max_epoch_items": max(
                    (int(r["migrate_items"]) for r in controller.epoch_reports),
                    default=0,
                ),
                "epoch_item_budget": int(
                    (placement or PlacementConfig()).migrate_burst_items
                ),
            }
        )
    return measured


def run_placement_comparison(
    graph: Graph,
    workload: PlacementWorkload,
    placement: "PlacementConfig | None" = None,
) -> dict:
    """Both arms over one schedule, plus the headline derived metrics."""
    schedule = build_schedule(graph.n_vertices, workload)
    static = run_arm(graph, schedule, workload, adaptive=False)
    adaptive = run_arm(
        graph, schedule, workload, adaptive=True, placement=placement
    )
    rpc_reduction = (
        static["remote_rpcs"] / adaptive["remote_rpcs"]
        if adaptive["remote_rpcs"]
        else float("inf")
    )
    read_reduction = (
        static["remote_reads"] / adaptive["remote_reads"]
        if adaptive["remote_reads"]
        else float("inf")
    )
    return {
        "workload": {
            "n_vertices": int(graph.n_vertices),
            "n_workers": workload.n_workers,
            "n_phases": workload.n_phases,
            "requests": workload.n_phases * workload.requests_per_phase,
            "reads_per_request": workload.reads_per_request,
            "zipf_exponent": workload.zipf_exponent,
            "issuer_affinity": workload.issuer_affinity,
            "seed": workload.seed,
        },
        "static": static,
        "adaptive": adaptive,
        "remote_rpc_reduction": round(rpc_reduction, 3),
        "remote_read_reduction": round(read_reduction, 3),
        "p99_improvement": round(
            static["p99_us"] / adaptive["p99_us"], 3
        )
        if adaptive["p99_us"]
        else float("inf"),
    }
