"""Experiment records: measured values next to the paper's reference values.

The contract of this reproduction is *shape*, not absolute numbers (our
substrate is a single-machine simulation, not Alibaba's cluster), so every
record stores both and the report renders them adjacent, making the
shape comparison auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.utils.tables import format_table


@dataclass
class ExperimentRecord:
    """One row of a reproduced table/figure."""

    label: str
    measured: dict[str, Any]
    paper: dict[str, Any] = field(default_factory=dict)


@dataclass
class ExperimentReport:
    """A reproduced experiment: id, rows and rendering."""

    experiment_id: str
    title: str
    records: list[ExperimentRecord] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, measured: dict[str, Any], paper: dict[str, Any] | None = None) -> None:
        """Append one row."""
        self.records.append(ExperimentRecord(label, measured, paper or {}))

    def note(self, text: str) -> None:
        """Append a free-form note shown under the table."""
        self.notes.append(text)

    def _columns(self) -> "list[str]":
        cols: list[str] = []
        for rec in self.records:
            for key in list(rec.measured) + list(rec.paper):
                if key not in cols:
                    cols.append(key)
        return cols

    def render(self) -> str:
        """Render the side-by-side measured/paper table."""
        cols = self._columns()
        headers = ["label"]
        for c in cols:
            headers.append(c)
            if any(c in r.paper for r in self.records):
                headers.append(f"{c} (paper)")
        rows: list[Sequence[Any]] = []
        for rec in self.records:
            row: list[Any] = [rec.label]
            for c in cols:
                row.append(rec.measured.get(c, ""))
                if any(c in r.paper for r in self.records):
                    row.append(rec.paper.get(c, ""))
            rows.append(row)
        out = format_table(headers, rows, title=f"[{self.experiment_id}] {self.title}")
        for note in self.notes:
            out += f"\n  note: {note}"
        return out

    def print(self) -> None:
        """Print the rendered report (benchmarks call this)."""
        print("\n" + self.render() + "\n")
