"""Attributed Heterogeneous Graph (paper §2).

An AHG is the tuple ``(V, E, W, T_V, T_E, A_V, A_E)``: a weighted graph plus
vertex/edge type mapping functions and attribute mapping functions. The paper
requires ``|F_V| >= 2`` and/or ``|F_E| >= 2`` for heterogeneity; we model
types as small integer codes with a name table and attributes as dense
float32 feature rows (``x_{v,i}`` / ``w_{e,i}``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchemaError
from repro.graph.graph import Graph


class AttributedHeterogeneousGraph(Graph):
    """A :class:`Graph` enriched with types and attribute feature rows.

    Parameters
    ----------
    vertex_types:
        Integer type code per vertex, indexing ``vertex_type_names``.
    edge_types:
        Integer type code per edge (aligned with the builder's edge order),
        indexing ``edge_type_names``.
    vertex_features:
        ``(n, f_v)`` float matrix: the attribute vector ``x_v`` per vertex.
        Heterogeneous widths are zero-padded to the common width.
    edge_features:
        Optional ``(m, f_e)`` float matrix of per-edge attributes ``w_e``.
    """

    def __init__(
        self,
        n_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        vertex_types: np.ndarray,
        edge_types: np.ndarray,
        vertex_type_names: list[str],
        edge_type_names: list[str],
        weights: np.ndarray | None = None,
        directed: bool = True,
        vertex_features: np.ndarray | None = None,
        edge_features: np.ndarray | None = None,
    ) -> None:
        super().__init__(n_vertices, src, dst, weights=weights, directed=directed)
        vertex_types = np.asarray(vertex_types, dtype=np.int64)
        edge_types = np.asarray(edge_types, dtype=np.int64)
        if vertex_types.shape != (n_vertices,):
            raise SchemaError("vertex_types must have one entry per vertex")
        if edge_types.shape != (self.n_edges,):
            raise SchemaError("edge_types must have one entry per edge")
        if not vertex_type_names:
            raise SchemaError("vertex_type_names must not be empty")
        if not edge_type_names:
            raise SchemaError("edge_type_names must not be empty")
        if vertex_types.size and vertex_types.max() >= len(vertex_type_names):
            raise SchemaError("vertex type code exceeds the name table")
        if edge_types.size and edge_types.max() >= len(edge_type_names):
            raise SchemaError("edge type code exceeds the name table")
        if len(vertex_type_names) < 2 and len(edge_type_names) < 2:
            raise SchemaError(
                "an AHG needs at least two vertex types and/or two edge types "
                "(|F_V| >= 2 and/or |F_E| >= 2)"
            )

        self.vertex_types = vertex_types
        self.edge_types = edge_types
        self.vertex_type_names = list(vertex_type_names)
        self.edge_type_names = list(edge_type_names)

        if vertex_features is not None:
            vertex_features = np.asarray(vertex_features, dtype=np.float32)
            if vertex_features.shape[0] != n_vertices:
                raise SchemaError("vertex_features must have one row per vertex")
        self.vertex_features = vertex_features

        if edge_features is not None:
            edge_features = np.asarray(edge_features, dtype=np.float32)
            if edge_features.shape[0] != self.n_edges:
                raise SchemaError("edge_features must have one row per edge")
        self.edge_features = edge_features

        self._etype_csr: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def __repr__(self) -> str:
        return (
            f"AHG(n={self.n_vertices}, m={self.n_edges}, "
            f"vtypes={self.vertex_type_names}, etypes={self.edge_type_names})"
        )

    # ------------------------------------------------------------------ #
    # Type lookups
    # ------------------------------------------------------------------ #
    def vertex_type_code(self, name: str) -> int:
        """Integer code of vertex type ``name``."""
        try:
            return self.vertex_type_names.index(name)
        except ValueError:
            raise SchemaError(f"unknown vertex type {name!r}") from None

    def edge_type_code(self, name: str) -> int:
        """Integer code of edge type ``name``."""
        try:
            return self.edge_type_names.index(name)
        except ValueError:
            raise SchemaError(f"unknown edge type {name!r}") from None

    def vertices_of_type(self, name: str) -> np.ndarray:
        """All vertex ids whose type is ``name``."""
        return np.flatnonzero(self.vertex_types == self.vertex_type_code(name))

    def vertex_feature(self, v: int) -> np.ndarray:
        """The attribute vector ``x_v``; zeros if the AHG has no features."""
        self._check_vertex(v)
        if self.vertex_features is None:
            return np.zeros(0, dtype=np.float32)
        return self.vertex_features[v]

    # ------------------------------------------------------------------ #
    # Per-edge-type adjacency
    # ------------------------------------------------------------------ #
    def _etype_adjacency(self, code: int) -> tuple[np.ndarray, np.ndarray]:
        """Lazily built CSR over only the edges of type ``code``."""
        if code not in self._etype_csr:
            # Filter CSR positions by the edge type of the underlying edge.
            mask = self.edge_types[self._csr_eid] == code
            indices = self._indices[mask]
            src_counts = np.zeros(self.n_vertices + 1, dtype=np.int64)
            # Recover CSR row of each kept position from indptr.
            rows = (
                np.repeat(np.arange(self.n_vertices), np.diff(self._indptr))[mask]
            )
            np.add.at(src_counts, rows + 1, 1)
            np.cumsum(src_counts, out=src_counts)
            self._etype_csr[code] = (src_counts, indices)
        return self._etype_csr[code]

    def out_neighbors_by_type(self, v: int, edge_type: str) -> np.ndarray:
        """Out-neighbors of ``v`` restricted to edges of ``edge_type``."""
        self._check_vertex(v)
        indptr, indices = self._etype_adjacency(self.edge_type_code(edge_type))
        return indices[indptr[v] : indptr[v + 1]]

    def edge_type_subgraph(self, edge_type: str) -> Graph:
        """A plain :class:`Graph` over only the edges of ``edge_type``.

        This is the extraction step the paper's evaluation uses to run
        homogeneous baselines per edge type and concatenate the embeddings.
        """
        code = self.edge_type_code(edge_type)
        mask = self.edge_types == code
        src, dst, w = self.edge_array()
        return Graph(
            n_vertices=self.n_vertices,
            src=src[mask],
            dst=dst[mask],
            weights=w[mask],
            directed=self.directed,
        )

    def describe(self) -> dict[str, object]:
        """Summary statistics in the shape of the paper's Tables 3/6."""
        vt_counts = {
            name: int(np.sum(self.vertex_types == code))
            for code, name in enumerate(self.vertex_type_names)
        }
        et_counts = {
            name: int(np.sum(self.edge_types == code))
            for code, name in enumerate(self.edge_type_names)
        }
        return {
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "n_vertex_types": len(self.vertex_type_names),
            "n_edge_types": len(self.edge_type_names),
            "vertices_by_type": vt_counts,
            "edges_by_type": et_counts,
            "feature_dim": 0
            if self.vertex_features is None
            else int(self.vertex_features.shape[1]),
        }
