"""Incremental graph construction with external-id remapping.

:class:`GraphBuilder` is the single ingestion path for both plain graphs and
AHGs: callers add vertices/edges with arbitrary hashable external ids and
string type names, then :meth:`build` freezes everything into dense-id CSR
form. The distributed build pipeline (Figure 7) feeds edge streams through
builders, one per simulated worker.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.errors import GraphError, SchemaError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.graph.graph import Graph


class GraphBuilder:
    """Accumulates vertices and edges, then freezes them into a graph.

    Vertices are implicitly created by ``add_edge``; call ``add_vertex`` to
    attach a type and attribute vector. Build a plain :class:`Graph` with
    :meth:`build` or an AHG with :meth:`build_ahg`.
    """

    def __init__(self, directed: bool = True) -> None:
        self.directed = directed
        self._id_map: dict[Hashable, int] = {}
        self._ext_ids: list[Hashable] = []
        self._src: list[int] = []
        self._dst: list[int] = []
        self._weights: list[float] = []
        self._edge_type_names: list[str] = []
        self._edge_type_map: dict[str, int] = {}
        self._edge_types: list[int] = []
        self._vertex_type_names: list[str] = []
        self._vertex_type_map: dict[str, int] = {}
        self._vertex_types: dict[int, int] = {}
        self._vertex_features: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._src)

    @property
    def n_vertices(self) -> int:
        """Vertices seen so far."""
        return len(self._ext_ids)

    def _intern_vertex(self, ext_id: Hashable) -> int:
        vid = self._id_map.get(ext_id)
        if vid is None:
            vid = len(self._ext_ids)
            self._id_map[ext_id] = vid
            self._ext_ids.append(ext_id)
        return vid

    def _intern_vertex_type(self, name: str) -> int:
        code = self._vertex_type_map.get(name)
        if code is None:
            code = len(self._vertex_type_names)
            self._vertex_type_map[name] = code
            self._vertex_type_names.append(name)
        return code

    def _intern_edge_type(self, name: str) -> int:
        code = self._edge_type_map.get(name)
        if code is None:
            code = len(self._edge_type_names)
            self._edge_type_map[name] = code
            self._edge_type_names.append(name)
        return code

    def add_vertex(
        self,
        ext_id: Hashable,
        vtype: str = "default",
        features: np.ndarray | None = None,
    ) -> int:
        """Register a vertex with a type and optional attribute vector.

        Returns the internal dense id. Re-adding an existing vertex updates
        its type/features.
        """
        vid = self._intern_vertex(ext_id)
        self._vertex_types[vid] = self._intern_vertex_type(vtype)
        if features is not None:
            self._vertex_features[vid] = np.asarray(features, dtype=np.float32)
        return vid

    def add_edge(
        self,
        src: Hashable,
        dst: Hashable,
        weight: float = 1.0,
        etype: str = "default",
    ) -> None:
        """Append one edge; endpoints are interned automatically."""
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        self._src.append(self._intern_vertex(src))
        self._dst.append(self._intern_vertex(dst))
        self._weights.append(float(weight))
        self._edge_types.append(self._intern_edge_type(etype))

    def add_edges(
        self,
        edges: "list[tuple[Hashable, Hashable]]",
        weight: float = 1.0,
        etype: str = "default",
    ) -> None:
        """Bulk-append unweighted edges of one type."""
        for u, v in edges:
            self.add_edge(u, v, weight=weight, etype=etype)

    def external_ids(self) -> list[Hashable]:
        """External id of each internal vertex, in internal-id order."""
        return list(self._ext_ids)

    def internal_id(self, ext_id: Hashable) -> int:
        """Internal dense id of ``ext_id`` (raises if unseen)."""
        try:
            return self._id_map[ext_id]
        except KeyError:
            raise GraphError(f"unknown external vertex id {ext_id!r}") from None

    # ------------------------------------------------------------------ #
    # Freezing
    # ------------------------------------------------------------------ #
    def build(self) -> Graph:
        """Freeze into a plain :class:`Graph` (types/attributes dropped)."""
        return Graph(
            n_vertices=self.n_vertices,
            src=np.asarray(self._src, dtype=np.int64),
            dst=np.asarray(self._dst, dtype=np.int64),
            weights=np.asarray(self._weights, dtype=np.float64),
            directed=self.directed,
        )

    def _feature_matrix(self) -> np.ndarray | None:
        if not self._vertex_features:
            return None
        width = max(f.size for f in self._vertex_features.values())
        mat = np.zeros((self.n_vertices, width), dtype=np.float32)
        for vid, feat in self._vertex_features.items():
            mat[vid, : feat.size] = feat
        return mat

    def build_ahg(self) -> AttributedHeterogeneousGraph:
        """Freeze into an :class:`AttributedHeterogeneousGraph`.

        Vertices never explicitly typed get the implicit ``"default"`` type.
        """
        if not self._vertex_type_names and not self._edge_type_names:
            raise SchemaError("no types registered; build() a plain graph instead")
        default_code = self._intern_vertex_type("default") if any(
            vid not in self._vertex_types for vid in range(self.n_vertices)
        ) else 0
        vtypes = np.full(self.n_vertices, default_code, dtype=np.int64)
        for vid, code in self._vertex_types.items():
            vtypes[vid] = code
        return AttributedHeterogeneousGraph(
            n_vertices=self.n_vertices,
            src=np.asarray(self._src, dtype=np.int64),
            dst=np.asarray(self._dst, dtype=np.int64),
            vertex_types=vtypes,
            edge_types=np.asarray(self._edge_types, dtype=np.int64),
            vertex_type_names=self._vertex_type_names,
            edge_type_names=self._edge_type_names,
            weights=np.asarray(self._weights, dtype=np.float64),
            directed=self.directed,
            vertex_features=self._feature_matrix(),
        )
