"""Core graph data model: simple graphs, attributed heterogeneous graphs
(AHGs, paper §2) and dynamic snapshot sequences, with CSR adjacency."""

from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.graph.builder import GraphBuilder
from repro.graph.dynamic import DynamicGraph, EdgeEvent
from repro.graph.graph import Graph

__all__ = [
    "Graph",
    "AttributedHeterogeneousGraph",
    "GraphBuilder",
    "DynamicGraph",
    "EdgeEvent",
]
