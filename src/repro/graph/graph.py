"""Immutable simple graph with CSR adjacency (paper §2, simple graph G).

Vertices are dense integer ids ``0..n-1`` (use :class:`repro.graph.builder.
GraphBuilder` to ingest arbitrary external ids). Edges are stored in
compressed-sparse-row form for O(1) neighbor-slice access — the access
pattern every sampler and every storage experiment hammers on.

Directed graphs keep both an out-CSR and a lazily built in-CSR; undirected
graphs store each edge in both endpoint rows, so ``out_neighbors`` is simply
"neighbors" and ``W(u, v) == W(v, u)`` as §2 requires.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphError, VertexNotFoundError


class Graph:
    """A weighted, possibly directed simple graph in CSR form.

    Parameters
    ----------
    n_vertices:
        Number of vertices; ids are ``0..n_vertices-1``.
    src, dst:
        Edge endpoint arrays (one entry per directed arc; for undirected
        graphs pass each edge once — it is mirrored internally).
    weights:
        Optional per-edge positive weights; defaults to 1.0.
    directed:
        Whether ``(u, v)`` and ``(v, u)`` are distinct edges.
    """

    def __init__(
        self,
        n_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        directed: bool = True,
    ) -> None:
        if n_vertices < 0:
            raise GraphError(f"n_vertices must be non-negative, got {n_vertices}")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphError("src and dst must be 1-D arrays of equal length")
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise GraphError("vertex ids must be non-negative")
        if src.size and (src.max() >= n_vertices or dst.max() >= n_vertices):
            raise GraphError("edge endpoint exceeds n_vertices")
        if weights is None:
            weights = np.ones(src.size, dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != src.shape:
                raise GraphError("weights must align with the edge arrays")
            if weights.size and weights.min() <= 0:
                raise GraphError("edge weights must be positive (W: E -> R+)")

        self._n = int(n_vertices)
        self.directed = bool(directed)
        self._edge_src = src
        self._edge_dst = dst
        self._edge_weights = weights

        if directed:
            out_src, out_dst, out_w = src, dst, weights
            out_eid = np.arange(src.size, dtype=np.int64)
        else:
            # Mirror every edge; both copies carry the original edge id so
            # per-edge payloads (types, attributes) stay addressable.
            out_src = np.concatenate([src, dst])
            out_dst = np.concatenate([dst, src])
            out_w = np.concatenate([weights, weights])
            out_eid = np.concatenate([np.arange(src.size)] * 2).astype(np.int64)

        order = np.argsort(out_src, kind="stable")
        sorted_src = out_src[order]
        self._indices = out_dst[order]
        self._weights = out_w[order]
        self._csr_eid = out_eid[order]
        self._indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.add.at(self._indptr, sorted_src + 1, 1)
        np.cumsum(self._indptr, out=self._indptr)

        self._in_indptr: np.ndarray | None = None
        self._in_indices: np.ndarray | None = None
        self._in_weights: np.ndarray | None = None
        self._in_eid: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        """Number of vertices n = |V|."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of edges m = |E| (undirected edges counted once)."""
        return int(self._edge_src.size)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"Graph(n={self._n}, m={self.n_edges}, {kind})"

    def vertices(self) -> np.ndarray:
        """All vertex ids as an array."""
        return np.arange(self._n, dtype=np.int64)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The original ``(src, dst, weight)`` arrays (one row per edge)."""
        return self._edge_src, self._edge_dst, self._edge_weights

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(u, v, w)`` over edges (each undirected edge once)."""
        for u, v, w in zip(self._edge_src, self._edge_dst, self._edge_weights):
            yield int(u), int(v), float(w)

    # ------------------------------------------------------------------ #
    # Adjacency access
    # ------------------------------------------------------------------ #
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise VertexNotFoundError(v)

    def out_neighbors(self, v: int) -> np.ndarray:
        """Out-neighbor ids of ``v`` (all neighbors when undirected)."""
        self._check_vertex(v)
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def out_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`out_neighbors`."""
        self._check_vertex(v)
        return self._weights[self._indptr[v] : self._indptr[v + 1]]

    def out_edge_ids(self, v: int) -> np.ndarray:
        """Original edge ids aligned with :meth:`out_neighbors`."""
        self._check_vertex(v)
        return self._csr_eid[self._indptr[v] : self._indptr[v + 1]]

    def neighbors(self, v: int) -> np.ndarray:
        """Alias of :meth:`out_neighbors` — Nb(v) in the paper's notation."""
        return self.out_neighbors(v)

    def _build_in_csr(self) -> None:
        if self._in_indptr is not None:
            return
        if self.directed:
            in_src, in_dst, in_w = self._edge_dst, self._edge_src, self._edge_weights
            in_eid = np.arange(self._edge_src.size, dtype=np.int64)
            order = np.argsort(in_src, kind="stable")
            sorted_src = in_src[order]
            self._in_indices = in_dst[order]
            self._in_weights = in_w[order]
            self._in_eid = in_eid[order]
            self._in_indptr = np.zeros(self._n + 1, dtype=np.int64)
            np.add.at(self._in_indptr, sorted_src + 1, 1)
            np.cumsum(self._in_indptr, out=self._in_indptr)
        else:
            self._in_indptr = self._indptr
            self._in_indices = self._indices
            self._in_weights = self._weights
            self._in_eid = self._csr_eid

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbor ids of ``v`` (same as out for undirected graphs)."""
        self._check_vertex(v)
        self._build_in_csr()
        assert self._in_indptr is not None and self._in_indices is not None
        return self._in_indices[self._in_indptr[v] : self._in_indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        """Out-degree of ``v``."""
        self._check_vertex(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def in_degree(self, v: int) -> int:
        """In-degree of ``v``."""
        self._check_vertex(v)
        self._build_in_csr()
        assert self._in_indptr is not None
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of all in-degrees."""
        self._build_in_csr()
        assert self._in_indptr is not None
        return np.diff(self._in_indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``(u, v)`` exists (symmetric when undirected)."""
        self._check_vertex(u)
        self._check_vertex(v)
        return bool(np.any(self.out_neighbors(u) == v))

    def edge_weight(self, u: int, v: int) -> float:
        """Weight W(u, v); raises if the edge is absent."""
        nbrs = self.out_neighbors(u)
        hits = np.flatnonzero(nbrs == v)
        if hits.size == 0:
            from repro.errors import EdgeNotFoundError

            raise EdgeNotFoundError(u, v)
        return float(self.out_weights(u)[hits[0]])

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #
    def adjacency_matrix(self) -> "np.ndarray":
        """Dense adjacency matrix (small graphs only — guarded)."""
        if self._n > 20_000:
            raise GraphError(
                f"dense adjacency refused for n={self._n} (> 20000 vertices)"
            )
        a = np.zeros((self._n, self._n), dtype=np.float64)
        src, dst, w = self._edge_src, self._edge_dst, self._edge_weights
        a[src, dst] = w
        if not self.directed:
            a[dst, src] = w
        return a

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw out-CSR ``(indptr, indices, weights)`` arrays."""
        return self._indptr, self._indices, self._weights

    def subgraph(self, vertices: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(subgraph, old_ids)`` where ``old_ids[i]`` is the original
        id of subgraph vertex ``i``.
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self._n):
            raise GraphError("subgraph vertex set contains unknown ids")
        remap = -np.ones(self._n, dtype=np.int64)
        remap[vertices] = np.arange(vertices.size)
        src, dst, w = self._edge_src, self._edge_dst, self._edge_weights
        keep = (remap[src] >= 0) & (remap[dst] >= 0)
        sub = Graph(
            n_vertices=vertices.size,
            src=remap[src[keep]],
            dst=remap[dst[keep]],
            weights=w[keep],
            directed=self.directed,
        )
        return sub, vertices
