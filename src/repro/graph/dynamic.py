"""Dynamic graphs: a snapshot sequence G(1), ..., G(T) (paper §2).

A :class:`DynamicGraph` owns a list of per-timestamp snapshots plus the edge
*events* (additions/removals) between consecutive snapshots. The Evolving GNN
model consumes both: the snapshots for per-timestamp embedding and the events
— labelled normal vs burst — for its dynamics predictor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class EdgeEvent:
    """One edge change between snapshots ``t`` and ``t+1``.

    ``kind`` is ``"add"`` or ``"remove"``; ``burst`` marks the rare/abnormal
    evolving edges the Evolving GNN distinguishes from normal evolution.
    """

    timestamp: int
    src: int
    dst: int
    kind: str = "add"
    burst: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("add", "remove"):
            raise GraphError(f"event kind must be add/remove, got {self.kind!r}")


class DynamicGraph:
    """A sequence of graph snapshots with labelled inter-snapshot events."""

    def __init__(self, snapshots: list[Graph], events: list[EdgeEvent]) -> None:
        if not snapshots:
            raise GraphError("a dynamic graph needs at least one snapshot")
        n = snapshots[0].n_vertices
        if any(g.n_vertices != n for g in snapshots):
            raise GraphError("all snapshots must share the same vertex set")
        if any(not 0 <= ev.timestamp < len(snapshots) - 1 for ev in events):
            raise GraphError("event timestamps must index snapshot transitions")
        self.snapshots = snapshots
        self.events = events

    @property
    def n_timestamps(self) -> int:
        """T — number of snapshots."""
        return len(self.snapshots)

    @property
    def n_vertices(self) -> int:
        """Shared vertex count across snapshots."""
        return self.snapshots[0].n_vertices

    def snapshot(self, t: int) -> Graph:
        """G(t) for ``0 <= t < T``."""
        if not 0 <= t < len(self.snapshots):
            raise GraphError(f"timestamp {t} out of range [0, {len(self.snapshots)})")
        return self.snapshots[t]

    def events_at(self, t: int) -> list[EdgeEvent]:
        """Events on the transition from snapshot ``t`` to ``t+1``."""
        return [ev for ev in self.events if ev.timestamp == t]

    def provider(self, t: int = 0) -> "object":
        """A versioned :class:`~repro.sampling.base.SnapshotProvider` at ``t``.

        ``provider.advance(t')`` moves it to another snapshot and bumps its
        version, which makes any batched sampler bound to it rebuild its
        CSR snapshot on the next draw.
        """
        from repro.sampling.base import SnapshotProvider

        return SnapshotProvider(self, t)

    def burst_fraction(self) -> float:
        """Fraction of 'add' events labelled as bursts."""
        adds = [ev for ev in self.events if ev.kind == "add"]
        if not adds:
            return 0.0
        return sum(ev.burst for ev in adds) / len(adds)

    @staticmethod
    def from_events(
        base: Graph, events: list[EdgeEvent], n_timestamps: int
    ) -> "DynamicGraph":
        """Materialize snapshots by replaying ``events`` over ``base``.

        Snapshot 0 is ``base``; snapshot ``t+1`` applies all events with
        ``timestamp == t``. Removals of absent edges are ignored (idempotent
        replay), mirroring how log-structured graph stores apply deltas.
        """
        if n_timestamps < 1:
            raise GraphError("need at least one timestamp")
        src, dst, w = base.edge_array()
        current: dict[tuple[int, int], float] = {
            (int(u), int(v)): float(wt) for u, v, wt in zip(src, dst, w)
        }
        snapshots = [base]
        for t in range(n_timestamps - 1):
            for ev in events:
                if ev.timestamp != t:
                    continue
                key = (ev.src, ev.dst)
                if ev.kind == "add":
                    current[key] = current.get(key, 0.0) or 1.0
                else:
                    current.pop(key, None)
            if current:
                arr = np.array(list(current.keys()), dtype=np.int64)
                weights = np.array(list(current.values()), dtype=np.float64)
                snap = Graph(
                    n_vertices=base.n_vertices,
                    src=arr[:, 0],
                    dst=arr[:, 1],
                    weights=weights,
                    directed=base.directed,
                )
            else:
                empty = np.zeros(0, dtype=np.int64)
                snap = Graph(base.n_vertices, empty, empty, directed=base.directed)
            snapshots.append(snap)
        return DynamicGraph(snapshots, events)
