"""Graph serialization: TSV edge lists + npz attribute bundles.

AliGraph "supports various kinds of raw data from different file systems";
here we provide the two formats the build benchmark (Figure 7) ingests:
a plain ``src\\tdst\\tweight[\\tetype]`` edge-list file and an ``.npz``
side-car with vertex types and feature matrices.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DatasetError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def write_edge_list(graph: Graph, path: str) -> None:
    """Write ``graph`` as a TSV edge list (with edge types for AHGs)."""
    is_ahg = isinstance(graph, AttributedHeterogeneousGraph)
    src, dst, w = graph.edge_array()
    with open(path, "w", encoding="utf-8") as f:
        f.write(f"# n_vertices={graph.n_vertices} directed={int(graph.directed)}\n")
        for i in range(src.size):
            line = f"{src[i]}\t{dst[i]}\t{w[i]:.6g}"
            if is_ahg:
                line += f"\t{graph.edge_type_names[graph.edge_types[i]]}"
            f.write(line + "\n")


def read_edge_list(path: str) -> Graph:
    """Read a TSV edge list written by :func:`write_edge_list`.

    Returns a plain :class:`Graph` (edge types, if present, are preserved
    through a builder — use :func:`read_edge_list_ahg` to keep them).
    """
    builder, n_vertices, directed = _read_into_builder(path)
    graph = builder.build()
    if graph.n_vertices < n_vertices:
        # Re-pad: isolated vertices do not appear in the edge list.
        src, dst, w = graph.edge_array()
        graph = Graph(n_vertices, src, dst, weights=w, directed=directed)
    return graph


def read_edge_list_ahg(path: str) -> AttributedHeterogeneousGraph:
    """Read a typed TSV edge list as an AHG (vertex types all 'default')."""
    builder, _, _ = _read_into_builder(path)
    return builder.build_ahg()


def _read_into_builder(path: str) -> tuple[GraphBuilder, int, bool]:
    if not os.path.exists(path):
        raise DatasetError(f"edge list file not found: {path}")
    n_vertices = 0
    directed = True
    builder: GraphBuilder | None = None
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    key, _, value = token.partition("=")
                    if key == "n_vertices":
                        n_vertices = int(value)
                    elif key == "directed":
                        directed = bool(int(value))
                continue
            if builder is None:
                builder = GraphBuilder(directed=directed)
                for v in range(n_vertices):
                    builder.add_vertex(v)
            parts = line.split("\t")
            if len(parts) < 2:
                raise DatasetError(f"{path}:{lineno}: malformed edge line {line!r}")
            u, v = int(parts[0]), int(parts[1])
            weight = float(parts[2]) if len(parts) > 2 else 1.0
            etype = parts[3] if len(parts) > 3 else "default"
            builder.add_edge(u, v, weight=weight, etype=etype)
    if builder is None:
        builder = GraphBuilder(directed=directed)
        for v in range(n_vertices):
            builder.add_vertex(v)
    return builder, n_vertices, directed


def save_ahg(graph: AttributedHeterogeneousGraph, path: str) -> None:
    """Persist a full AHG (structure + types + features) to one ``.npz``."""
    src, dst, w = graph.edge_array()
    payload: dict[str, np.ndarray] = {
        "n_vertices": np.array([graph.n_vertices]),
        "directed": np.array([int(graph.directed)]),
        "src": src,
        "dst": dst,
        "weights": w,
        "vertex_types": graph.vertex_types,
        "edge_types": graph.edge_types,
        "vertex_type_names": np.array(graph.vertex_type_names),
        "edge_type_names": np.array(graph.edge_type_names),
    }
    if graph.vertex_features is not None:
        payload["vertex_features"] = graph.vertex_features
    if graph.edge_features is not None:
        payload["edge_features"] = graph.edge_features
    np.savez_compressed(path, **payload)


def load_ahg(path: str) -> AttributedHeterogeneousGraph:
    """Load an AHG written by :func:`save_ahg`."""
    if not os.path.exists(path):
        raise DatasetError(f"AHG bundle not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        vertex_features = data["vertex_features"] if "vertex_features" in data else None
        edge_features = data["edge_features"] if "edge_features" in data else None
        return AttributedHeterogeneousGraph(
            n_vertices=int(data["n_vertices"][0]),
            src=data["src"],
            dst=data["dst"],
            vertex_types=data["vertex_types"],
            edge_types=data["edge_types"],
            vertex_type_names=[str(s) for s in data["vertex_type_names"]],
            edge_type_names=[str(s) for s in data["edge_type_names"]],
            weights=data["weights"],
            directed=bool(data["directed"][0]),
            vertex_features=vertex_features,
            edge_features=edge_features,
        )
