"""Named dataset registry.

Fixes the generator parameters behind the dataset names the benchmarks use.
``taobao-large-sim`` has ~6x the edges of ``taobao-small-sim``, matching the
paper's storage-size ratio between Taobao-small and Taobao-large (Table 3).
``scale`` multiplies vertex counts for cheap/large variants of any dataset.
"""

from __future__ import annotations

from typing import Callable

from repro.data.amazon import amazon_graph
from repro.data.dynamic import dynamic_taobao
from repro.data.synthetic import powerlaw_graph, taobao_graph
from repro.errors import DatasetError


def _taobao_small(scale: float, seed: int):
    return taobao_graph(
        n_users=int(4000 * scale),
        n_items=int(1200 * scale),
        mean_user_degree=8.0,
        seed=seed,
    )


def _taobao_large(scale: float, seed: int):
    # ~3.3x the users and ~1.8x the per-user activity of small: ~6x edges,
    # mirroring Table 3's small/large storage ratio.
    return taobao_graph(
        n_users=int(13000 * scale),
        n_items=int(1400 * scale),
        mean_user_degree=17.5,
        seed=seed,
    )


def _amazon(scale: float, seed: int):
    return amazon_graph(n_products=int(2000 * scale), seed=seed)


def _dynamic(scale: float, seed: int):
    return dynamic_taobao(n_vertices=int(800 * scale), seed=seed)


def _powerlaw(scale: float, seed: int):
    return powerlaw_graph(n=int(5000 * scale), seed=seed)


DATASETS: dict[str, Callable[[float, int], object]] = {
    "taobao-small-sim": _taobao_small,
    "taobao-large-sim": _taobao_large,
    "amazon-sim": _amazon,
    "dynamic-taobao-sim": _dynamic,
    "powerlaw": _powerlaw,
}


def make_dataset(name: str, scale: float = 1.0, seed: int = 0):
    """Instantiate a named dataset at ``scale`` with ``seed``."""
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    try:
        factory = DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r} (known: {known})") from None
    return factory(scale, seed)
