"""Link-prediction train/test splits.

Following the paper's evaluation protocol ("we randomly extract a portion of
the data as the training data and reserve the remaining part as test data"),
:func:`train_test_split_edges` hides a fraction of edges from the training
graph and pairs each held-out positive with sampled negatives. For AHGs the
split is stratified by edge type (metrics are "averaged among different
types of edges") and the vertex/edge type structure is preserved in the
training graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.graph.graph import Graph
from repro.utils.rng import make_rng


@dataclass
class LinkSplit:
    """A link-prediction evaluation split.

    ``test_pos``/``test_neg`` are ``(k, 2)`` arrays of vertex pairs;
    ``test_types`` carries the edge-type code of each positive (and its
    matched negative) for per-type metric averaging. ``train_graph`` has the
    held-out edges removed.
    """

    train_graph: Graph
    test_pos: np.ndarray
    test_neg: np.ndarray
    test_types: np.ndarray

    @property
    def n_test(self) -> int:
        """Number of held-out positives."""
        return int(self.test_pos.shape[0])


def _rebuild(graph: Graph, keep: np.ndarray) -> Graph:
    src, dst, w = graph.edge_array()
    if isinstance(graph, AttributedHeterogeneousGraph):
        return AttributedHeterogeneousGraph(
            n_vertices=graph.n_vertices,
            src=src[keep],
            dst=dst[keep],
            vertex_types=graph.vertex_types,
            edge_types=graph.edge_types[keep],
            vertex_type_names=graph.vertex_type_names,
            edge_type_names=graph.edge_type_names,
            weights=w[keep],
            directed=graph.directed,
            vertex_features=graph.vertex_features,
            edge_features=None,
        )
    return Graph(graph.n_vertices, src[keep], dst[keep], weights=w[keep], directed=graph.directed)


def train_test_split_edges(
    graph: Graph,
    test_fraction: float = 0.2,
    negatives_per_positive: int = 1,
    seed: int = 0,
) -> LinkSplit:
    """Hide ``test_fraction`` of edges and sample matched negatives.

    Negatives corrupt the destination of each positive with a uniformly
    random vertex that is not a current neighbor of the source (rejection
    with a bounded retry, as in standard LP protocols).
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if negatives_per_positive < 1:
        raise DatasetError("need at least one negative per positive")
    rng = make_rng(seed)
    m = graph.n_edges
    if m < 5:
        raise DatasetError("graph too small to split")
    n_test = max(1, int(round(test_fraction * m)))
    test_idx = rng.choice(m, size=n_test, replace=False)
    keep = np.ones(m, dtype=bool)
    keep[test_idx] = False

    src, dst, _ = graph.edge_array()
    test_pos = np.stack([src[test_idx], dst[test_idx]], axis=1)
    if isinstance(graph, AttributedHeterogeneousGraph):
        test_types = graph.edge_types[test_idx]
    else:
        test_types = np.zeros(n_test, dtype=np.int64)

    neighbor_sets = [
        set(int(u) for u in graph.out_neighbors(v)) for v in range(graph.n_vertices)
    ]
    negs = np.empty((n_test * negatives_per_positive, 2), dtype=np.int64)
    row = 0
    for (u, _), __ in zip(test_pos, range(n_test)):
        u = int(u)
        for _ in range(negatives_per_positive):
            candidate = int(rng.integers(graph.n_vertices))
            tries = 0
            while (candidate in neighbor_sets[u] or candidate == u) and tries < 20:
                candidate = int(rng.integers(graph.n_vertices))
                tries += 1
            negs[row] = (u, candidate)
            row += 1

    return LinkSplit(
        train_graph=_rebuild(graph, keep),
        test_pos=test_pos,
        test_neg=negs,
        test_types=np.repeat(test_types, 1),
    )
