"""Knowledge graph generator for the Bayesian GNN experiment.

The Bayesian GNN corrects behaviour-graph embeddings with prior knowledge
from a symbolic KG. Here the KG links items to brand and category entities:
``item --has_brand--> brand`` and ``item --in_category--> category``. Items
in the same category share behaviour-graph structure *and* KG structure, so
the KG prior genuinely carries task signal — the premise of Table 12, whose
hit-recall is measured at both brand and category granularity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.utils.rng import make_rng


def knowledge_graph(
    n_items: int,
    n_brands: int = 40,
    n_categories: int = 12,
    category_of: np.ndarray | None = None,
    seed: int = 0,
) -> tuple[AttributedHeterogeneousGraph, np.ndarray, np.ndarray]:
    """Build an item/brand/category KG.

    Returns ``(kg, brand_of, category_of)`` where the two arrays give each
    item's brand and category id. Brands nest inside categories (each brand
    belongs to one category), matching real catalog taxonomies. Pass
    ``category_of`` to align the KG with an existing behaviour graph's
    community structure.
    """
    if n_items < 1 or n_brands < 1 or n_categories < 1:
        raise DatasetError("need positive item/brand/category counts")
    rng = make_rng(seed)
    brand_category = rng.integers(0, n_categories, size=n_brands)
    if category_of is None:
        category_of = rng.integers(0, n_categories, size=n_items)
    else:
        category_of = np.asarray(category_of, dtype=np.int64) % n_categories
        if category_of.shape != (n_items,):
            raise DatasetError("category_of must have one entry per item")
    # Each item gets a brand from its own category (fallback: any brand).
    brand_of = np.empty(n_items, dtype=np.int64)
    for i in range(n_items):
        candidates = np.flatnonzero(brand_category == category_of[i])
        brand_of[i] = rng.choice(candidates) if candidates.size else rng.integers(n_brands)

    # Vertex layout: items, then brands, then categories.
    item_ids = np.arange(n_items, dtype=np.int64)
    brand_ids = n_items + np.arange(n_brands, dtype=np.int64)
    cat_ids = n_items + n_brands + np.arange(n_categories, dtype=np.int64)
    src = np.concatenate([item_ids, item_ids, brand_ids])
    dst = np.concatenate(
        [brand_ids[brand_of], cat_ids[category_of], cat_ids[brand_category]]
    )
    edge_types = np.concatenate(
        [
            np.zeros(n_items, dtype=np.int64),  # has_brand
            np.ones(n_items, dtype=np.int64),  # in_category
            np.full(n_brands, 2, dtype=np.int64),  # brand_in_category
        ]
    )
    n = n_items + n_brands + n_categories
    vertex_types = np.concatenate(
        [
            np.zeros(n_items, dtype=np.int64),
            np.ones(n_brands, dtype=np.int64),
            np.full(n_categories, 2, dtype=np.int64),
        ]
    )
    kg = AttributedHeterogeneousGraph(
        n_vertices=n,
        src=src,
        dst=dst,
        vertex_types=vertex_types,
        edge_types=edge_types,
        vertex_type_names=["item", "brand", "category"],
        edge_type_names=["has_brand", "in_category", "brand_in_category"],
        directed=False,
    )
    return kg, brand_of, category_of
