"""Synthetic Taobao-like attributed heterogeneous graphs.

``taobao_graph`` generates the laptop-scale stand-in for the paper's
proprietary Taobao graphs (Table 3): user and item vertices, four behaviour
edge types (click / collect / cart / buy) from users to items, item-item
co-occurrence edges, and dense attribute rows (27 user dims, 32 item dims)
drawn from a small discrete vocabulary so attribute values overlap heavily —
the property the deduplicating attribute store exploits.

Degree structure is power-law on both sides: user activity (out-degree) is
sampled from a truncated discrete power law, and item popularity follows a
Zipf law via preferential destination sampling. Item vertices therefore have
power-law in-degree and small out-degree — high ``Imp^(k)`` — while users
have the reverse, reproducing the importance skew of Theorems 1–2 that
Figures 8–9 rest on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.graph.graph import Graph
from repro.utils.powerlaw import sample_power_law_degrees
from repro.utils.rng import make_rng

#: The four behaviour edge types of the Taobao graph (Figure 2).
BEHAVIOUR_TYPES = ("click", "collect", "cart", "buy")
#: Behaviour mix: clicks dominate, buys are rare.
BEHAVIOUR_PROBS = (0.62, 0.14, 0.14, 0.10)

USER_ATTR_DIM = 27
ITEM_ATTR_DIM = 32


def _zipf_ranks(n: int, size: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Sample ``size`` indices in [0, n) with Zipf(rank)^-exponent mass."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return rng.choice(n, size=size, p=weights)


def _discrete_attributes(
    count: int,
    dim: int,
    vocab: int,
    rng: np.random.Generator,
    profile_fraction: float = 0.15,
) -> np.ndarray:
    """Attribute rows drawn from a Zipf pool of profile archetypes.

    Real catalog/user attributes repeat heavily ("many vertices share the
    tag 'man'"); we model that by generating a pool of distinct profile rows
    (``profile_fraction`` of the population) and assigning vertices to
    profiles with Zipf popularity — so whole rows collide, which is exactly
    what the separate attribute store's deduplication exploits.
    """
    n_profiles = max(2, int(profile_fraction * count))
    profiles = rng.integers(0, vocab, size=(n_profiles, dim)).astype(np.float32)
    assignment = _zipf_ranks(n_profiles, count, 1.0, rng)
    return profiles[assignment]


def taobao_graph(
    n_users: int = 4000,
    n_items: int = 1200,
    mean_user_degree: float = 8.0,
    mean_item_out_degree: float = 6.0,
    item_item_fraction: float = 0.4,
    degree_alpha: float = 4.0,
    item_zipf: float = 1.5,
    n_interests: int = 20,
    interest_affinity: float = 0.85,
    attr_vocab: int = 4,
    seed: int = 0,
) -> AttributedHeterogeneousGraph:
    """Generate a Taobao-like AHG (directed).

    Items belong to ``n_interests`` interest groups (categories) and each
    user has two preferred groups; with probability ``interest_affinity`` a
    behaviour edge lands inside a preferred group. This affinity structure
    is what makes link prediction *learnable* (as it is on the real
    e-commerce graph) while the degree machinery below controls the storage
    experiments:

    * **user -> item** behaviour arcs: user out-degree is power-law
      (``degree_alpha``, rescaled to ``mean_user_degree``), item choice is
      Zipf(``item_zipf``) popularity within the chosen group — so item
      in-degree is power-law;
    * **item -> item** co-occurrence arcs (type ``item_item``), mostly
      intra-group;
    * **item -> user** interaction arcs (typed like behaviours): the item
      side's stored adjacency rows, aimed mostly at users who prefer the
      item's group. Their lengths are an *independent* power law, modelling
      the platform's bounded per-item engagement lists rather than raw
      popularity. Keeping them independent of in-degree is what spreads
      ``Imp^(2) = D_i/D_o`` across (0, 1] with a heavy tail — the Figure 8
      regime (exponents calibrated so ~20–30% of vertices clear the
      paper's tau = 0.2).

    Item attribute row 0 carries the interest-group id (like a category
    tag) and user attribute rows 0–1 carry the preferred groups, so
    attribute-aware methods can genuinely exploit them.

    Parameters mirror the knobs that matter to the experiments; the named
    dataset registry (``repro.data.datasets``) fixes them for
    ``taobao-small-sim`` and ``taobao-large-sim``.
    """
    if n_users < 1 or n_items < 2:
        raise DatasetError("need at least 1 user and 2 items")
    if not 0.0 <= interest_affinity <= 1.0:
        raise DatasetError("interest_affinity must be in [0, 1]")
    rng = make_rng(seed)
    n_interests = max(1, min(n_interests, n_items // 2))

    def scaled_powerlaw(count: int, mean: float) -> np.ndarray:
        max_deg = max(4, int(mean * 12))
        deg = sample_power_law_degrees(count, degree_alpha, 1, max_deg, rng)
        scale = mean / max(deg.mean(), 1e-9)
        return np.maximum(1, np.round(deg * scale)).astype(np.int64)

    # Interest structure: item groups and per-user preferred groups.
    item_group = rng.integers(0, n_interests, size=n_items)
    group_items = [np.flatnonzero(item_group == g) for g in range(n_interests)]
    # Guarantee non-empty groups by round-robin re-dealing if needed.
    if any(g.size == 0 for g in group_items):
        item_group = np.arange(n_items) % n_interests
        group_items = [np.flatnonzero(item_group == g) for g in range(n_interests)]
    # Group popularity is itself Zipf (fashion beats lawn-mowers), which
    # keeps *global* item popularity strongly skewed even though choice is
    # within-group — the skew Figures 8-9 depend on.
    user_pref = _zipf_ranks(n_interests, 2 * n_users, 1.0, rng).reshape(n_users, 2)
    # Users who prefer each group (for item->user arcs).
    prefers_group = [
        np.flatnonzero((user_pref[:, 0] == g) | (user_pref[:, 1] == g))
        for g in range(n_interests)
    ]

    def pick_items(groups: np.ndarray) -> np.ndarray:
        """One item per requested group, Zipf-popular within the group."""
        out = np.empty(groups.size, dtype=np.int64)
        for g in range(n_interests):
            mask = groups == g
            count = int(mask.sum())
            if count:
                pool = group_items[g]
                out[mask] = pool[_zipf_ranks(pool.size, count, item_zipf, rng)]
        return out

    user_deg = scaled_powerlaw(n_users, mean_user_degree)
    src_users = np.repeat(np.arange(n_users, dtype=np.int64), user_deg)
    n_ui = src_users.size
    in_pref = rng.random(n_ui) < interest_affinity
    pref_pick = user_pref[src_users, rng.integers(0, 2, size=n_ui)]
    random_group = _zipf_ranks(n_interests, n_ui, 1.0, rng)
    groups = np.where(in_pref, pref_pick, random_group)
    dst_items = pick_items(groups) + n_users
    etype_idx = rng.choice(len(BEHAVIOUR_TYPES), size=n_ui, p=BEHAVIOUR_PROBS)

    item_out_deg = scaled_powerlaw(n_items, mean_item_out_degree)
    io_src = np.repeat(
        np.arange(n_users, n_users + n_items, dtype=np.int64), item_out_deg
    )
    n_io = io_src.size
    src_groups = item_group[io_src - n_users]
    to_item = rng.random(n_io) < item_item_fraction
    io_dst = np.empty(n_io, dtype=np.int64)
    # item -> item: mostly within the source item's group.
    ii_groups = np.where(
        rng.random(n_io) < interest_affinity,
        src_groups,
        _zipf_ranks(n_interests, n_io, 1.0, rng),
    )
    io_dst[to_item] = pick_items(ii_groups[to_item]) + n_users
    # item -> user: the platform's per-item engagement rows list users who
    # actually interacted with the item (sampled from its in-neighbors), so
    # the arcs carry real affinity signal. Crucially the *length* of each
    # row stays the independent power law drawn above — not the item's
    # in-degree — which is what keeps Imp^(2) = D_i/D_o spread out for the
    # Figure 8 knee.
    interactors: list[list[int]] = [[] for _ in range(n_items)]
    for u, i in zip(src_users, dst_items - n_users):
        interactors[i].append(int(u))
    # Per-user "visibility" — an independent Zipf weight deciding which
    # interactors make it into the bounded engagement rows. Independence
    # from user activity keeps user in-degree an independent power law,
    # preserving the Imp^(2) spread behind the Figure 8 knee, while every
    # arc still points at a genuine interactor (learnable affinity).
    visibility = (np.arange(1, n_users + 1, dtype=np.float64)) ** -1.2
    rng.shuffle(visibility)
    iu_idx = np.flatnonzero(~to_item)
    iu_dst = np.empty(iu_idx.size, dtype=np.int64)
    fallback = _zipf_ranks(n_users, iu_idx.size, 0.8, rng)
    for j, e in enumerate(iu_idx):
        pool = interactors[int(io_src[e]) - n_users]
        if pool:
            weights = visibility[pool]
            iu_dst[j] = pool[
                int(rng.choice(len(pool), p=weights / weights.sum()))
            ]
        else:
            iu_dst[j] = fallback[j]
    io_dst[iu_idx] = iu_dst
    io_types = np.where(
        to_item,
        len(BEHAVIOUR_TYPES),
        rng.choice(len(BEHAVIOUR_TYPES), size=n_io, p=BEHAVIOUR_PROBS),
    ).astype(np.int64)
    keep = io_src != io_dst
    io_src, io_dst, io_types = io_src[keep], io_dst[keep], io_types[keep]

    src = np.concatenate([src_users, io_src])
    dst = np.concatenate([dst_items, io_dst])
    edge_types = np.concatenate([etype_idx, io_types])

    n = n_users + n_items
    vertex_types = np.concatenate(
        [np.zeros(n_users, dtype=np.int64), np.ones(n_items, dtype=np.int64)]
    )
    attr_dim = max(USER_ATTR_DIM, ITEM_ATTR_DIM)
    features = np.zeros((n, attr_dim), dtype=np.float32)
    features[:n_users, :USER_ATTR_DIM] = _discrete_attributes(
        n_users, USER_ATTR_DIM, attr_vocab, rng
    )
    features[n_users:, :ITEM_ATTR_DIM] = _discrete_attributes(
        n_items, ITEM_ATTR_DIM, attr_vocab, rng
    )
    # Interest tags occupy the leading attribute slots as one-hot/multi-hot
    # indicators (an ordinal group id would be useless to linear attribute
    # projections). Groups beyond the available slots wrap around.
    tag_dims = min(n_interests, 20)
    features[:, :tag_dims] = 0.0
    features[np.arange(n_users), user_pref[:, 0] % tag_dims] = 1.0
    features[np.arange(n_users), user_pref[:, 1] % tag_dims] = 1.0
    features[n_users + np.arange(n_items), item_group % tag_dims] = 1.0

    return AttributedHeterogeneousGraph(
        n_vertices=n,
        src=src,
        dst=dst,
        vertex_types=vertex_types,
        edge_types=edge_types,
        vertex_type_names=["user", "item"],
        edge_type_names=list(BEHAVIOUR_TYPES) + ["item_item"],
        directed=True,
        vertex_features=features,
    )


def powerlaw_graph(
    n: int,
    alpha: float = 2.1,
    min_degree: int = 1,
    max_degree: int | None = None,
    directed: bool = True,
    preferential: bool = True,
    seed: int = 0,
) -> Graph:
    """A plain power-law graph for storage/sampling experiments.

    Out-degrees are power-law; with ``preferential`` the destinations are
    degree-proportional (so in-degrees are power-law too — the regime of
    Theorems 1–2), otherwise uniform.
    """
    if n < 2:
        raise DatasetError("need at least 2 vertices")
    rng = make_rng(seed)
    max_degree = max_degree or max(4, n // 10)
    degrees = sample_power_law_degrees(n, alpha, min_degree, max_degree, rng)
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    if preferential:
        pool = np.repeat(np.arange(n, dtype=np.int64), degrees)
        dst = pool[rng.integers(pool.size, size=src.size)]
    else:
        dst = rng.integers(0, n, size=src.size)
    keep = src != dst
    return Graph(n, src[keep], dst[keep], directed=directed)
