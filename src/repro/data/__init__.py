"""Synthetic data substrate.

The paper's evaluation runs on two proprietary Taobao production graphs and
an Amazon metadata graph. This package generates seeded synthetic stand-ins
that preserve the properties the experiments depend on: power-law in/out
degrees (Theorems 1–2), user/item bipartite + item-item topology, four
behaviour edge types, overlapping discrete attributes (for the dedup store),
the 6× small/large size ratio, dynamic snapshots with normal + burst
evolution, and a brand/category knowledge graph for the Bayesian GNN.
"""

from repro.data.amazon import amazon_graph
from repro.data.datasets import DATASETS, make_dataset
from repro.data.dynamic import dynamic_taobao
from repro.data.knowledge import knowledge_graph
from repro.data.splits import LinkSplit, train_test_split_edges
from repro.data.synthetic import powerlaw_graph, taobao_graph

__all__ = [
    "taobao_graph",
    "powerlaw_graph",
    "amazon_graph",
    "dynamic_taobao",
    "knowledge_graph",
    "LinkSplit",
    "train_test_split_edges",
    "make_dataset",
    "DATASETS",
]
