"""Synthetic Amazon electronics co-view/co-buy graph.

Stands in for the public Amazon metadata graph of Table 6 (10,166 vertices,
148,865 edges, 1 vertex type, 2 edge types): products connected when
co-viewed or co-bought, with product attribute rows (price band, brand id,
category id, rating band — all discrete so they overlap).

The generator plants soft product communities (categories): co-view edges
are mostly intra-community with popularity-proportional endpoints, co-buy
edges are a sparser, noisier subset. That gives the multiplex structure the
GATNE experiment needs — the two edge types are correlated but not
identical, so combining them (and the attributes) genuinely helps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.utils.rng import make_rng

PRODUCT_ATTR_DIM = 8


def amazon_graph(
    n_products: int = 2000,
    n_communities: int = 20,
    coview_per_product: float = 7.0,
    cobuy_fraction: float = 0.35,
    intra_community: float = 0.85,
    zipf: float = 1.0,
    seed: int = 0,
) -> AttributedHeterogeneousGraph:
    """Generate the Amazon-like multiplex product graph (undirected)."""
    if n_products < n_communities * 2:
        raise DatasetError("need at least two products per community")
    rng = make_rng(seed)
    community = rng.integers(0, n_communities, size=n_products)
    members: list[np.ndarray] = [
        np.flatnonzero(community == c) for c in range(n_communities)
    ]
    if any(m.size < 2 for m in members):
        # Re-deal deterministically: round-robin assignment guarantees size.
        community = np.arange(n_products) % n_communities
        members = [np.flatnonzero(community == c) for c in range(n_communities)]

    popularity = (np.arange(1, n_products + 1, dtype=np.float64)) ** -zipf
    rng.shuffle(popularity)

    n_coview = int(coview_per_product * n_products)
    src = np.empty(n_coview, dtype=np.int64)
    dst = np.empty(n_coview, dtype=np.int64)
    all_probs = popularity / popularity.sum()
    src[:] = rng.choice(n_products, size=n_coview, p=all_probs)
    intra = rng.random(n_coview) < intra_community
    for i in range(n_coview):
        if intra[i]:
            pool = members[community[src[i]]]
            local = popularity[pool]
            dst[i] = rng.choice(pool, p=local / local.sum())
        else:
            dst[i] = rng.choice(n_products, p=all_probs)
    keep = src != dst
    src, dst = src[keep], dst[keep]

    # Co-buy: a sparser subset of co-view pairs plus a little noise, so the
    # two layers are correlated multiplex views of the same communities.
    n_cobuy = int(cobuy_fraction * src.size)
    idx = rng.choice(src.size, size=n_cobuy, replace=False)
    buy_src, buy_dst = src[idx].copy(), dst[idx].copy()
    n_noise = max(1, n_cobuy // 10)
    noise_src = rng.choice(n_products, size=n_noise, p=all_probs)
    noise_dst = rng.choice(n_products, size=n_noise, p=all_probs)
    keep_noise = noise_src != noise_dst
    buy_src = np.concatenate([buy_src, noise_src[keep_noise]])
    buy_dst = np.concatenate([buy_dst, noise_dst[keep_noise]])

    full_src = np.concatenate([src, buy_src])
    full_dst = np.concatenate([dst, buy_dst])
    edge_types = np.concatenate(
        [np.zeros(src.size, dtype=np.int64), np.ones(buy_src.size, dtype=np.int64)]
    )

    # Product attributes: one-hot category (correlated with the structure),
    # then brand / price band / rating band and a few discrete extras.
    features = np.zeros(
        (n_products, n_communities + PRODUCT_ATTR_DIM - 1), dtype=np.float32
    )
    features[np.arange(n_products), community] = 1.0
    tail = n_communities
    features[:, tail + 0] = rng.integers(0, 50, size=n_products)  # brand
    features[:, tail + 1] = rng.integers(0, 10, size=n_products)  # price band
    features[:, tail + 2] = rng.integers(0, 5, size=n_products)  # rating band
    features[:, tail + 3 :] = rng.integers(
        0, 4, size=(n_products, PRODUCT_ATTR_DIM - 4)
    )

    return AttributedHeterogeneousGraph(
        n_vertices=n_products,
        src=full_src,
        dst=full_dst,
        vertex_types=np.zeros(n_products, dtype=np.int64),
        edge_types=edge_types,
        vertex_type_names=["item"],
        edge_type_names=["co_view", "co_buy"],
        directed=False,
        vertex_features=features,
    )
