"""Dynamic graph generator: normal evolution + burst links (Evolving GNN).

The Evolving GNN splits edge dynamics into (1) *normal evolution* — the
majority of reasonable changes — and (2) *burst links* — rare, abnormal
edges. We generate a snapshot sequence over a Taobao-like base graph where:

* normal additions follow the existing preferential structure (new edges
  attach to already-popular destinations of the source's community);
* burst events pick a "burst target" and slam it with edges from random
  sources it has no structural affinity to (flash-sale / spam dynamics);
* a small fraction of existing edges is removed per step (churn).

Every event carries its ground-truth ``burst`` label, which is what the
Table 11 multi-class link prediction task trains/evaluates against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.dynamic import DynamicGraph, EdgeEvent
from repro.graph.graph import Graph
from repro.utils.rng import make_rng


def dynamic_taobao(
    n_vertices: int = 800,
    n_timestamps: int = 6,
    base_mean_degree: float = 6.0,
    normal_adds_per_step: int = 150,
    burst_events_per_step: int = 1,
    burst_size: int = 40,
    removals_per_step: int = 30,
    seed: int = 0,
) -> DynamicGraph:
    """Generate a labelled dynamic graph G(1..T)."""
    if n_timestamps < 2:
        raise DatasetError("a dynamic graph needs at least 2 snapshots")
    rng = make_rng(seed)

    # Base snapshot: preferential-attachment style directed graph.
    n_base = int(base_mean_degree * n_vertices)
    popularity = (np.arange(1, n_vertices + 1, dtype=np.float64)) ** -1.0
    rng.shuffle(popularity)
    probs = popularity / popularity.sum()
    src = rng.integers(0, n_vertices, size=n_base)
    dst = rng.choice(n_vertices, size=n_base, p=probs)
    keep = src != dst
    base = Graph(n_vertices, src[keep], dst[keep], directed=True)

    existing: set[tuple[int, int]] = set(
        (int(u), int(v)) for u, v in zip(*base.edge_array()[:2])
    )
    events: list[EdgeEvent] = []
    for t in range(n_timestamps - 1):
        # Normal evolution: preferential destinations, uniform sources.
        added = 0
        while added < normal_adds_per_step:
            u = int(rng.integers(n_vertices))
            v = int(rng.choice(n_vertices, p=probs))
            if u == v or (u, v) in existing:
                continue
            existing.add((u, v))
            events.append(EdgeEvent(timestamp=t, src=u, dst=v, kind="add", burst=False))
            added += 1
        # Burst events: one unpopular target suddenly attracts many edges.
        for _ in range(burst_events_per_step):
            # Pick a target from the *unpopular* half — abnormal by design.
            order = np.argsort(probs)
            target = int(rng.choice(order[: n_vertices // 2]))
            added_burst = 0
            while added_burst < burst_size:
                u = int(rng.integers(n_vertices))
                if u == target or (u, target) in existing:
                    continue
                existing.add((u, target))
                events.append(
                    EdgeEvent(timestamp=t, src=u, dst=target, kind="add", burst=True)
                )
                added_burst += 1
        # Churn: remove a few random existing edges.
        removable = list(existing)
        for idx in rng.choice(len(removable), size=min(removals_per_step, len(removable)), replace=False):
            u, v = removable[int(idx)]
            if (u, v) in existing:
                existing.discard((u, v))
                events.append(EdgeEvent(timestamp=t, src=u, dst=v, kind="remove"))

    return DynamicGraph.from_events(base, events, n_timestamps)
