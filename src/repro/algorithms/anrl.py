"""ANRL (Zhang et al., IJCAI 2018).

Attributed network representation learning: a neighbor-enhancement
autoencoder models attribute information (encode ``x_v``, decode the
*aggregated neighbor attributes* — the neighbor-enhancement target) while a
skip-gram branch on the encoder output captures structure. The encoder
bottleneck is the embedding.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.graph import Graph
from repro.nn.layers import Dense, Sequential
from repro.nn.loss import mse, skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.randomwalk import random_walks, walk_context_pairs
from repro.utils.rng import make_rng


class ANRL(EmbeddingModel):
    """Neighbor-enhancement autoencoder + skip-gram embeddings."""

    name = "anrl"

    def __init__(
        self,
        dim: int = 64,
        hidden: int = 64,
        walks_per_vertex: int = 3,
        walk_length: int = 8,
        window: int = 3,
        epochs: int = 2,
        batch_size: int = 512,
        neg_num: int = 5,
        recon_weight: float = 1.0,
        lr: float = 0.01,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.hidden = hidden
        self.walks_per_vertex = walks_per_vertex
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.recon_weight = recon_weight
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None

    def fit(self, graph: Graph) -> "ANRL":
        feats = getattr(graph, "vertex_features", None)
        if feats is None:
            raise TrainingError("ANRL needs vertex attributes")
        rng = make_rng(self.seed)
        x = np.asarray(feats, dtype=np.float64)
        x = (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)
        # Neighbor-enhancement target: mean attribute vector of neighbors.
        target = np.zeros_like(x)
        for v in range(graph.n_vertices):
            nbrs = graph.out_neighbors(v)
            target[v] = x[nbrs].mean(axis=0) if nbrs.size else x[v]

        f_dim = x.shape[1]
        encoder = Sequential(
            Dense(f_dim, self.hidden, rng, "relu"), Dense(self.hidden, self.dim, rng)
        )
        decoder = Sequential(
            Dense(self.dim, self.hidden, rng, "relu"), Dense(self.hidden, f_dim, rng)
        )
        from repro.nn.layers import Embedding

        context = Embedding(graph.n_vertices, self.dim, rng)
        params = encoder.parameters() + decoder.parameters() + context.parameters()
        optimizer = Adam(params, lr=self.lr)

        starts = np.tile(graph.vertices(), self.walks_per_vertex)
        rng.shuffle(starts)
        centers, contexts = walk_context_pairs(
            random_walks(graph, starts, self.walk_length, rng), self.window
        )
        neg_sampler = DegreeBiasedNegativeSampler(graph)
        for _ in range(self.epochs):
            perm = rng.permutation(centers.size)
            for lo in range(0, centers.size, self.batch_size):
                idx = perm[lo : lo + self.batch_size]
                c_ids, u_ids = centers[idx], contexts[idx]
                neg_ids = neg_sampler.sample(c_ids, self.neg_num, rng).reshape(-1)
                optimizer.zero_grad()
                z = encoder(Tensor(x[c_ids]))
                sg = skipgram_negative_loss(z, context(u_ids), context(neg_ids))
                recon = mse(decoder(z), target[c_ids])
                (sg + recon * self.recon_weight).backward()
                optimizer.step()
        self._embeddings = unit_rows(encoder(Tensor(x)).numpy())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
