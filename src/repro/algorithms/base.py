"""Shared model interface and the skip-gram training engine.

Half the algorithm zoo (DeepWalk, Node2Vec, Metapath2Vec, PMNE, MVE, MNE,
GATNE, Mixture GNN, ...) trains some variant of skip-gram with negative
sampling over walk-derived (center, context) pairs. :func:`train_skipgram`
is the shared vectorized trainer; models customize how the center embedding
is *composed* (plain table, multiplex mixture, attribute-augmented, ...) by
passing an embedding function.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import TrainingError
from repro.graph.graph import Graph
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam, Optimizer
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.utils.rng import make_rng


class EmbeddingModel:
    """Interface all embedding algorithms implement."""

    name = "abstract"

    def fit(self, graph: Graph) -> "EmbeddingModel":
        """Train on ``graph``; returns self for chaining."""
        raise NotImplementedError

    def embeddings(self) -> np.ndarray:
        """The ``(n, d)`` embedding matrix of the fitted graph."""
        raise NotImplementedError

    def _require_fitted(self, attr: str = "_embeddings") -> None:
        if getattr(self, attr, None) is None:
            raise TrainingError(f"{type(self).__name__} is not fitted yet")


def train_skipgram(
    pairs: tuple[np.ndarray, np.ndarray],
    center_fn: Callable[[np.ndarray], Tensor],
    context_fn: Callable[[np.ndarray], Tensor],
    optimizer: Optimizer,
    negative_sampler: DegreeBiasedNegativeSampler,
    rng: np.random.Generator,
    epochs: int = 2,
    batch_size: int = 1024,
    neg_num: int = 5,
) -> float:
    """SGNS training loop shared across the walk-based models.

    ``center_fn(ids)``/``context_fn(ids)`` map id arrays to embedding
    tensors — models compose arbitrary structure inside them. Returns the
    final mean batch loss (for convergence assertions in tests).
    """
    centers, contexts = pairs
    if centers.size != contexts.size or centers.size == 0:
        raise TrainingError("need equal, non-empty center/context arrays")
    last_loss = float("inf")
    for _ in range(epochs):
        perm = rng.permutation(centers.size)
        losses = []
        for lo in range(0, centers.size, batch_size):
            idx = perm[lo : lo + batch_size]
            c_ids = centers[idx]
            u_ids = contexts[idx]
            neg_ids = negative_sampler.sample(c_ids, neg_num, rng).reshape(-1)
            optimizer.zero_grad()
            loss = skipgram_negative_loss(
                center_fn(c_ids), context_fn(u_ids), context_fn(neg_ids)
            )
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        last_loss = float(np.mean(losses))
    return last_loss


def train_skipgram_kv(
    pairs: tuple[np.ndarray, np.ndarray],
    kv_center: "object",
    kv_context: "object",
    negative_sampler: DegreeBiasedNegativeSampler,
    rng: np.random.Generator,
    epochs: int = 2,
    batch_size: int = 1024,
    neg_num: int = 5,
    from_part: int = 0,
) -> float:
    """SGNS against parameter-server embedding tables.

    The KV twin of :func:`train_skipgram`: same shuffling, batching and
    negative sampling (the RNG consumption is identical, so the two paths
    see the same batches), but embeddings live in
    :class:`~repro.storage.embedding.EmbeddingKVStore` tables. Each step
    pulls the deduplicated union of the ids a table needs **once** (one
    coalesced request per remote shard), runs the loss over the pulled
    block, and pushes the coalesced row gradients back — the server applies
    the sparse optimizer update, so untouched rows are never written.
    """
    centers, contexts = pairs
    if centers.size != contexts.size or centers.size == 0:
        raise TrainingError("need equal, non-empty center/context arrays")
    last_loss = float("inf")
    for _ in range(epochs):
        perm = rng.permutation(centers.size)
        losses = []
        for lo in range(0, centers.size, batch_size):
            idx = perm[lo : lo + batch_size]
            c_ids = centers[idx]
            u_ids = contexts[idx]
            neg_ids = negative_sampler.sample(c_ids, neg_num, rng).reshape(-1)
            mb_center = kv_center.minibatch(c_ids, from_part=from_part)
            mb_context = kv_context.minibatch(
                u_ids, neg_ids, from_part=from_part
            )
            loss = skipgram_negative_loss(
                mb_center.lookup(c_ids),
                mb_context.lookup(u_ids),
                mb_context.lookup(neg_ids),
            )
            loss.backward()
            mb_center.push()
            mb_context.push()
            losses.append(loss.item())
        last_loss = float(np.mean(losses))
    return last_loss


def default_optimizer(params: "list[Tensor]", lr: float = 0.025) -> Optimizer:
    """The optimizer the walk-based models default to."""
    return Adam(params, lr=lr)


def unit_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize rows (final embedding post-processing)."""
    norm = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norm, 1e-12)


def make_fit_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Normalize a model's seed argument at fit time."""
    return make_rng(seed)
