"""LINE (Tang et al., WWW 2015).

Preserves first-order proximity (directly connected vertices embed close)
and second-order proximity (vertices with similar neighborhoods embed
close), each trained by edge sampling with negative sampling; the final
embedding concatenates the two halves.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.graph.graph import Graph
from repro.nn.layers import Embedding
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.traverse import EdgeTraverseSampler
from repro.utils.rng import make_rng


class LINE(EmbeddingModel):
    """First + second order proximity embeddings."""

    name = "line"

    def __init__(
        self,
        dim: int = 64,
        steps: int = 300,
        batch_size: int = 1024,
        neg_num: int = 5,
        lr: float = 0.02,
        seed: int = 0,
    ) -> None:
        if dim % 2:
            raise ValueError("LINE splits dim across two orders; use an even dim")
        self.dim = dim
        self.steps = steps
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None

    def fit(self, graph: Graph) -> "LINE":
        rng = make_rng(self.seed)
        half = self.dim // 2
        n = graph.n_vertices
        first = Embedding(n, half, rng)
        second = Embedding(n, half, rng)
        second_ctx = Embedding(n, half, rng)
        optimizer = Adam(
            first.parameters() + second.parameters() + second_ctx.parameters(),
            lr=self.lr,
        )
        edges = EdgeTraverseSampler(graph, weighted=True)
        negs = DegreeBiasedNegativeSampler(graph)
        for _ in range(self.steps):
            src, dst = edges.sample(self.batch_size, rng)
            neg_ids = negs.sample(src, self.neg_num, rng).reshape(-1)
            optimizer.zero_grad()
            # 1st order: symmetric affinity between endpoint embeddings.
            loss1 = skipgram_negative_loss(first(src), first(dst), first(neg_ids))
            # 2nd order: source embedding vs context-role destination.
            loss2 = skipgram_negative_loss(
                second(src), second_ctx(dst), second_ctx(neg_ids)
            )
            (loss1 + loss2).backward()
            optimizer.step()
        self._embeddings = unit_rows(
            np.concatenate([first.table.numpy(), second.table.numpy()], axis=1)
        )
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
