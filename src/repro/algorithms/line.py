"""LINE (Tang et al., WWW 2015).

Preserves first-order proximity (directly connected vertices embed close)
and second-order proximity (vertices with similar neighborhoods embed
close), each trained by edge sampling with negative sampling; the final
embedding concatenates the two halves.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.graph import Graph
from repro.nn.init import embedding_init
from repro.nn.layers import Embedding
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.traverse import EdgeTraverseSampler
from repro.utils.rng import make_rng


class LINE(EmbeddingModel):
    """First + second order proximity embeddings.

    ``backend="kv"`` trains the three tables (first-order, second-order,
    second-order context) as partitioned
    :class:`~repro.storage.embedding.EmbeddingKVStore` tables over
    ``kv_workers`` simulated servers: each step pulls every table's
    deduplicated id union once and pushes row-sparse gradients back, the
    servers applying sparse-Adam in place. The fitted store stays on
    :attr:`kv_store`. The default stays the dense in-process path.
    """

    name = "line"

    def __init__(
        self,
        dim: int = 64,
        steps: int = 300,
        batch_size: int = 1024,
        neg_num: int = 5,
        lr: float = 0.02,
        seed: int = 0,
        backend: str = "dense",
        kv_workers: int = 4,
        kv_staleness: int = 0,
    ) -> None:
        if dim % 2:
            raise ValueError("LINE splits dim across two orders; use an even dim")
        if backend not in ("dense", "kv"):
            raise TrainingError(
                f"unknown embedding backend {backend!r} (dense or kv)"
            )
        self.dim = dim
        self.steps = steps
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.lr = lr
        self.seed = seed
        self.backend = backend
        self.kv_workers = kv_workers
        self.kv_staleness = kv_staleness
        #: The distributed store a ``backend="kv"`` fit trained against.
        self.kv_store = None
        self._embeddings: np.ndarray | None = None

    def fit(self, graph: Graph) -> "LINE":
        rng = make_rng(self.seed)
        half = self.dim // 2
        n = graph.n_vertices
        if self.backend == "kv":
            return self._fit_kv(graph, rng, half, n)
        first = Embedding(n, half, rng)
        second = Embedding(n, half, rng)
        second_ctx = Embedding(n, half, rng)
        optimizer = Adam(
            first.parameters() + second.parameters() + second_ctx.parameters(),
            lr=self.lr,
        )
        edges = EdgeTraverseSampler(graph, weighted=True)
        negs = DegreeBiasedNegativeSampler(graph)
        for _ in range(self.steps):
            src, dst = edges.sample(self.batch_size, rng)
            neg_ids = negs.sample(src, self.neg_num, rng).reshape(-1)
            optimizer.zero_grad()
            # 1st order: symmetric affinity between endpoint embeddings.
            loss1 = skipgram_negative_loss(first(src), first(dst), first(neg_ids))
            # 2nd order: source embedding vs context-role destination.
            loss2 = skipgram_negative_loss(
                second(src), second_ctx(dst), second_ctx(neg_ids)
            )
            (loss1 + loss2).backward()
            optimizer.step()
        self._embeddings = unit_rows(
            np.concatenate([first.table.numpy(), second.table.numpy()], axis=1)
        )
        return self

    def _fit_kv(
        self, graph: Graph, rng: np.random.Generator, half: int, n: int
    ) -> "LINE":
        """Edge-sampled training against parameter-server tables."""
        from repro.storage.cluster import make_store
        from repro.storage.embedding import EmbeddingKVStore

        store = make_store(graph, self.kv_workers, seed=self.seed)

        def table(name: str) -> EmbeddingKVStore:
            return EmbeddingKVStore(
                store, n, half, name=f"line.{name}",
                optimizer="adam", lr=self.lr,
                staleness=self.kv_staleness,
                init=embedding_init((n, half), rng),
            )

        first, second, second_ctx = table("first"), table("second"), table("ctx")
        edges = EdgeTraverseSampler(graph, weighted=True)
        negs = DegreeBiasedNegativeSampler(graph)
        for _ in range(self.steps):
            src, dst = edges.sample(self.batch_size, rng)
            neg_ids = negs.sample(src, self.neg_num, rng).reshape(-1)
            mb_first = first.minibatch(src, dst, neg_ids)
            mb_second = second.minibatch(src)
            mb_ctx = second_ctx.minibatch(dst, neg_ids)
            loss1 = skipgram_negative_loss(
                mb_first.lookup(src), mb_first.lookup(dst),
                mb_first.lookup(neg_ids),
            )
            loss2 = skipgram_negative_loss(
                mb_second.lookup(src), mb_ctx.lookup(dst),
                mb_ctx.lookup(neg_ids),
            )
            (loss1 + loss2).backward()
            mb_first.push()
            mb_second.push()
            mb_ctx.push()
        self.kv_store = store
        self._embeddings = unit_rows(
            np.concatenate([first.materialize(), second.materialize()], axis=1)
        )
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
