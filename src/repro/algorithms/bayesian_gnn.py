"""Bayesian GNN (paper §4.2): knowledge-graph-corrected embeddings.

Mimics cognition: a *prior* embedding ``h_v`` learned from the knowledge
graph alone, then a task-specific correction ``z_v ≈ f(h_v + delta_v)``
(Eq. 7) where ``delta_v ~ N(0, s_v^2)`` and ``f`` is a shared non-linear
projection. Exact per-entity ``delta_v`` is infeasible, so — as in the paper
— the generative model is fit at second order: for entity pairs
``(v1, v2)``, ``z_{v1} - z_{v2}`` is Gaussian around
``f_phi(h_{v1}+delta_{v1}) - f_phi(h_{v2}+delta_{v2})``. We fit ``phi`` and
the posterior means ``mu_v`` of the corrections by maximizing that pairwise
likelihood against the behaviour-graph embeddings, then output both
corrected views: ``h_v + mu_v`` (corrected KG embedding) and
``f_phi(h_v + mu_v)`` (corrected task embedding).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.algorithms.deepwalk import DeepWalk
from repro.errors import TrainingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.nn.layers import Dense
from repro.nn.loss import mse
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import make_rng


class BayesianGNN(EmbeddingModel):
    """KG-prior + Gaussian correction over task embeddings.

    ``fit_correction`` takes (1) task embeddings of the entities (e.g.
    GraphSAGE on the behaviour graph) and (2) the knowledge graph; it learns
    ``f_phi`` and the posterior corrections and exposes the corrected
    task-specific embeddings.
    """

    name = "bayesian-gnn"

    def __init__(
        self,
        dim: int = 64,
        prior_walk_epochs: int = 2,
        steps: int = 200,
        batch_pairs: int = 512,
        prior_strength: float = 0.1,
        lr: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.prior_walk_epochs = prior_walk_epochs
        self.steps = steps
        self.batch_pairs = batch_pairs
        self.prior_strength = prior_strength
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None
        self._corrected_prior: np.ndarray | None = None

    def fit_correction(
        self,
        task_embeddings: np.ndarray,
        kg: AttributedHeterogeneousGraph,
        entity_ids: np.ndarray,
    ) -> "BayesianGNN":
        """Learn the correction aligning KG priors with task embeddings.

        ``entity_ids[i]`` is the KG vertex id of task entity ``i`` (rows of
        ``task_embeddings``).
        """
        task_embeddings = np.asarray(task_embeddings, dtype=np.float64)
        entity_ids = np.asarray(entity_ids, dtype=np.int64)
        if task_embeddings.shape[0] != entity_ids.size:
            raise TrainingError("one KG entity id per task embedding row")
        rng = make_rng(self.seed)

        # Prior embeddings h_v from the KG alone.
        prior_model = DeepWalk(dim=self.dim, epochs=self.prior_walk_epochs, seed=self.seed)
        kg_emb = prior_model.fit(kg).embeddings()
        h = kg_emb[entity_ids]  # (n_entities, dim)
        n = h.shape[0]
        task_dim = task_embeddings.shape[1]

        # s_v: correction scale from the coefficients of h_v (paper: s_v is
        # determined by the coefficients of h_v) — larger-norm priors get
        # tighter corrections.
        s = 1.0 / (np.linalg.norm(h, axis=1) + 1.0)

        f = Dense(self.dim, task_dim, rng, activation="tanh")
        delta = Tensor(np.zeros_like(h), requires_grad=True, name="delta")
        params = f.parameters() + [delta]
        optimizer = Adam(params, lr=self.lr)
        ht = Tensor(h)

        for _ in range(self.steps):
            v1 = rng.integers(0, n, size=self.batch_pairs)
            v2 = rng.integers(0, n, size=self.batch_pairs)
            optimizer.zero_grad()
            corrected = ht + delta
            z1 = f(corrected.gather_rows(v1))
            z2 = f(corrected.gather_rows(v2))
            target = task_embeddings[v1] - task_embeddings[v2]
            pair_nll = mse(z1 - z2, target)
            # Gaussian prior on delta: ||delta_v||^2 / (2 s_v^2).
            prior = ((delta * delta) * (1.0 / (2 * s**2)).reshape(-1, 1)).mean()
            (pair_nll + prior * self.prior_strength).backward()
            optimizer.step()

        mu = delta.numpy()
        self._corrected_prior = unit_rows(h + mu)  # h_v + mu_v
        # f_phi(h_v + mu_v): the corrected task-specific embedding (paper's
        # output). Pairwise-difference training leaves a global shift free,
        # so center it before use.
        z = f(Tensor(h + mu)).numpy()
        self._embeddings = z - z.mean(axis=0, keepdims=True)
        return self

    def fit(self, graph: AttributedHeterogeneousGraph) -> "BayesianGNN":
        raise TrainingError(
            "BayesianGNN is a correction model: call fit_correction(task_"
            "embeddings, kg, entity_ids)"
        )

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings

    def corrected_prior(self) -> np.ndarray:
        """The corrected knowledge-graph embedding ``h_v + mu_v``."""
        self._require_fitted("_corrected_prior")
        return self._corrected_prior
