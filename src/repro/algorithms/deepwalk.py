"""DeepWalk (Perozzi et al., KDD 2014).

Uniform truncated random walks generate a corpus; skip-gram with negative
sampling learns the embeddings. Purely structural — the baseline the paper's
Table 1 marks as handling none of heterogeneity/attributes/dynamics.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    EmbeddingModel,
    default_optimizer,
    train_skipgram,
    unit_rows,
)
from repro.graph.graph import Graph
from repro.nn.layers import Embedding
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.randomwalk import random_walks, walk_context_pairs
from repro.utils.rng import make_rng


class DeepWalk(EmbeddingModel):
    """Random-walk skip-gram embeddings."""

    name = "deepwalk"

    def __init__(
        self,
        dim: int = 64,
        walks_per_vertex: int = 4,
        walk_length: int = 10,
        window: int = 3,
        epochs: int = 2,
        neg_num: int = 5,
        lr: float = 0.025,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.walks_per_vertex = walks_per_vertex
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.neg_num = neg_num
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None
        self.final_loss = float("inf")

    def _walks(self, graph: Graph, rng: np.random.Generator):
        starts = np.tile(graph.vertices(), self.walks_per_vertex)
        rng.shuffle(starts)
        return random_walks(graph, starts, self.walk_length, rng)

    def fit(self, graph: Graph) -> "DeepWalk":
        rng = make_rng(self.seed)
        pairs = walk_context_pairs(self._walks(graph, rng), self.window)
        center = Embedding(graph.n_vertices, self.dim, rng)
        context = Embedding(graph.n_vertices, self.dim, rng)
        optimizer = default_optimizer(center.parameters() + context.parameters(), self.lr)
        self.final_loss = train_skipgram(
            pairs,
            center_fn=center,
            context_fn=context,
            optimizer=optimizer,
            negative_sampler=DegreeBiasedNegativeSampler(graph),
            rng=rng,
            epochs=self.epochs,
            neg_num=self.neg_num,
        )
        self._embeddings = unit_rows(center.table.numpy())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
