"""DeepWalk (Perozzi et al., KDD 2014).

Uniform truncated random walks generate a corpus; skip-gram with negative
sampling learns the embeddings. Purely structural — the baseline the paper's
Table 1 marks as handling none of heterogeneity/attributes/dynamics.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    EmbeddingModel,
    default_optimizer,
    train_skipgram,
    train_skipgram_kv,
    unit_rows,
)
from repro.errors import TrainingError
from repro.graph.graph import Graph
from repro.nn.init import embedding_init
from repro.nn.layers import Embedding
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.randomwalk import random_walks, walk_context_pairs
from repro.utils.rng import make_rng


class DeepWalk(EmbeddingModel):
    """Random-walk skip-gram embeddings.

    ``backend="dense"`` (the default) trains in process with dense tables;
    ``backend="kv"`` trains the same pairs against a partitioned
    :class:`~repro.storage.embedding.EmbeddingKVStore` over ``kv_workers``
    simulated servers — batched deduplicated pulls, row-sparse pushes,
    server-side sparse-Adam updates — leaving the fitted store on
    :attr:`kv_store` for inspection (ledger, metrics, RPC counts).
    """

    name = "deepwalk"

    def __init__(
        self,
        dim: int = 64,
        walks_per_vertex: int = 4,
        walk_length: int = 10,
        window: int = 3,
        epochs: int = 2,
        neg_num: int = 5,
        lr: float = 0.025,
        seed: int = 0,
        backend: str = "dense",
        kv_workers: int = 4,
        kv_staleness: int = 0,
    ) -> None:
        if backend not in ("dense", "kv"):
            raise TrainingError(
                f"unknown embedding backend {backend!r} (dense or kv)"
            )
        self.dim = dim
        self.walks_per_vertex = walks_per_vertex
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.neg_num = neg_num
        self.lr = lr
        self.seed = seed
        self.backend = backend
        self.kv_workers = kv_workers
        self.kv_staleness = kv_staleness
        #: The distributed store a ``backend="kv"`` fit trained against.
        self.kv_store = None
        self._embeddings: np.ndarray | None = None
        self.final_loss = float("inf")

    def _walks(self, graph: Graph, rng: np.random.Generator):
        starts = np.tile(graph.vertices(), self.walks_per_vertex)
        rng.shuffle(starts)
        return random_walks(graph, starts, self.walk_length, rng)

    def fit(self, graph: Graph) -> "DeepWalk":
        rng = make_rng(self.seed)
        pairs = walk_context_pairs(self._walks(graph, rng), self.window)
        if self.backend == "kv":
            return self._fit_kv(graph, rng, pairs)
        center = Embedding(graph.n_vertices, self.dim, rng)
        context = Embedding(graph.n_vertices, self.dim, rng)
        optimizer = default_optimizer(center.parameters() + context.parameters(), self.lr)
        self.final_loss = train_skipgram(
            pairs,
            center_fn=center,
            context_fn=context,
            optimizer=optimizer,
            negative_sampler=DegreeBiasedNegativeSampler(graph),
            rng=rng,
            epochs=self.epochs,
            neg_num=self.neg_num,
        )
        self._embeddings = unit_rows(center.table.numpy())
        return self

    def _fit_kv(
        self,
        graph: Graph,
        rng: np.random.Generator,
        pairs: tuple[np.ndarray, np.ndarray],
    ) -> "DeepWalk":
        """Train against parameter-server tables on a simulated cluster.

        Tables are initialized by the same ``embedding_init`` draws, in the
        same order, as the dense path's :class:`Embedding` layers, so the
        two backends start from identical values.
        """
        from repro.storage.cluster import make_store
        from repro.storage.embedding import EmbeddingKVStore

        n = graph.n_vertices
        store = make_store(graph, self.kv_workers, seed=self.seed)
        center = EmbeddingKVStore(
            store, n, self.dim, name=f"{self.name}.center",
            optimizer="adam", lr=self.lr,
            staleness=self.kv_staleness,
            init=embedding_init((n, self.dim), rng),
        )
        context = EmbeddingKVStore(
            store, n, self.dim, name=f"{self.name}.context",
            optimizer="adam", lr=self.lr,
            staleness=self.kv_staleness,
            init=embedding_init((n, self.dim), rng),
        )
        self.final_loss = train_skipgram_kv(
            pairs,
            kv_center=center,
            kv_context=context,
            negative_sampler=DegreeBiasedNegativeSampler(graph),
            rng=rng,
            epochs=self.epochs,
            neg_num=self.neg_num,
        )
        self.kv_store = store
        self._embeddings = unit_rows(center.materialize())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
