"""MNE (Zhang et al., IJCAI 2018): scalable multiplex network embedding.

One *common* embedding ``b_v`` shared by all edge types plus a low-dimensional
per-type additional embedding ``u_v^r`` lifted by a per-type transformation
``X^r``: the type-r view of a vertex is ``b_v + w * X^r^T u_v^r``. All parts
are learned jointly with skip-gram over per-layer walks — the direct
ancestor of GATNE's embedding decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.nn.init import xavier_uniform
from repro.nn.layers import Embedding
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.randomwalk import random_walks, walk_context_pairs
from repro.utils.rng import make_rng


class MNE(EmbeddingModel):
    """Common + per-edge-type additional embeddings."""

    name = "mne"

    def __init__(
        self,
        dim: int = 64,
        extra_dim: int = 8,
        mix_weight: float = 0.5,
        walks_per_vertex: int = 3,
        walk_length: int = 8,
        window: int = 3,
        epochs: int = 2,
        batch_size: int = 1024,
        neg_num: int = 5,
        lr: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.extra_dim = extra_dim
        self.mix_weight = mix_weight
        self.walks_per_vertex = walks_per_vertex
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None
        self._type_embeddings: dict[str, np.ndarray] = {}

    def fit(self, graph: AttributedHeterogeneousGraph) -> "MNE":
        if not isinstance(graph, AttributedHeterogeneousGraph):
            raise TrainingError("MNE needs a multiplex (AHG) input")
        rng = make_rng(self.seed)
        n = graph.n_vertices
        layers = [
            (t, graph.edge_type_subgraph(t)) for t in graph.edge_type_names
        ]
        layers = [(t, g) for t, g in layers if g.n_edges > 0]
        if not layers:
            raise TrainingError("no non-empty layers")

        common = Embedding(n, self.dim, rng)
        context = Embedding(n, self.dim, rng)
        extras = {t: Embedding(n, self.extra_dim, rng) for t, _ in layers}
        lifts = {
            t: Tensor(
                xavier_uniform((self.extra_dim, self.dim), rng),
                requires_grad=True,
                name=f"X_{t}",
            )
            for t, _ in layers
        }
        params = common.parameters() + context.parameters()
        for t, _ in layers:
            params += extras[t].parameters() + [lifts[t]]
        optimizer = Adam(params, lr=self.lr)
        neg_sampler = DegreeBiasedNegativeSampler(graph)

        def center_fn(t: str, ids: np.ndarray) -> Tensor:
            return common(ids) + (extras[t](ids) @ lifts[t]) * self.mix_weight

        for _ in range(self.epochs):
            for t, g in layers:
                starts = np.tile(g.vertices(), self.walks_per_vertex)
                rng.shuffle(starts)
                centers, contexts = walk_context_pairs(
                    random_walks(g, starts, self.walk_length, rng), self.window
                )
                if centers.size == 0:
                    continue
                perm = rng.permutation(centers.size)
                for lo in range(0, centers.size, self.batch_size):
                    idx = perm[lo : lo + self.batch_size]
                    c_ids, u_ids = centers[idx], contexts[idx]
                    negs = neg_sampler.sample(c_ids, self.neg_num, rng).reshape(-1)
                    optimizer.zero_grad()
                    loss = skipgram_negative_loss(
                        center_fn(t, c_ids), context(u_ids), context(negs)
                    )
                    loss.backward()
                    optimizer.step()

        self._type_embeddings = {
            t: unit_rows(
                common.table.numpy()
                + self.mix_weight * (extras[t].table.numpy() @ lifts[t].numpy())
            )
            for t, _ in layers
        }
        # Overall embedding: mean of the per-type views.
        self._embeddings = unit_rows(
            np.mean(np.stack(list(self._type_embeddings.values())), axis=0)
        )
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings

    def type_embeddings(self, edge_type: str) -> np.ndarray:
        """The per-edge-type view of the embeddings."""
        self._require_fitted()
        try:
            return self._type_embeddings[edge_type]
        except KeyError:
            raise TrainingError(f"no embeddings for edge type {edge_type!r}") from None
