"""Autoencoder recommendation baselines for Table 9: DAE and β-VAE.

Both operate on users' binary item-interaction rows:

* :class:`DAE` (Vincent et al., ICML 2008) — denoising autoencoder: corrupt
  the interaction row, reconstruct it; the bottleneck is the user embedding
  and the decoder weights act as item embeddings;
* :class:`BetaVAE` (the multinomial/collaborative VAE of Liang et al. 2018,
  with the β* KL weight) — variational encoder with the β-weighted KL.

Both expose ``user_embeddings``/``item_embeddings`` for the shared
hit-recall evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.nn.loss import bce_with_logits, gaussian_kl
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import make_rng


class _InteractionModel:
    """Shared scaffolding over the (n_users, n_items) interaction matrix."""

    def __init__(
        self,
        dim: int = 64,
        hidden: int = 128,
        epochs: int = 30,
        batch_size: int = 128,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._user_emb: np.ndarray | None = None
        self._item_emb: np.ndarray | None = None

    def user_embeddings(self) -> np.ndarray:
        """Per-user bottleneck vectors (rows align with interaction rows)."""
        if self._user_emb is None:
            raise TrainingError(f"{type(self).__name__} is not fitted yet")
        return self._user_emb

    def item_embeddings(self) -> np.ndarray:
        """Per-item decoder columns, usable as item vectors for scoring."""
        if self._item_emb is None:
            raise TrainingError(f"{type(self).__name__} is not fitted yet")
        return self._item_emb

    @staticmethod
    def interactions_from(
        user_items: "dict[int, set[int]]", n_users: int, n_items: int
    ) -> np.ndarray:
        """Binary matrix from per-user item sets."""
        x = np.zeros((n_users, n_items), dtype=np.float64)
        for u, items in user_items.items():
            for i in items:
                x[u, i] = 1.0
        return x


class DAE(_InteractionModel):
    """Denoising autoencoder over interaction rows."""

    name = "dae"

    def __init__(self, corruption: float = 0.3, **kwargs: object) -> None:
        super().__init__(**kwargs)
        if not 0.0 <= corruption < 1.0:
            raise TrainingError("corruption must be in [0, 1)")
        self.corruption = corruption

    def fit(self, interactions: np.ndarray) -> "DAE":
        rng = make_rng(self.seed)
        x = np.asarray(interactions, dtype=np.float64)
        n_users, n_items = x.shape
        enc1 = Dense(n_items, self.hidden, rng, "tanh")
        enc2 = Dense(self.hidden, self.dim, rng)
        dec = Dense(self.dim, n_items, rng)
        params = enc1.parameters() + enc2.parameters() + dec.parameters()
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            perm = rng.permutation(n_users)
            for lo in range(0, n_users, self.batch_size):
                rows = x[perm[lo : lo + self.batch_size]]
                noisy = rows * (rng.random(rows.shape) >= self.corruption)
                optimizer.zero_grad()
                z = enc2(enc1(Tensor(noisy)))
                logits = dec(z)
                loss = bce_with_logits(logits, rows)
                loss.backward()
                optimizer.step()
        self._user_emb = enc2(enc1(Tensor(x))).numpy()
        self._item_emb = dec.weight.numpy().T  # (n_items, dim)
        return self


class BetaVAE(_InteractionModel):
    """β-weighted variational autoencoder over interaction rows."""

    name = "beta-vae"

    def __init__(self, beta: float = 0.2, **kwargs: object) -> None:
        super().__init__(**kwargs)
        if beta < 0:
            raise TrainingError("beta must be non-negative")
        self.beta = beta

    def fit(self, interactions: np.ndarray) -> "BetaVAE":
        rng = make_rng(self.seed)
        x = np.asarray(interactions, dtype=np.float64)
        n_users, n_items = x.shape
        enc = Dense(n_items, self.hidden, rng, "tanh")
        mu_layer = Dense(self.hidden, self.dim, rng)
        lv_layer = Dense(self.hidden, self.dim, rng)
        dec = Dense(self.dim, n_items, rng)
        params = (
            enc.parameters()
            + mu_layer.parameters()
            + lv_layer.parameters()
            + dec.parameters()
        )
        optimizer = Adam(params, lr=self.lr)
        for _ in range(self.epochs):
            perm = rng.permutation(n_users)
            for lo in range(0, n_users, self.batch_size):
                rows = x[perm[lo : lo + self.batch_size]]
                optimizer.zero_grad()
                hidden = enc(Tensor(rows))
                mu = mu_layer(hidden)
                logvar = lv_layer(hidden)
                eps = rng.standard_normal(mu.shape)
                z = mu + F.exp(logvar * 0.5) * Tensor(eps)
                loss = bce_with_logits(dec(z), rows) + gaussian_kl(mu, logvar) * self.beta
                loss.backward()
                optimizer.step()
        self._user_emb = mu_layer(enc(Tensor(x))).numpy()
        self._item_emb = dec.weight.numpy().T
        return self
