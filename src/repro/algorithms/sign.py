"""SIGN: precomputed neighborhood aggregates + MLP head (Frasca et al. 2020).

The opposite trade to per-step sampling: instead of drawing a k-hop block
every minibatch, SIGN runs ``r`` rounds of row-normalized sparse
matrix-multiplication **offline** — ``Z_r = (D^-1 A)^r X`` over the
:class:`~repro.sampling.kernels.CsrAdjacency`, computed once with the
ragged :func:`~repro.nn.functional.segment_mean_np` kernel — and trains a
plain MLP on the concatenated ``[X, Z_1, ..., Z_r]`` operator features.
Per training step the model touches only ``batch`` rows of a dense
matrix: no sampling, no gather-heavy message passing, at the price of a
fixed (non-learned, non-sampled) neighborhood aggregation.

Fits the AliGraph plugin story as the degenerate SAMPLE = "all neighbors,
averaged offline" configuration: a useful third point for the
full-graph vs minibatch-block cost comparison in
``benchmarks/bench_gnn_minibatch.py``.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.graph import Graph
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.kernels import CsrAdjacency
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.traverse import EdgeTraverseSampler
from repro.utils.rng import make_rng


def propagate_sign(features: np.ndarray, csr: CsrAdjacency, hops: int) -> np.ndarray:
    """Offline SIGN operator features ``[X, AX, ..., A^r X]`` (row concat).

    ``A`` is the row-normalized adjacency ``D^-1 A``; one hop is a single
    ragged segment-mean over the CSR — ``mean(X[indices], indptr)`` — so
    zero-degree rows propagate zeros. Returns ``(n, (hops+1)*d)``.
    """
    if hops < 1:
        raise TrainingError(f"SIGN hops must be >= 1, got {hops}")
    operators = [features]
    cur = features
    for _ in range(hops):
        cur = F.segment_mean_np(cur[csr.indices], csr.indptr)
        operators.append(cur)
    return np.concatenate(operators, axis=1)


class SIGN(EmbeddingModel):
    """Scalable Inception-like GNN: offline SpMM operators + MLP head.

    Parameters mirror :class:`~repro.algorithms.framework.GNNFramework`
    where they overlap; ``hops`` plays the role of ``kmax`` (rounds of
    offline propagation). The unsupervised objective and negative sampler
    are identical to the framework's, so link-prediction quality is
    directly comparable.
    """

    name = "sign"

    def __init__(
        self,
        dim: int = 64,
        hops: int = 2,
        hidden_dim: int | None = None,
        epochs: int = 5,
        batch_size: int = 512,
        neg_num: int = 5,
        lr: float = 0.01,
        max_steps_per_epoch: int = 40,
        seed: int = 0,
        profiler: "object | None" = None,
    ) -> None:
        if hops < 1:
            raise TrainingError(f"hops must be >= 1, got {hops}")
        self.dim = dim
        self.hops = hops
        self.hidden_dim = hidden_dim or dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.lr = lr
        self.max_steps_per_epoch = max_steps_per_epoch
        self.seed = seed
        self.profiler = profiler
        self._embeddings: np.ndarray | None = None
        self.loss_history: list[float] = []

    def _features(self, graph: Graph) -> np.ndarray:
        feats = getattr(graph, "vertex_features", None)
        if feats is not None:
            out = np.asarray(feats, dtype=np.float64)
            mu = out.mean(axis=0, keepdims=True)
            sd = out.std(axis=0, keepdims=True) + 1e-9
            return (out - mu) / sd
        rng = make_rng(self.seed)
        deg = np.log1p(graph.out_degrees()).reshape(-1, 1)
        rand = rng.normal(size=(graph.n_vertices, min(self.dim, 16)))
        return np.concatenate([deg, rand], axis=1)

    def _head(self, z: Tensor) -> Tensor:
        return F.l2_normalize(self._out(F.relu(self._hidden(z))))

    def fit(self, graph: Graph) -> "SIGN":
        rng = make_rng(self.seed)
        prof = self.profiler
        stage = prof.stage if prof is not None else (lambda name: nullcontext())
        # Offline phase: the whole SAMPLE/AGGREGATE pipeline collapses into
        # r ragged segment-means, paid once (bucketed as "sample" — it is
        # the neighborhood-collection cost of this model).
        with stage("sample"):
            features = self._features(graph)
            csr = CsrAdjacency.from_graph(graph)
            z_all = Tensor(propagate_sign(features, csr, self.hops))
        self._hidden = Dense(z_all.shape[1], self.hidden_dim, rng)
        self._out = Dense(self.hidden_dim, self.dim, rng)
        optimizer = Adam(self._hidden.parameters() + self._out.parameters(), lr=self.lr)
        edge_sampler = EdgeTraverseSampler(graph)
        neg_sampler = DegreeBiasedNegativeSampler(graph)

        steps = min(self.max_steps_per_epoch, max(1, graph.n_edges // self.batch_size))
        self.loss_history = []
        for _ in range(self.epochs):
            epoch_losses = []
            for _ in range(steps):
                with prof.step() if prof is not None else nullcontext():
                    with stage("sample"):
                        src, dst = edge_sampler.sample(self.batch_size, rng)
                        negs = neg_sampler.sample(src, self.neg_num, rng).reshape(-1)
                        seeds = np.unique(np.concatenate([src, dst, negs]))
                        pos = np.searchsorted(seeds, np.concatenate([src, dst, negs]))
                    optimizer.zero_grad()
                    with stage("materialize"):
                        z = z_all.gather_rows(seeds)
                    with stage("combine"):
                        h = self._head(z)
                    b = src.size
                    loss = skipgram_negative_loss(
                        h.gather_rows(pos[:b]),
                        h.gather_rows(pos[b : 2 * b]),
                        h.gather_rows(pos[2 * b :]),
                    )
                    with stage("backward"):
                        loss.backward()
                    with stage("optimizer"):
                        optimizer.step()
                epoch_losses.append(loss.item())
            self.loss_history.append(float(np.mean(epoch_losses)))

        self._embeddings = unit_rows(self._head(z_all).numpy())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
