"""HEP and AHEP (paper §4.2, Zheng et al. [56]).

HEP — heterogeneous embedding propagation — generates embeddings
iteratively: in each hop, for vertex ``v`` and each node type ``c``, the
type-c neighbors propagate their embeddings to reconstruct ``h'_{v,c}``; the
embeddings are trained so each vertex agrees with its per-type
reconstructions (the EP loss) while a supervised link loss shapes the space.
The total objective is the paper's Eq. 2::

    L = L_SL + alpha * L_EP + beta * Omega(Theta)

AHEP is HEP with *adaptive sampling*: instead of the whole neighbor set,
each type's neighbors are sampled from a variance-minimizing distribution
(probability proportional to neighbor degree — the importance weight whose
inclusion-probability rescaling keeps the reconstruction unbiased). The
experimental contract (Figure 10 / Table 7): AHEP is 2–3× faster and much
lighter per batch, at a modest quality cost.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.nn.init import xavier_uniform
from repro.nn.layers import Embedding
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.traverse import EdgeTraverseSampler
from repro.utils.rng import make_rng


def typed_adjacency(
    indptr: np.ndarray,
    indices: np.ndarray,
    vertex_types: np.ndarray,
    n_types: int,
) -> "list[tuple[np.ndarray, np.ndarray]]":
    """Split one CSR adjacency into per-target-type CSRs, order-preserving.

    Masking the flat ``indices`` by target type keeps both the row grouping
    and the in-row neighbor order, so type ``c``'s neighbor list of vertex
    ``v`` is ``t_indices[t_indptr[v]:t_indptr[v+1]]`` — the per-(vertex,
    type) neighbor lists HEP's EP term reads, without any per-vertex loop.
    """
    n = indptr.size - 1
    row_ids = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    out = []
    for c in range(n_types):
        mask = vertex_types[indices] == c
        counts = np.bincount(row_ids[mask], minlength=n)
        t_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        out.append((t_indptr, indices[mask]))
    return out


def hep_neighbor_rows(
    t_indptr: np.ndarray,
    t_indices: np.ndarray,
    vertices: np.ndarray,
    cap: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """HEP's deterministic padded pick, batched: (valid, (n_valid, cap)).

    Per valid vertex (non-empty typed list): the first ``cap`` neighbors,
    cyclically tiled when the list is shorter — one gather via a modular
    column index, id-identical to the old per-vertex ``_pad(typed[:cap])``.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    deg = t_indptr[vertices + 1] - t_indptr[vertices]
    valid = vertices[deg > 0]
    if valid.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros((0, 0), dtype=np.int64)
    take = np.minimum(deg[deg > 0], cap)
    col = np.arange(cap, dtype=np.int64)
    return valid, t_indices[t_indptr[valid][:, None] + col % take[:, None]]


class HEP(EmbeddingModel):
    """Embedding propagation over typed neighborhoods (full neighbor sets).

    ``neighbor_cap`` bounds the per-type neighbor list (hub safety valve) —
    HEP's defining cost is that this cap is large; AHEP shrinks it to a
    handful of *importance-sampled* neighbors.
    """

    name = "hep"
    adaptive_sampling = False

    def __init__(
        self,
        dim: int = 64,
        neighbor_cap: int = 24,
        steps: int = 150,
        batch_size: int = 256,
        neg_num: int = 5,
        alpha: float = 0.5,
        beta: float = 1e-5,
        lr: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.neighbor_cap = neighbor_cap
        self.steps = steps
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.alpha = alpha
        self.beta = beta
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None
        #: peak embedding rows touched in one batch — the memory proxy
        #: Figure 10 reports.
        self.peak_batch_rows = 0

    # ------------------------------------------------------------------ #
    def fit(self, graph: AttributedHeterogeneousGraph) -> "HEP":
        if not isinstance(graph, AttributedHeterogeneousGraph):
            raise TrainingError("HEP/AHEP need an AHG")
        rng = make_rng(self.seed)
        n = graph.n_vertices
        degrees = graph.out_degrees()
        emb = Embedding(n, self.dim, rng)
        n_types = len(graph.vertex_type_names)
        recon = [
            Tensor(xavier_uniform((self.dim, self.dim), rng), requires_grad=True)
            for _ in range(n_types)
        ]
        params = emb.parameters() + recon
        optimizer = Adam(params, lr=self.lr)
        edges = EdgeTraverseSampler(graph)
        negs = DegreeBiasedNegativeSampler(graph)
        # Pre-index neighbors by type for the EP term.
        vertex_types = graph.vertex_types
        self.peak_batch_rows = 0

        from repro.nn import functional as F
        from repro.utils.alias import GroupedAliasTable

        indptr, indices, _ = graph.csr_arrays()
        typed_csr = typed_adjacency(indptr, indices, vertex_types, n_types)
        # AHEP redraw machinery: one grouped alias table per type over the
        # variance-minimizing weights (neighbor degree + 1), built lazily —
        # a whole batch of heavy rows then resamples in one kernel call.
        grouped_alias: "list[GroupedAliasTable | None]" = [None] * n_types

        def typed_neighbor_table(
            vertices: np.ndarray, c: int
        ) -> tuple[np.ndarray, np.ndarray]:
            """(valid vertices, (n_valid, cap) padded neighbor ids) for type c.

            Cost — the gathered row count — is proportional to the cap,
            which is the whole HEP-vs-AHEP trade. One batched cyclic gather
            covers HEP rows and AHEP's small rows (first ``cap`` neighbors,
            tiled when fewer — identical ids to the old per-vertex pad);
            AHEP rows over the cap are overwritten by one grouped
            importance draw (with replacement — standard importance
            sampling) in O(n_heavy * cap).
            """
            t_indptr, t_indices = typed_csr[c]
            cap = self.neighbor_cap
            valid, rows = hep_neighbor_rows(t_indptr, t_indices, vertices, cap)
            if valid.size and self.adaptive_sampling:
                vdeg = t_indptr[valid + 1] - t_indptr[valid]
                heavy = vdeg > cap
                if heavy.any():
                    if grouped_alias[c] is None:
                        grouped_alias[c] = GroupedAliasTable(
                            degrees[t_indices].astype(np.float64) + 1.0, t_indptr
                        )
                    flat = grouped_alias[c].draw_for_groups(valid[heavy], cap, rng)
                    rows[heavy] = t_indices[flat]
            return valid, rows

        for _ in range(self.steps):
            src, dst = edges.sample(self.batch_size, rng)
            neg_ids = negs.sample(src, self.neg_num, rng).reshape(-1)
            optimizer.zero_grad()
            # Supervised link loss (L_SL).
            loss = skipgram_negative_loss(emb(src), emb(dst), emb(neg_ids))
            # Embedding-propagation loss (L_EP) over the batch sources.
            batch_rows = src.size + dst.size + neg_ids.size
            ep_vertices = np.unique(src)
            ep_terms = []
            n_ep = 0
            for c in range(n_types):
                valid, table = typed_neighbor_table(ep_vertices, c)
                if valid.size == 0:
                    continue
                batch_rows += table.size
                gathered = emb(table.reshape(-1))  # (n_valid*cap, d)
                pooled = F.mean_rows_segmented(gathered, self.neighbor_cap)
                h_rec = pooled @ recon[c]  # (n_valid, d)
                diff = emb(valid) - h_rec
                ep_terms.append((diff * diff).sum())
                n_ep += valid.size
            if ep_terms:
                ep_loss = ep_terms[0]
                for term in ep_terms[1:]:
                    ep_loss = ep_loss + term
                loss = loss + ep_loss * (self.alpha / max(n_ep, 1))
            # Regularizer Omega(Theta).
            reg = None
            for w in recon:
                term = (w * w).sum()
                reg = term if reg is None else reg + term
            loss = loss + reg * self.beta
            loss.backward()
            optimizer.step()
            self.peak_batch_rows = max(self.peak_batch_rows, batch_rows)

        self._embeddings = unit_rows(emb.table.numpy())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings


class AHEP(HEP):
    """HEP with adaptive (importance-sampled) typed neighborhoods."""

    name = "ahep"
    adaptive_sampling = True

    def __init__(self, neighbor_cap: int = 6, **kwargs: object) -> None:
        kwargs.setdefault("dim", 64)
        super().__init__(neighbor_cap=neighbor_cap, **kwargs)
