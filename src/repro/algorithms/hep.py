"""HEP and AHEP (paper §4.2, Zheng et al. [56]).

HEP — heterogeneous embedding propagation — generates embeddings
iteratively: in each hop, for vertex ``v`` and each node type ``c``, the
type-c neighbors propagate their embeddings to reconstruct ``h'_{v,c}``; the
embeddings are trained so each vertex agrees with its per-type
reconstructions (the EP loss) while a supervised link loss shapes the space.
The total objective is the paper's Eq. 2::

    L = L_SL + alpha * L_EP + beta * Omega(Theta)

AHEP is HEP with *adaptive sampling*: instead of the whole neighbor set,
each type's neighbors are sampled from a variance-minimizing distribution
(probability proportional to neighbor degree — the importance weight whose
inclusion-probability rescaling keeps the reconstruction unbiased). The
experimental contract (Figure 10 / Table 7): AHEP is 2–3× faster and much
lighter per batch, at a modest quality cost.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.nn.init import xavier_uniform
from repro.nn.layers import Embedding
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.traverse import EdgeTraverseSampler
from repro.utils.rng import make_rng


class HEP(EmbeddingModel):
    """Embedding propagation over typed neighborhoods (full neighbor sets).

    ``neighbor_cap`` bounds the per-type neighbor list (hub safety valve) —
    HEP's defining cost is that this cap is large; AHEP shrinks it to a
    handful of *importance-sampled* neighbors.
    """

    name = "hep"
    adaptive_sampling = False

    def __init__(
        self,
        dim: int = 64,
        neighbor_cap: int = 24,
        steps: int = 150,
        batch_size: int = 256,
        neg_num: int = 5,
        alpha: float = 0.5,
        beta: float = 1e-5,
        lr: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.neighbor_cap = neighbor_cap
        self.steps = steps
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.alpha = alpha
        self.beta = beta
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None
        #: peak embedding rows touched in one batch — the memory proxy
        #: Figure 10 reports.
        self.peak_batch_rows = 0

    # ------------------------------------------------------------------ #
    def _pick_neighbors(
        self,
        nbrs: np.ndarray,
        degrees: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Neighbor subset for one vertex/type; HEP takes (capped) all."""
        if nbrs.size <= self.neighbor_cap:
            return nbrs
        if not self.adaptive_sampling:
            return nbrs[: self.neighbor_cap]
        # AHEP: variance-minimizing importance sampling — probability
        # proportional to neighbor degree (the dominant term of the
        # propagated-norm variance bound).
        w = degrees[nbrs].astype(np.float64) + 1.0
        return nbrs[rng.choice(nbrs.size, size=self.neighbor_cap, replace=False, p=w / w.sum())]

    def fit(self, graph: AttributedHeterogeneousGraph) -> "HEP":
        if not isinstance(graph, AttributedHeterogeneousGraph):
            raise TrainingError("HEP/AHEP need an AHG")
        rng = make_rng(self.seed)
        n = graph.n_vertices
        degrees = graph.out_degrees()
        emb = Embedding(n, self.dim, rng)
        n_types = len(graph.vertex_type_names)
        recon = [
            Tensor(xavier_uniform((self.dim, self.dim), rng), requires_grad=True)
            for _ in range(n_types)
        ]
        params = emb.parameters() + recon
        optimizer = Adam(params, lr=self.lr)
        edges = EdgeTraverseSampler(graph)
        negs = DegreeBiasedNegativeSampler(graph)
        # Pre-index neighbors by type for the EP term.
        vertex_types = graph.vertex_types
        self.peak_batch_rows = 0

        from repro.nn import functional as F
        from repro.utils.alias import AliasTable

        # Per-(vertex, type) neighbor lists — computed once. HEP's padded
        # pick is deterministic, so it is cached outright; AHEP caches an
        # alias table over the variance-minimizing weights and redraws
        # ``neighbor_cap`` samples (with replacement — standard importance
        # sampling) each step in O(cap).
        typed_cache: dict[tuple[int, int], np.ndarray] = {}
        alias_cache: dict[tuple[int, int], "AliasTable | None"] = {}
        hep_row_cache: dict[tuple[int, int], np.ndarray] = {}

        def _typed(v: int, c: int) -> np.ndarray:
            key = (v, c)
            if key not in typed_cache:
                nbrs = graph.out_neighbors(v)
                typed_cache[key] = nbrs[vertex_types[nbrs] == c]
            return typed_cache[key]

        def _pad(picked: np.ndarray) -> np.ndarray:
            if picked.size < self.neighbor_cap:
                reps = int(np.ceil(self.neighbor_cap / picked.size))
                picked = np.tile(picked, reps)
            return picked[: self.neighbor_cap]

        def _row(v: int, c: int) -> "np.ndarray | None":
            typed = _typed(v, c)
            if typed.size == 0:
                return None
            if not self.adaptive_sampling:
                key = (v, c)
                if key not in hep_row_cache:
                    hep_row_cache[key] = _pad(typed[: self.neighbor_cap])
                return hep_row_cache[key]
            if typed.size <= self.neighbor_cap:
                return _pad(typed)
            key = (v, c)
            table = alias_cache.get(key)
            if table is None:
                table = AliasTable(degrees[typed].astype(np.float64) + 1.0)
                alias_cache[key] = table
            return typed[table.draw_batch(rng, self.neighbor_cap)]

        def typed_neighbor_table(
            vertices: np.ndarray, c: int
        ) -> tuple[np.ndarray, np.ndarray]:
            """(valid vertices, (n_valid, cap) padded neighbor ids) for type c.

            Cost — the gathered row count — is proportional to the cap,
            which is the whole HEP-vs-AHEP trade.
            """
            rows = []
            valid = []
            for v in vertices:
                picked = _row(int(v), c)
                if picked is None:
                    continue
                rows.append(picked)
                valid.append(int(v))
            if not valid:
                return np.zeros(0, dtype=np.int64), np.zeros((0, 0), dtype=np.int64)
            return np.asarray(valid, dtype=np.int64), np.stack(rows)

        for _ in range(self.steps):
            src, dst = edges.sample(self.batch_size, rng)
            neg_ids = negs.sample(src, self.neg_num, rng).reshape(-1)
            optimizer.zero_grad()
            # Supervised link loss (L_SL).
            loss = skipgram_negative_loss(emb(src), emb(dst), emb(neg_ids))
            # Embedding-propagation loss (L_EP) over the batch sources.
            batch_rows = src.size + dst.size + neg_ids.size
            ep_vertices = np.unique(src)
            ep_terms = []
            n_ep = 0
            for c in range(n_types):
                valid, table = typed_neighbor_table(ep_vertices, c)
                if valid.size == 0:
                    continue
                batch_rows += table.size
                gathered = emb(table.reshape(-1))  # (n_valid*cap, d)
                pooled = F.mean_rows_segmented(gathered, self.neighbor_cap)
                h_rec = pooled @ recon[c]  # (n_valid, d)
                diff = emb(valid) - h_rec
                ep_terms.append((diff * diff).sum())
                n_ep += valid.size
            if ep_terms:
                ep_loss = ep_terms[0]
                for term in ep_terms[1:]:
                    ep_loss = ep_loss + term
                loss = loss + ep_loss * (self.alpha / max(n_ep, 1))
            # Regularizer Omega(Theta).
            reg = None
            for w in recon:
                term = (w * w).sum()
                reg = term if reg is None else reg + term
            loss = loss + reg * self.beta
            loss.backward()
            optimizer.step()
            self.peak_batch_rows = max(self.peak_batch_rows, batch_rows)

        self._embeddings = unit_rows(emb.table.numpy())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings


class AHEP(HEP):
    """HEP with adaptive (importance-sampled) typed neighborhoods."""

    name = "ahep"
    adaptive_sampling = True

    def __init__(self, neighbor_cap: int = 6, **kwargs: object) -> None:
        kwargs.setdefault("dim", 64)
        super().__init__(neighbor_cap=neighbor_cap, **kwargs)
