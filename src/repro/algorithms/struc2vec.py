"""Struc2Vec (Ribeiro et al., KDD 2017) — structural-identity embeddings.

Vertices with similar *roles* (degree profiles of their neighborhoods)
embed close regardless of proximity. This compact implementation builds the
k-hop degree-sequence signature of every vertex, forms a similarity-weighted
auxiliary graph over structural neighbors, and runs skip-gram on walks in
that auxiliary graph — the essential struc2vec pipeline with the multilayer
context graph collapsed to its strongest layer.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    EmbeddingModel,
    default_optimizer,
    train_skipgram,
    unit_rows,
)
from repro.graph.graph import Graph
from repro.nn.layers import Embedding
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.randomwalk import random_walks, walk_context_pairs
from repro.utils.rng import make_rng


def _structural_signature(graph: Graph, hops: int) -> np.ndarray:
    """Per-vertex signature: sorted quantiles of the h-hop degree sequence."""
    degrees = graph.out_degrees().astype(np.float64)
    quantiles = np.linspace(0.0, 1.0, 5)
    signatures = []
    for v in range(graph.n_vertices):
        frontier = {v}
        seen = {v}
        rows = [np.quantile([degrees[v]], quantiles)]
        for _ in range(hops):
            nxt: set[int] = set()
            for u in frontier:
                nxt.update(int(w) for w in graph.out_neighbors(u))
            frontier = nxt - seen
            seen |= nxt
            if frontier:
                rows.append(np.quantile(degrees[list(frontier)], quantiles))
            else:
                rows.append(np.zeros_like(quantiles))
        signatures.append(np.concatenate(rows))
    return np.asarray(signatures)


class Struc2Vec(EmbeddingModel):
    """Structural-role embeddings via an auxiliary similarity graph."""

    name = "struc2vec"

    def __init__(
        self,
        dim: int = 64,
        hops: int = 2,
        knn: int = 10,
        walks_per_vertex: int = 4,
        walk_length: int = 10,
        window: int = 3,
        epochs: int = 2,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.hops = hops
        self.knn = knn
        self.walks_per_vertex = walks_per_vertex
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.seed = seed
        self._embeddings: np.ndarray | None = None

    def fit(self, graph: Graph) -> "Struc2Vec":
        rng = make_rng(self.seed)
        sig = _structural_signature(graph, self.hops)
        sig = (sig - sig.mean(axis=0)) / (sig.std(axis=0) + 1e-9)
        n = graph.n_vertices
        k = min(self.knn, n - 1)
        # kNN in signature space defines the structural context graph.
        src_list, dst_list, w_list = [], [], []
        for v in range(n):
            dist = np.linalg.norm(sig - sig[v], axis=1)
            dist[v] = np.inf
            nearest = np.argpartition(dist, k)[:k]
            for u in nearest:
                src_list.append(v)
                dst_list.append(int(u))
                w_list.append(float(np.exp(-dist[u])))
        aux = Graph(
            n,
            np.asarray(src_list, dtype=np.int64),
            np.asarray(dst_list, dtype=np.int64),
            weights=np.maximum(np.asarray(w_list), 1e-9),
            directed=True,
        )
        starts = np.tile(aux.vertices(), self.walks_per_vertex)
        rng.shuffle(starts)
        pairs = walk_context_pairs(
            random_walks(aux, starts, self.walk_length, rng, weighted=True),
            self.window,
        )
        center = Embedding(n, self.dim, rng)
        context = Embedding(n, self.dim, rng)
        optimizer = default_optimizer(center.parameters() + context.parameters())
        train_skipgram(
            pairs,
            center_fn=center,
            context_fn=context,
            optimizer=optimizer,
            negative_sampler=DegreeBiasedNegativeSampler(aux),
            rng=rng,
            epochs=self.epochs,
        )
        self._embeddings = unit_rows(center.table.numpy())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
