"""Evolving GNN (paper §4.2): embeddings for dynamic graphs.

The model learns vertex representations over a snapshot sequence
G(1), ..., G(T) in an *interleaved* manner: per-snapshot GraphSAGE
embeddings capture structure, while a VAE + RNN head consumes each vertex's
*dynamics trajectory* — its in/out-degree levels and deltas across
snapshots — and is trained to predict the next snapshot's changes ("we
apply a method to predict the normal and burst information on the graph
G(t+1) by using Variational Autoencoder and RNN"). Normal evolution
produces small, structure-consistent deltas; burst links produce anomalous
jumps, so the dynamics state separates them.

The final vertex representation concatenates the last snapshot's structural
embedding, the RNN dynamics state, the VAE posterior mean and the latest
raw change features (levels + deltas). It is deliberately *not*
row-normalized: dynamics magnitude is the burst signal.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.algorithms.graphsage import GraphSAGE
from repro.errors import TrainingError
from repro.graph.dynamic import DynamicGraph
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.nn.loss import gaussian_kl, mse
from repro.nn.optim import Adam
from repro.nn.rnn import GRUCell
from repro.nn.tensor import Tensor
from repro.utils.rng import make_rng


def _dynamics_features(dynamic: DynamicGraph) -> "list[np.ndarray]":
    """Per-snapshot (n, 4) change features: degree levels and deltas."""
    feats = []
    prev_in = prev_out = None
    for snap in dynamic.snapshots:
        in_deg = np.log1p(snap.in_degrees().astype(np.float64))
        out_deg = np.log1p(snap.out_degrees().astype(np.float64))
        d_in = in_deg - prev_in if prev_in is not None else np.zeros_like(in_deg)
        d_out = out_deg - prev_out if prev_out is not None else np.zeros_like(out_deg)
        x = np.stack([in_deg, out_deg, d_in, d_out], axis=1)
        feats.append(x)
        prev_in, prev_out = in_deg, out_deg
    # Standardize feature-wise over all snapshots.
    stacked = np.concatenate(feats, axis=0)
    mu = stacked.mean(axis=0, keepdims=True)
    sd = stacked.std(axis=0, keepdims=True) + 1e-9
    return [(x - mu) / sd for x in feats]


class EvolvingGNN(EmbeddingModel):
    """GraphSAGE-per-snapshot + VAE/RNN dynamics head."""

    name = "evolving-gnn"

    def __init__(
        self,
        dim: int = 48,
        dynamics_dim: int = 16,
        sage_epochs: int = 3,
        head_epochs: int = 60,
        lr: float = 0.01,
        kl_weight: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.dynamics_dim = dynamics_dim
        self.sage_epochs = sage_epochs
        self.head_epochs = head_epochs
        self.lr = lr
        self.kl_weight = kl_weight
        self.seed = seed
        self._embeddings: np.ndarray | None = None
        self.snapshot_embeddings: list[np.ndarray] = []

    def fit(self, dynamic: DynamicGraph) -> "EvolvingGNN":
        if not isinstance(dynamic, DynamicGraph):
            raise TrainingError("EvolvingGNN consumes a DynamicGraph")
        rng = make_rng(self.seed)
        n = dynamic.n_vertices

        # Per-snapshot structural embeddings (the GraphSAGE integration).
        self.snapshot_embeddings = []
        for t, snap in enumerate(dynamic.snapshots):
            if snap.n_edges == 0:
                self.snapshot_embeddings.append(np.zeros((n, self.dim)))
                continue
            sage = GraphSAGE(
                dim=self.dim,
                epochs=self.sage_epochs,
                max_steps_per_epoch=15,
                seed=self.seed + t,
            )
            self.snapshot_embeddings.append(sage.fit(snap).embeddings())

        # Dynamics branch: RNN over change-feature trajectories; VAE trained
        # to predict the *next* snapshot's change features.
        dyn_feats = _dynamics_features(dynamic)
        f_dim = dyn_feats[0].shape[1]
        gru = GRUCell(f_dim, self.dynamics_dim, rng)
        enc_mu = Dense(self.dynamics_dim, self.dynamics_dim, rng)
        enc_lv = Dense(self.dynamics_dim, self.dynamics_dim, rng)
        dec = Dense(self.dynamics_dim, f_dim, rng)
        params = (
            gru.parameters()
            + enc_mu.parameters()
            + enc_lv.parameters()
            + dec.parameters()
        )
        optimizer = Adam(params, lr=self.lr)

        for _ in range(self.head_epochs):
            optimizer.zero_grad()
            h = gru.init_state(n)
            loss = None
            for t in range(len(dyn_feats) - 1):
                h = gru(Tensor(dyn_feats[t]), h)
                mu = enc_mu(h)
                logvar = enc_lv(h)
                eps = rng.standard_normal(mu.shape)
                z = mu + F.exp(logvar * 0.5) * Tensor(eps)  # reparameterization
                recon = mse(dec(z), dyn_feats[t + 1])
                kl = gaussian_kl(mu, logvar)
                term = recon + kl * self.kl_weight
                loss = term if loss is None else loss + term
            assert loss is not None
            loss.backward()
            optimizer.step()

        # Final state after consuming the whole trajectory.
        h = gru.init_state(n)
        for t in range(len(dyn_feats)):
            h = gru(Tensor(dyn_feats[t]), h)
        mu = enc_mu(h).numpy()
        self._embeddings = np.concatenate(
            [
                unit_rows(self.snapshot_embeddings[-1]),
                h.numpy(),
                mu,
                dyn_feats[-1],  # latest raw change features
            ],
            axis=1,
        )
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
