"""GATNE (paper §4.2): General Attributed Multiplex HeTerogeneous Network
Embedding.

Per edge type ``c``, the embedding of vertex ``v`` is Eq. 3::

    h_{v,c} = b_v + alpha_c * M_c^T g_v a_c + beta_c * D^T x_v

— the sum of (1) the *general* embedding ``b_v`` capturing base structure,
(2) the *specific* part: the vertex's ``t`` meta-specific (edge) embeddings
``g_{v,t'}`` mixed by self-attention coefficients ``a_c`` [36] and lifted by
the trainable ``M_c``, and (3) the *attribute* embedding ``D^T x_v``.
Training is random-walk skip-gram with negative sampling per edge-type
layer (Eq. 4); the final embedding concatenates ``h_{v,c}`` over edge types.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.nn import functional as F
from repro.nn.init import xavier_uniform
from repro.nn.layers import Embedding
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.randomwalk import random_walks, walk_context_pairs
from repro.utils.rng import make_rng


class GATNE(EmbeddingModel):
    """General + specific (attention-mixed) + attribute embeddings."""

    name = "gatne"

    def __init__(
        self,
        dim: int = 64,
        edge_dim: int = 8,
        attn_dim: int = 8,
        alpha: float = 1.0,
        beta: float = 1.0,
        walks_per_vertex: int = 3,
        walk_length: int = 8,
        window: int = 3,
        epochs: int = 2,
        batch_size: int = 512,
        neg_num: int = 5,
        lr: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.edge_dim = edge_dim
        self.attn_dim = attn_dim
        self.alpha = alpha
        self.beta = beta
        self.walks_per_vertex = walks_per_vertex
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None
        self._type_embeddings: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def _build(self, graph: AttributedHeterogeneousGraph, rng: np.random.Generator):
        n = graph.n_vertices
        self._etypes = [
            t for t in graph.edge_type_names
            if graph.edge_type_subgraph(t).n_edges > 0
        ]
        t_count = len(self._etypes)
        if t_count == 0:
            raise TrainingError("GATNE needs at least one non-empty edge type")
        self._base = Embedding(n, self.dim, rng)
        self._context = Embedding(n, self.dim, rng)
        # One meta-specific (edge) embedding table per edge type.
        self._edge_embs = [Embedding(n, self.edge_dim, rng) for _ in range(t_count)]
        # Per-type attention (W1, w2) and lift M_c.
        self._attn_w1 = [
            Tensor(xavier_uniform((self.edge_dim, self.attn_dim), rng), requires_grad=True)
            for _ in range(t_count)
        ]
        self._attn_w2 = [
            Tensor(xavier_uniform((self.attn_dim,), rng), requires_grad=True)
            for _ in range(t_count)
        ]
        self._lift = [
            Tensor(xavier_uniform((self.edge_dim, self.dim), rng), requires_grad=True)
            for _ in range(t_count)
        ]
        feats = getattr(graph, "vertex_features", None)
        if feats is not None:
            x = np.asarray(feats, dtype=np.float64)
            self._features = (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)
            self._attr_proj = Tensor(
                xavier_uniform((self._features.shape[1], self.dim), rng),
                requires_grad=True,
            )
        else:
            self._features = None
            self._attr_proj = None

    def _parameters(self):
        params = self._base.parameters() + self._context.parameters()
        for e in self._edge_embs:
            params += e.parameters()
        params += self._attn_w1 + self._attn_w2 + self._lift
        if self._attr_proj is not None:
            params.append(self._attr_proj)
        return params

    def _embed(self, ids: np.ndarray, type_idx: int) -> Tensor:
        """h_{v,c} of Eq. 3 for a batch of vertex ids."""
        b = ids.size
        t_count = len(self._etypes)
        base = self._base(ids)
        # Stack meta-specific embeddings: rows grouped per vertex.
        stacked_rows = []
        for e in self._edge_embs:
            stacked_rows.append(e(ids))  # (b, s) each
        # Attention scores per vertex over the t tables.
        u_flat = F.concat(stacked_rows, axis=0)  # (t*b, s) grouped by table
        hidden = F.tanh(u_flat @ self._attn_w1[type_idx])  # (t*b, a)
        scores = hidden @ self._attn_w2[type_idx]  # (t*b,)
        scores = scores.reshape(t_count, b).T  # (b, t)
        weights = F.softmax(scores, axis=-1)  # (b, t)
        mixed = None
        for j, u in enumerate(stacked_rows):
            onehot = np.zeros((1, t_count))
            onehot[0, j] = 1.0
            w_col = (weights * onehot).sum(axis=1, keepdims=True)  # (b, 1)
            part = u * w_col
            mixed = part if mixed is None else mixed + part
        specific = (mixed @ self._lift[type_idx]) * self.alpha
        out = base + specific
        if self._attr_proj is not None:
            attr = Tensor(self._features[ids]) @ self._attr_proj
            out = out + attr * self.beta
        return out

    def fit(self, graph: AttributedHeterogeneousGraph) -> "GATNE":
        if not isinstance(graph, AttributedHeterogeneousGraph):
            raise TrainingError("GATNE needs an AHG")
        rng = make_rng(self.seed)
        self._build(graph, rng)
        optimizer = Adam(self._parameters(), lr=self.lr)
        neg_sampler = DegreeBiasedNegativeSampler(graph)

        for _ in range(self.epochs):
            for ti, etype in enumerate(self._etypes):
                layer = graph.edge_type_subgraph(etype)
                starts = np.tile(layer.vertices(), self.walks_per_vertex)
                rng.shuffle(starts)
                centers, contexts = walk_context_pairs(
                    random_walks(layer, starts, self.walk_length, rng), self.window
                )
                if centers.size == 0:
                    continue
                perm = rng.permutation(centers.size)
                for lo in range(0, centers.size, self.batch_size):
                    idx = perm[lo : lo + self.batch_size]
                    c_ids, u_ids = centers[idx], contexts[idx]
                    negs = neg_sampler.sample(c_ids, self.neg_num, rng).reshape(-1)
                    optimizer.zero_grad()
                    loss = skipgram_negative_loss(
                        self._embed(c_ids, ti),
                        self._context(u_ids),
                        self._context(negs),
                    )
                    loss.backward()
                    optimizer.step()

        all_ids = graph.vertices()
        per_type = []
        for ti, etype in enumerate(self._etypes):
            h = self._embed(all_ids, ti).numpy()
            self._type_embeddings[etype] = unit_rows(h)
            per_type.append(self._type_embeddings[etype])
        # Final embedding: concatenation of h_{v,c} across edge types.
        self._embeddings = unit_rows(np.concatenate(per_type, axis=1))
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings

    def type_embeddings(self, edge_type: str) -> np.ndarray:
        """The edge-type-specific embedding h_{v,c}."""
        self._require_fitted()
        try:
            return self._type_embeddings[edge_type]
        except KeyError:
            raise TrainingError(f"no embeddings for edge type {edge_type!r}") from None
