"""Hierarchical GNN (paper §4.2): layered coarsening in the DiffPool family.

Per layer ``l``: a single-layer GNN embeds ``Z^(l) = GNN(A^(l), X^(l))``; a
pooling GNN + softmax yields the assignment matrix ``S^(l)``; then::

    A^(l+1) = S^(l)T A^(l) S^(l)        X^(l+1) = S^(l)T Z^(l)

The hierarchy lets the model see cluster-level structure that flat GNNs
miss. Vertex embeddings concatenate the flat ``Z^(0)`` with the coarse
features broadcast back down (``S^(0) X^(1)``, etc.), and training uses the
same unsupervised link objective as the rest of the zoo. Dense matrices —
guarded by a size check — since assignments are inherently dense.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.algorithms.gcn import normalized_adjacency
from repro.errors import TrainingError
from repro.graph.graph import Graph
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.traverse import EdgeTraverseSampler
from repro.utils.rng import make_rng


class HierarchicalGNN(EmbeddingModel):
    """Two-level DiffPool-style hierarchical embeddings."""

    name = "hierarchical-gnn"

    def __init__(
        self,
        dim: int = 64,
        n_clusters: int = 64,
        steps: int = 120,
        batch_size: int = 512,
        neg_num: int = 5,
        lr: float = 0.01,
        link_aux_weight: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.n_clusters = n_clusters
        self.steps = steps
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.lr = lr
        self.link_aux_weight = link_aux_weight
        self.seed = seed
        self._embeddings: np.ndarray | None = None

    def _features(self, graph: Graph, rng: np.random.Generator) -> np.ndarray:
        feats = getattr(graph, "vertex_features", None)
        if feats is not None:
            x = np.asarray(feats, dtype=np.float64)
            return (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)
        deg = np.log1p(graph.out_degrees()).reshape(-1, 1)
        return np.concatenate([deg, rng.normal(size=(graph.n_vertices, 15))], axis=1)

    def fit(self, graph: Graph) -> "HierarchicalGNN":
        if graph.n_vertices > 8000:
            raise TrainingError(
                "hierarchical GNN uses dense assignment matrices; "
                "limited to 8000 vertices here"
            )
        rng = make_rng(self.seed)
        x = self._features(graph, rng)
        a_hat = normalized_adjacency(graph)
        half = self.dim // 2
        embed0 = Dense(x.shape[1], half, rng, "relu")
        pool0 = Dense(x.shape[1], self.n_clusters, rng)
        embed1 = Dense(half, half, rng, "relu")
        params = embed0.parameters() + pool0.parameters() + embed1.parameters()
        optimizer = Adam(params, lr=self.lr)
        edges = EdgeTraverseSampler(graph)
        negs = DegreeBiasedNegativeSampler(graph)
        xt = Tensor(x)

        def forward() -> Tensor:
            # Level 0: flat embedding + assignment.
            z0 = F.sparse_matmul(a_hat, embed0(xt))  # (n, half)
            s0 = F.softmax(F.sparse_matmul(a_hat, pool0(xt)), axis=-1)  # (n, C)
            # Coarsen: X1 = S0^T Z0 ; A1 = S0^T A S0 (dense, C x C).
            x1 = s0.T @ z0  # (C, half)
            a1 = s0.T @ F.sparse_matmul(a_hat, s0)  # (C, C), normalized-ish
            # Level 1 GNN on the coarse graph.
            z1 = a1 @ embed1(x1)  # (C, half)
            # Broadcast coarse features back: (n, half).
            up = s0 @ z1
            return F.l2_normalize(F.concat([z0, up], axis=-1))

        for _ in range(self.steps):
            src, dst = edges.sample(self.batch_size, rng)
            neg_ids = negs.sample(src, self.neg_num, rng).reshape(-1)
            optimizer.zero_grad()
            h = forward()
            loss = skipgram_negative_loss(
                h.gather_rows(src), h.gather_rows(dst), h.gather_rows(neg_ids)
            )
            loss.backward()
            optimizer.step()

        self._embeddings = unit_rows(forward().numpy())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
