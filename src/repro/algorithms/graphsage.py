"""GraphSAGE (Hamilton et al., NeurIPS 2017).

The canonical sampled-neighborhood GNN and the paper's running example of a
method built on the framework (§4.1): node-wise uniform SAMPLE, a choice of
AGGREGATE (weighted element-wise mean by default, max-pooling or LSTM
optional) and the concat COMBINE, trained with the unsupervised objective.
Implemented directly as a thin configuration of :class:`GNNFramework`.
"""

from __future__ import annotations

from repro.algorithms.framework import GNNFramework


class GraphSAGE(GNNFramework):
    """Algorithm-1 configuration matching GraphSAGE."""

    name = "graphsage"

    def __init__(
        self,
        dim: int = 64,
        kmax: int = 2,
        fanout: int = 8,
        aggregator: str = "mean",
        **kwargs: object,
    ) -> None:
        super().__init__(
            dim=dim,
            kmax=kmax,
            fanout=fanout,
            aggregator=aggregator,
            combiner="concat",
            sampler="uniform",
            **kwargs,
        )
