"""Mixture GNN (paper §4.2): multi-sense skip-gram for multi-mode graphs.

Extends the skip-gram objective to *polysemous* vertices: each vertex owns
``K`` sense embeddings and a sense distribution ``P``. The exact likelihood
(Eq. 6) ``log Pr_{P,theta}(Nb(v)|v)`` is intractable with negative sampling,
so — as the paper does — we maximize the Jensen lower bound::

    log sum_k pi_k p(u | s_{v,k})  >=  sum_k pi_k log p(u | s_{v,k})

each term of which is a standard SGNS objective, so "the training process
can be easily implemented by slightly modifying the sampling process in
existing work such as DeepWalk". Sense priors are per-vertex trainable
softmax logits.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.graph import Graph
from repro.nn import functional as F
from repro.nn.layers import Embedding
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.randomwalk import random_walks, walk_context_pairs
from repro.utils.rng import make_rng


class MixtureGNN(EmbeddingModel):
    """Multi-sense (mixture) skip-gram embeddings."""

    name = "mixture-gnn"

    def __init__(
        self,
        dim: int = 64,
        n_senses: int = 3,
        walks_per_vertex: int = 4,
        walk_length: int = 10,
        window: int = 3,
        epochs: int = 2,
        batch_size: int = 1024,
        neg_num: int = 5,
        lr: float = 0.02,
        seed: int = 0,
    ) -> None:
        if n_senses < 1:
            raise TrainingError(f"need at least one sense, got {n_senses}")
        self.dim = dim
        self.n_senses = n_senses
        self.walks_per_vertex = walks_per_vertex
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None

    def fit(self, graph: Graph) -> "MixtureGNN":
        rng = make_rng(self.seed)
        n = graph.n_vertices
        senses = [Embedding(n, self.dim, rng) for _ in range(self.n_senses)]
        context = Embedding(n, self.dim, rng)
        prior_logits = Tensor(
            np.zeros((n, self.n_senses)), requires_grad=True, name="sense_prior"
        )
        params = context.parameters() + [prior_logits]
        for s in senses:
            params += s.parameters()
        optimizer = Adam(params, lr=self.lr)

        starts = np.tile(graph.vertices(), self.walks_per_vertex)
        rng.shuffle(starts)
        centers, contexts = walk_context_pairs(
            random_walks(graph, starts, self.walk_length, rng), self.window
        )
        if centers.size == 0:
            raise TrainingError("no walk context pairs — graph too sparse")
        neg_sampler = DegreeBiasedNegativeSampler(graph)

        for _ in range(self.epochs):
            perm = rng.permutation(centers.size)
            for lo in range(0, centers.size, self.batch_size):
                idx = perm[lo : lo + self.batch_size]
                c_ids, u_ids = centers[idx], contexts[idx]
                b = c_ids.size
                negs = neg_sampler.sample(c_ids, self.neg_num, rng).reshape(-1)
                optimizer.zero_grad()
                pi = F.softmax(prior_logits.gather_rows(c_ids), axis=-1)  # (b, K)
                ctx = context(u_ids)
                neg = context(negs)
                tiled_idx = np.repeat(np.arange(b), self.neg_num)
                total = None
                for k, sense in enumerate(senses):
                    z = sense(c_ids)  # (b, d)
                    pos_score = (z * ctx).sum(axis=1)
                    neg_score = (z.gather_rows(tiled_idx) * neg).sum(axis=1)
                    # Per-pair SGNS log-likelihood under sense k.
                    ll = F.log_sigmoid(pos_score) + F.log_sigmoid(
                        -neg_score
                    ).reshape(b, self.neg_num).sum(axis=1)
                    onehot = np.zeros((1, self.n_senses))
                    onehot[0, k] = 1.0
                    pi_k = (pi * onehot).sum(axis=1)  # (b,)
                    weighted = pi_k * ll
                    total = weighted if total is None else total + weighted
                loss = -total.mean()
                loss.backward()
                optimizer.step()

        # Final embedding: prior-weighted mixture of the sense vectors.
        pi = F.softmax(Tensor(prior_logits.data), axis=-1).numpy()  # (n, K)
        stacked = np.stack([s.table.numpy() for s in senses], axis=2)  # (n,d,K)
        self._embeddings = unit_rows(np.einsum("ndk,nk->nd", stacked, pi))
        self._sense_tables = [s.table.numpy() for s in senses]
        self._sense_priors = pi
        self._context_table = context.table.numpy()
        self._mixture_table = np.einsum("ndk,nk->nd", stacked, pi)
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings

    def sense_embeddings(self) -> "list[np.ndarray]":
        """The K per-sense embedding tables."""
        self._require_fitted()
        return self._sense_tables

    def context_embeddings(self) -> np.ndarray:
        """The (un-normalized) context-role table.

        ``mixture_embeddings() @ context_embeddings().T`` is the model's
        actual likelihood score for "context follows center" — the right
        scorer for recommendation, where candidate items play the context
        role of the trained objective.
        """
        self._require_fitted()
        return self._context_table

    def mixture_embeddings(self) -> np.ndarray:
        """The prior-weighted sense mixture, without row normalization."""
        self._require_fitted()
        return self._mixture_table
