"""Dynamic-graph baselines for the Table 11 comparison: TNE and DANE.

Both competitors "can not handle dynamic graphs [natively], thus we run the
algorithm on each snapshot ... and report the average performance"; these
are compact but functional implementations:

* :class:`TNE` — temporal network embedding via per-snapshot truncated-SVD
  factorization of the adjacency with temporal smoothing toward the previous
  snapshot's embedding (the triadic/temporal-smoothness family);
* :class:`DANE` — dynamic attributed network embedding via the leading
  eigenvectors of structure (and attributes when present), updated snapshot
  by snapshot.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import svds

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.dynamic import DynamicGraph
from repro.graph.graph import Graph


def _adjacency(graph: Graph) -> sp.csr_matrix:
    n = graph.n_vertices
    indptr, indices, weights = graph.csr_arrays()
    a = sp.csr_matrix((weights, indices, indptr), shape=(n, n))
    return (a + a.T).tocsr()


def _svd_embed(a: sp.csr_matrix, dim: int) -> np.ndarray:
    k = min(dim, a.shape[0] - 2)
    if k < 1:
        raise TrainingError("graph too small for spectral embedding")
    u, s, _ = svds(a.astype(np.float64), k=k)
    emb = u * np.sqrt(np.maximum(s, 0.0))
    if k < dim:
        emb = np.pad(emb, ((0, 0), (0, dim - k)))
    return emb


class TNE(EmbeddingModel):
    """Per-snapshot SVD with temporal smoothing."""

    name = "tne"

    def __init__(self, dim: int = 64, smoothing: float = 0.5) -> None:
        if not 0.0 <= smoothing < 1.0:
            raise TrainingError("smoothing must be in [0, 1)")
        self.dim = dim
        self.smoothing = smoothing
        self._embeddings: np.ndarray | None = None
        self.snapshot_embeddings: list[np.ndarray] = []

    def fit(self, dynamic: DynamicGraph) -> "TNE":
        if not isinstance(dynamic, DynamicGraph):
            raise TrainingError("TNE consumes a DynamicGraph")
        prev: np.ndarray | None = None
        self.snapshot_embeddings = []
        for snap in dynamic.snapshots:
            if snap.n_edges == 0:
                emb = prev if prev is not None else np.zeros((snap.n_vertices, self.dim))
            else:
                emb = _svd_embed(_adjacency(snap), self.dim)
                if prev is not None:
                    # Sign-align the factors before smoothing (SVD sign
                    # ambiguity would otherwise cancel the history).
                    signs = np.sign(np.sum(emb * prev, axis=0))
                    signs[signs == 0] = 1.0
                    emb = emb * signs
                    emb = (1.0 - self.smoothing) * emb + self.smoothing * prev
            self.snapshot_embeddings.append(emb)
            prev = emb
        self._embeddings = unit_rows(self.snapshot_embeddings[-1])
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings


class DANE(EmbeddingModel):
    """Spectral structure (+ attribute) embedding averaged over snapshots."""

    name = "dane"

    def __init__(self, dim: int = 64) -> None:
        self.dim = dim
        self._embeddings: np.ndarray | None = None

    def fit(self, dynamic: DynamicGraph) -> "DANE":
        if not isinstance(dynamic, DynamicGraph):
            raise TrainingError("DANE consumes a DynamicGraph")
        parts = []
        for snap in dynamic.snapshots:
            if snap.n_edges == 0:
                continue
            parts.append(_svd_embed(_adjacency(snap), self.dim))
        if not parts:
            raise TrainingError("all snapshots are empty")
        # Sign-align successive embeddings before averaging.
        aligned = [parts[0]]
        for emb in parts[1:]:
            signs = np.sign(np.sum(emb * aligned[-1], axis=0))
            signs[signs == 0] = 1.0
            aligned.append(emb * signs)
        self._embeddings = unit_rows(np.mean(aligned, axis=0))
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
