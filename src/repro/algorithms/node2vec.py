"""node2vec (Grover & Leskovec, KDD 2016).

DeepWalk with the 2nd-order biased walk: return parameter ``p`` and in-out
parameter ``q`` interpolate between BFS- and DFS-like exploration.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.deepwalk import DeepWalk
from repro.graph.graph import Graph
from repro.sampling.randomwalk import node2vec_walks


class Node2Vec(DeepWalk):
    """Biased-walk skip-gram embeddings."""

    name = "node2vec"

    def __init__(self, p: float = 0.5, q: float = 2.0, **kwargs: object) -> None:
        super().__init__(**kwargs)
        self.p = p
        self.q = q

    def _walks(self, graph: Graph, rng: np.random.Generator):
        starts = np.tile(graph.vertices(), self.walks_per_vertex)
        rng.shuffle(starts)
        return node2vec_walks(
            graph, starts, self.walk_length, rng, p=self.p, q=self.q
        )
