"""The GNN framework of Algorithm 1, assembled from plugins.

``h^(0) = x_v``; for each hop: ``S = SAMPLE(Nb(v))``,
``h' = AGGREGATE(h^(k-1)_u, u in S)``, ``h^(k) = COMBINE(h^(k-1), h')``;
normalize; after ``kmax`` hops the final vectors are the embeddings.

:class:`GNNFramework` runs this full-graph (every vertex each hop, exactly
the paper's pseudocode) with pluggable sampler / aggregator / combiner
names, trained end to end with an unsupervised link objective (neighbors
score high, sampled negatives low). GraphSAGE, GCN-flavoured models and the
in-house GNNs are all configurations or subclasses of this machinery.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.graph import Graph
from repro.nn import functional as F
from repro.nn.layers import Module
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.ops.aggregate import make_aggregator
from repro.ops.combine import make_combiner
from repro.sampling.base import GraphProvider
from repro.sampling.blocks import build_block
from repro.sampling.neighborhood import (
    ImportanceNeighborSampler,
    TopKNeighborSampler,
    UniformNeighborSampler,
    WeightedNeighborSampler,
)
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.prefetch import PrefetchingPipeline
from repro.sampling.traverse import EdgeTraverseSampler
from repro.utils.rng import make_rng

_SAMPLERS = {
    "uniform": UniformNeighborSampler,
    "weighted": WeightedNeighborSampler,
    "topk": TopKNeighborSampler,
}


class _GNNEncoder(Module):
    """The stacked AGGREGATE/COMBINE network over pre-sampled hop tables."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        kmax: int,
        aggregator: str,
        combiner: str,
        rng: np.random.Generator,
    ) -> None:
        from repro.nn.layers import Dense

        #: Optional StageProfiler bucketing forward into materialize /
        #: aggregate / combine stage spans (set by GNNFramework.fit).
        self.profiler = None
        self.input_proj = None
        if combiner in ("gru", "sum"):
            # Width-preserving combiners need the input already at the
            # working width: project features up front and keep one width.
            self.input_proj = Dense(in_dim, out_dim, rng)
            dims = [out_dim] * (kmax + 1)
        else:
            dims = [in_dim] + [hidden_dim] * (kmax - 1) + [out_dim]
        self.aggregators = [
            make_aggregator(aggregator, dims[k], dims[k + 1], rng)
            for k in range(kmax)
        ]
        self.combiners = [
            make_combiner(combiner, dims[k], dims[k + 1], dims[k + 1], rng)
            for k in range(kmax)
        ]
        self.kmax = kmax

    def _stage(self, name: str):
        if self.profiler is None:
            return nullcontext()
        return self.profiler.stage(name)

    def forward(self, features: Tensor, hop_tables: "list[np.ndarray]") -> Tensor:
        """Embed all n vertices given per-hop sampled neighbor id tables.

        ``hop_tables[k]`` is an ``(n, fanout_k)`` id matrix: the SAMPLE
        output for hop k+1.
        """
        h = features if self.input_proj is None else self.input_proj(features)
        for k in range(self.kmax):
            table = hop_tables[k]
            n, fanout = table.shape
            with self._stage("materialize"):
                neigh = h.gather_rows(table.reshape(-1))  # (n*fanout, d)
            with self._stage("aggregate"):
                h_neigh = self.aggregators[k](neigh, fanout)
            with self._stage("combine"):
                h = self.combiners[k](h, h_neigh)
                h = F.l2_normalize(h)  # Algorithm 1 line 7
        return h

    def forward_block(self, features: Tensor, block: "object") -> Tensor:
        """Embed only a :class:`~repro.sampling.blocks.KHopBlock`'s seeds.

        Runs the identical per-hop ops as :meth:`forward` over the block's
        compact id space: hop k gathers level-k states through the block's
        relabeled child/self indices instead of global ``(n, fanout)``
        tables. Every op is row-wise, so output row ``i`` is ulp-identical
        to the full-graph forward's row ``block.seeds[i]`` when the block
        was built from the same per-vertex hop tables.
        """
        with self._stage("materialize"):
            h = features.gather_rows(block.layers[0])
        if self.input_proj is not None:
            h = self.input_proj(h)
        for k in range(block.n_hops):
            with self._stage("materialize"):
                neigh = h.gather_rows(block.child_index[k].reshape(-1))
                h_self = h.gather_rows(block.self_index[k])
            with self._stage("aggregate"):
                h_neigh = self.aggregators[k](neigh, block.hop_nums[k])
            with self._stage("combine"):
                h = self.combiners[k](h_self, h_neigh)
                h = F.l2_normalize(h)  # Algorithm 1 line 7
        return h


class GNNFramework(EmbeddingModel):
    """Configurable Algorithm-1 GNN with unsupervised link training.

    Parameters
    ----------
    dim:
        Embedding dimension d.
    kmax:
        Hops of neighborhood aggregation.
    fanout:
        Neighbors sampled per vertex per hop (the SAMPLE step).
    aggregator, combiner:
        Plugin names from the operator registries (``mean``, ``maxpool``,
        ``lstm``, ``attention``, ``sum`` / ``concat``, ``sum``, ``gru``).
    sampler:
        Neighborhood sampler plugin: ``uniform``, ``weighted``, ``topk`` or
        ``importance``.
    profiler:
        Optional :class:`~repro.runtime.tracing.StageProfiler`; when set,
        every training step is bucketed into sample / materialize /
        aggregate / combine / backward / optimizer stage spans and
        histograms (``profiler.render()`` shows which stage dominates).
    prefetch_depth:
        Training batches the sampling stage keeps buffered ahead of the
        compute stage (0 = sample on demand, today's behaviour). Every
        depth draws from the RNG in the identical order, so losses and
        embeddings are bit-identical across depths; the buffer adds
        cross-batch frontier overlap measurement
        (``pipeline.coalesced``) and feeds the overlap makespan model.
    minibatch_blocks:
        When True, each training step builds a k-hop
        :class:`~repro.sampling.blocks.KHopBlock` seeded from the deduped
        ``(src, dst, negs)`` batch ids and runs the encoder over only the
        block's rows — per-step forward/backward cost proportional to the
        batch instead of the graph. Blocks draw frontiers from a dedicated
        RNG stream (derived from ``seed``), so the batch stream stays
        bit-identical to the full-graph path at every prefetch depth. The
        final all-vertex embedding pass still runs full-graph once after
        training. Default False (the paper's full-graph Algorithm 1).
    """

    name = "gnn-framework"

    def __init__(
        self,
        dim: int = 64,
        kmax: int = 2,
        fanout: int = 8,
        aggregator: str = "mean",
        combiner: str = "concat",
        sampler: str = "uniform",
        hidden_dim: int | None = None,
        epochs: int = 5,
        batch_size: int = 512,
        neg_num: int = 5,
        lr: float = 0.01,
        resample_each_epoch: bool = True,
        max_steps_per_epoch: int = 40,
        early_stop_patience: int = 0,
        early_stop_min_delta: float = 1e-3,
        seed: int = 0,
        profiler: "object | None" = None,
        prefetch_depth: int = 0,
        timeseries: "object | None" = None,
        minibatch_blocks: bool = False,
    ) -> None:
        if kmax < 1:
            raise TrainingError(f"kmax must be >= 1, got {kmax}")
        if prefetch_depth < 0:
            raise TrainingError(
                f"prefetch_depth must be >= 0, got {prefetch_depth}"
            )
        self.dim = dim
        self.kmax = kmax
        self.fanout = fanout
        self.aggregator = aggregator
        self.combiner = combiner
        self.sampler = sampler
        self.hidden_dim = hidden_dim or dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.lr = lr
        self.resample_each_epoch = resample_each_epoch
        self.max_steps_per_epoch = max_steps_per_epoch
        # Early stopping (paper §7, future work #3): terminate training
        # when no epoch improves the mean loss by min_delta for patience
        # consecutive epochs. 0 disables.
        self.early_stop_patience = early_stop_patience
        self.early_stop_min_delta = early_stop_min_delta
        self.seed = seed
        self.profiler = profiler
        self.prefetch_depth = prefetch_depth
        self.minibatch_blocks = minibatch_blocks
        #: Optional repro.obs TimeSeriesSampler polled once per training
        #: step (needs a profiler with a bound virtual clock to tick).
        self.timeseries = timeseries
        self._prefetcher: "PrefetchingPipeline | None" = None
        self.stopped_early = False
        self._embeddings: np.ndarray | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------ #
    def _make_sampler(self, graph: Graph):
        provider = GraphProvider(graph)
        if self.sampler == "importance":
            return ImportanceNeighborSampler(provider, graph.out_degrees())
        try:
            return _SAMPLERS[self.sampler](provider)
        except KeyError:
            raise TrainingError(f"unknown sampler plugin {self.sampler!r}") from None

    def _features(self, graph: Graph) -> np.ndarray:
        feats = getattr(graph, "vertex_features", None)
        if feats is not None:
            out = np.asarray(feats, dtype=np.float64)
            # Standardize: discrete attribute codes become usable signals.
            mu = out.mean(axis=0, keepdims=True)
            sd = out.std(axis=0, keepdims=True) + 1e-9
            return (out - mu) / sd
        # Featureless graphs get degree + random projection features.
        rng = make_rng(self.seed)
        deg = np.log1p(graph.out_degrees()).reshape(-1, 1)
        rand = rng.normal(size=(graph.n_vertices, min(self.dim, 16)))
        return np.concatenate([deg, rand], axis=1)

    def _sample_hop_tables(
        self, graph: Graph, sampler, rng: np.random.Generator
    ) -> "list[np.ndarray]":
        tables = []
        all_vertices = np.arange(graph.n_vertices, dtype=np.int64)
        for _ in range(self.kmax):
            table, _ = sampler.sample_children(all_vertices, self.fanout, rng)
            tables.append(table)
        return tables

    def fit(self, graph: Graph) -> "GNNFramework":
        rng = make_rng(self.seed)
        prof = self.profiler
        stage = prof.stage if prof is not None else (lambda name: nullcontext())
        features = self._features(graph)
        sampler = self._make_sampler(graph)
        encoder = _GNNEncoder(
            in_dim=features.shape[1],
            hidden_dim=self.hidden_dim,
            out_dim=self.dim,
            kmax=self.kmax,
            aggregator=self.aggregator,
            combiner=self.combiner,
            rng=rng,
        )
        encoder.profiler = prof
        self._encoder = encoder
        optimizer = Adam(encoder.parameters(), lr=self.lr)
        edge_sampler = EdgeTraverseSampler(graph)
        neg_sampler = DegreeBiasedNegativeSampler(graph)
        feat_tensor = Tensor(features)
        hop_nums = [self.fanout] * self.kmax
        # Blocks draw per-step frontiers from a dedicated stream so the
        # (src, dst, negs) batch stream consumes ``rng`` in exactly the
        # full-graph order — prefetch depths stay bit-identical.
        block_rng = make_rng(self.seed + 0x5EED) if self.minibatch_blocks else None
        #: Deterministic per-fit block accounting: steps trained on blocks,
        #: feature rows gathered, and vertex rows across all block levels.
        self.block_stats = {"steps": 0, "input_rows": 0, "total_rows": 0}
        hop_tables: "list[np.ndarray] | None" = None
        if not self.minibatch_blocks:
            with stage("sample"):
                hop_tables = self._sample_hop_tables(graph, sampler, rng)

        steps = min(self.max_steps_per_epoch, max(1, graph.n_edges // self.batch_size))
        self.loss_history = []
        self.stopped_early = False
        best_loss = float("inf")
        stall = 0

        def _draw_step(step_rng: np.random.Generator):
            with stage("sample"):
                src, dst = edge_sampler.sample(self.batch_size, step_rng)
                negs = neg_sampler.sample(
                    src, self.neg_num, step_rng
                ).reshape(-1)
            return src, dst, negs

        # The prefetcher calls _draw_step strictly in step order with the
        # same rng, so every depth consumes the RNG stream identically;
        # depth 0 adds no buffering, metrics or frontier accounting at all
        # (byte-for-byte today's behaviour).
        self._prefetcher = PrefetchingPipeline(
            _draw_step,
            self.prefetch_depth,
            frontier_of=(
                (lambda b: np.concatenate(b)) if self.prefetch_depth else None
            ),
            metrics=(
                prof.metrics
                if (prof is not None and self.prefetch_depth)
                else None
            ),
        )
        for epoch in range(self.epochs):
            if (
                not self.minibatch_blocks
                and self.resample_each_epoch
                and epoch > 0
            ):
                with stage("sample"):
                    hop_tables = self._sample_hop_tables(graph, sampler, rng)
            epoch_losses = []
            batch_iter = self._prefetcher.run(steps, rng)
            for _ in range(steps):
                with prof.step() if prof is not None else nullcontext():
                    src, dst, negs = next(batch_iter)
                    optimizer.zero_grad()
                    if self.minibatch_blocks:
                        with stage("sample"):
                            seeds = np.unique(np.concatenate([src, dst, negs]))
                            block = build_block(seeds, sampler, hop_nums, block_rng)
                            self.block_stats["steps"] += 1
                            self.block_stats["input_rows"] += block.n_input_rows
                            self.block_stats["total_rows"] += block.total_rows()
                        h = encoder.forward_block(feat_tensor, block)
                        rows = block.seed_positions
                    else:
                        h = encoder(feat_tensor, hop_tables)
                        rows = lambda ids: ids  # noqa: E731 - global id space
                    loss = skipgram_negative_loss(
                        h.gather_rows(rows(src)),
                        h.gather_rows(rows(dst)),
                        h.gather_rows(rows(negs)),
                    )
                    with stage("backward"):
                        loss.backward()
                    with stage("optimizer"):
                        optimizer.step()
                if self.timeseries is not None:
                    self.timeseries.poll()
                epoch_losses.append(loss.item())
            epoch_loss = float(np.mean(epoch_losses))
            self.loss_history.append(epoch_loss)
            if self.early_stop_patience > 0:
                if epoch_loss < best_loss - self.early_stop_min_delta:
                    best_loss = epoch_loss
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.early_stop_patience:
                        self.stopped_early = True
                        break

        # The final all-vertex embedding pass runs unprofiled: stage totals
        # stay pure per-training-step cost, comparable across modes.
        encoder.profiler = None
        if hop_tables is None:
            # Minibatch mode never sampled full tables: one final
            # full-graph pass produces the all-vertex embedding matrix.
            hop_tables = self._sample_hop_tables(graph, sampler, rng)
        h_final = encoder(feat_tensor, hop_tables).numpy()
        self._embeddings = unit_rows(h_final)
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
