"""Metapath2Vec (Dong et al., KDD 2017).

Heterogeneous skip-gram over metapath-constrained random walks: the walk
alternates vertex types along a user-specified pattern (e.g. user-item-user)
so the context of a vertex is type-meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    EmbeddingModel,
    default_optimizer,
    train_skipgram,
    unit_rows,
)
from repro.errors import TrainingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.nn.layers import Embedding
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.randomwalk import metapath_walks, walk_context_pairs
from repro.utils.rng import make_rng


class Metapath2Vec(EmbeddingModel):
    """Metapath-constrained skip-gram embeddings (needs an AHG)."""

    name = "metapath2vec"

    def __init__(
        self,
        metapath: "list[str] | None" = None,
        dim: int = 64,
        walks_per_vertex: int = 4,
        walk_length: int = 10,
        window: int = 3,
        epochs: int = 2,
        neg_num: int = 5,
        lr: float = 0.025,
        seed: int = 0,
    ) -> None:
        self.metapath = metapath
        self.dim = dim
        self.walks_per_vertex = walks_per_vertex
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.neg_num = neg_num
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None

    def _default_metapath(self, graph: AttributedHeterogeneousGraph) -> "list[str]":
        names = graph.vertex_type_names
        if len(names) >= 2:
            return [names[0], names[1]]
        # Single vertex type: the metapath degenerates to that type.
        return [names[0], names[0]]

    def fit(self, graph: AttributedHeterogeneousGraph) -> "Metapath2Vec":
        if not isinstance(graph, AttributedHeterogeneousGraph):
            raise TrainingError("Metapath2Vec needs an AHG")
        rng = make_rng(self.seed)
        metapath = self.metapath or self._default_metapath(graph)
        starts_pool = graph.vertices_of_type(metapath[0])
        if starts_pool.size == 0:
            raise TrainingError(f"no vertices of type {metapath[0]!r}")
        starts = np.tile(starts_pool, self.walks_per_vertex)
        rng.shuffle(starts)
        walks = metapath_walks(graph, starts, metapath, self.walk_length, rng)
        pairs = walk_context_pairs([w for w in walks if w.size > 1], self.window)
        if pairs[0].size == 0:
            raise TrainingError("metapath walks produced no context pairs")
        center = Embedding(graph.n_vertices, self.dim, rng)
        context = Embedding(graph.n_vertices, self.dim, rng)
        optimizer = default_optimizer(
            center.parameters() + context.parameters(), self.lr
        )
        train_skipgram(
            pairs,
            center_fn=center,
            context_fn=context,
            optimizer=optimizer,
            negative_sampler=DegreeBiasedNegativeSampler(graph),
            rng=rng,
            epochs=self.epochs,
            neg_num=self.neg_num,
        )
        self._embeddings = unit_rows(center.table.numpy())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
