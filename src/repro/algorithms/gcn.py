"""The GCN family: GCN, FastGCN, AS-GCN.

* :class:`GCN` (Kipf & Welling, ICLR 2017) — full-batch propagation through
  the renormalized adjacency ``Â = D^-1/2 (A + I) D^-1/2``;
* :class:`FastGCN` (Chen et al., ICLR 2018) — each layer's propagation is a
  Monte-Carlo estimate over vertices importance-sampled with
  ``q(u) ∝ deg(u)^2`` (the paper's variance-minimizing proposal), columns
  rescaled by ``1/(s q(u))`` to stay unbiased;
* :class:`ASGCN` (Huang et al., 2018) — adaptive layer-wise sampling: the
  proposal additionally depends on the current feature magnitudes, a
  faithful scalar simplification of the learned sampler.

All three are trained with the unsupervised link objective so their
embeddings drop into the same link-prediction evaluation as everything else.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.graph.graph import Graph
from repro.nn import functional as F
from repro.nn.layers import Dense
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.traverse import EdgeTraverseSampler
from repro.utils.rng import make_rng


def normalized_adjacency(graph: Graph) -> sp.csr_matrix:
    """``D^-1/2 (A + A^T + I) D^-1/2`` (symmetrized, renormalization trick)."""
    n = graph.n_vertices
    indptr, indices, weights = graph.csr_arrays()
    a = sp.csr_matrix((weights, indices, indptr), shape=(n, n))
    a = a + a.T + sp.identity(n, format="csr")
    degree = np.asarray(a.sum(axis=1)).ravel()
    d_inv_sqrt = sp.diags(1.0 / np.sqrt(np.maximum(degree, 1e-12)))
    return (d_inv_sqrt @ a @ d_inv_sqrt).tocsr()


class GCN(EmbeddingModel):
    """Two-layer full-batch GCN with unsupervised link training."""

    name = "gcn"

    def __init__(
        self,
        dim: int = 64,
        hidden: int = 64,
        steps: int = 120,
        batch_size: int = 512,
        neg_num: int = 5,
        lr: float = 0.01,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.hidden = hidden
        self.steps = steps
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None

    def _features(self, graph: Graph, rng: np.random.Generator) -> np.ndarray:
        feats = getattr(graph, "vertex_features", None)
        if feats is not None:
            x = np.asarray(feats, dtype=np.float64)
            return (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-9)
        deg = np.log1p(graph.out_degrees()).reshape(-1, 1)
        return np.concatenate(
            [deg, rng.normal(size=(graph.n_vertices, 15))], axis=1
        )

    def _propagate(
        self, a_hat: sp.csr_matrix, x: Tensor, rng: np.random.Generator
    ) -> Tensor:
        """One forward pass; subclasses swap the propagation estimator."""
        h = F.relu(F.sparse_matmul(a_hat, x @ self._w0.weight + self._w0.bias))
        return F.sparse_matmul(a_hat, h @ self._w1.weight + self._w1.bias)

    def fit(self, graph: Graph) -> "GCN":
        rng = make_rng(self.seed)
        x = self._features(graph, rng)
        a_hat = normalized_adjacency(graph)
        self._w0 = Dense(x.shape[1], self.hidden, rng)
        self._w1 = Dense(self.hidden, self.dim, rng)
        params = self._w0.parameters() + self._w1.parameters()
        optimizer = Adam(params, lr=self.lr)
        edges = EdgeTraverseSampler(graph)
        negs = DegreeBiasedNegativeSampler(graph)
        xt = Tensor(x)
        for _ in range(self.steps):
            src, dst = edges.sample(self.batch_size, rng)
            neg_ids = negs.sample(src, self.neg_num, rng).reshape(-1)
            optimizer.zero_grad()
            h = F.l2_normalize(self._propagate(a_hat, xt, rng))
            loss = skipgram_negative_loss(
                h.gather_rows(src), h.gather_rows(dst), h.gather_rows(neg_ids)
            )
            loss.backward()
            optimizer.step()
        h = F.l2_normalize(self._propagate(a_hat, xt, rng))
        self._embeddings = unit_rows(h.numpy())
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings


class FastGCN(GCN):
    """GCN with degree^2 importance-sampled layer propagation."""

    name = "fastgcn"

    def __init__(self, sample_size: int = 256, **kwargs: object) -> None:
        super().__init__(**kwargs)
        self.sample_size = sample_size

    def _proposal(self, graph_degrees: np.ndarray, x: Tensor) -> np.ndarray:
        q = graph_degrees.astype(np.float64) ** 2 + 1e-9
        return q / q.sum()

    def fit(self, graph: Graph) -> "FastGCN":
        self._degrees = graph.out_degrees() + 1
        return super().fit(graph)

    def _propagate(
        self, a_hat: sp.csr_matrix, x: Tensor, rng: np.random.Generator
    ) -> Tensor:
        n = a_hat.shape[0]
        s = min(self.sample_size, n)
        # Layer 1: sample support S, estimate Â X ≈ Â[:, S] X[S] / (s q_S).
        q = self._proposal(self._degrees, x)
        support = rng.choice(n, size=s, replace=False, p=q)
        scale = 1.0 / (s * q[support])
        a_sub = a_hat[:, support].multiply(scale[None, :]).tocsr()
        h = F.relu(
            F.sparse_matmul(a_sub, x.gather_rows(support) @ self._w0.weight)
            + self._w0.bias
        )
        support2 = rng.choice(n, size=s, replace=False, p=q)
        scale2 = 1.0 / (s * q[support2])
        a_sub2 = a_hat[:, support2].multiply(scale2[None, :]).tocsr()
        return (
            F.sparse_matmul(a_sub2, h.gather_rows(support2) @ self._w1.weight)
            + self._w1.bias
        )


class ASGCN(FastGCN):
    """FastGCN with an adaptive, feature-aware sampling proposal."""

    name = "asgcn"

    def _proposal(self, graph_degrees: np.ndarray, x: Tensor) -> np.ndarray:
        # Adaptive: combine structural importance with current feature
        # magnitude (the self-dependent component of AS-GCN's sampler).
        feat_norm = np.linalg.norm(x.data, axis=1) + 1e-9
        q = (graph_degrees.astype(np.float64) ** 2) * feat_norm
        q += 1e-9
        return q / q.sum()
