"""Auto-ML model selection (paper §7, future work #4).

"Auto-ML, which can help to select the optimal method from a variety of
GNNs" — :class:`AutoGNN` implements the straightforward version: carve a
validation split out of the training graph, fit every candidate
configuration, score each on validation link prediction with early
abandoning of clearly-losing candidates, then refit the winner on the full
training graph.

Candidates are ``(name, factory)`` pairs so arbitrary models from the zoo
(or user models honouring the :class:`EmbeddingModel` interface) can enter
the search. A default candidate set covers the main framework axes
(aggregator, fan-out, walk-based vs convolutional).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.algorithms.base import EmbeddingModel
from repro.data.splits import train_test_split_edges
from repro.errors import ReproError, TrainingError
from repro.graph.graph import Graph
from repro.tasks.link_prediction import evaluate_link_prediction


def default_candidates() -> "list[tuple[str, Callable[[], EmbeddingModel]]]":
    """A compact search space over the framework's main axes."""
    from repro.algorithms.deepwalk import DeepWalk
    from repro.algorithms.framework import GNNFramework

    return [
        ("deepwalk", lambda: DeepWalk(dim=48, epochs=2, seed=0)),
        (
            "sage-mean-f4",
            lambda: GNNFramework(
                dim=48, fanout=4, aggregator="mean", epochs=3,
                max_steps_per_epoch=15, seed=0,
            ),
        ),
        (
            "sage-mean-f10",
            lambda: GNNFramework(
                dim=48, fanout=10, aggregator="mean", epochs=3,
                max_steps_per_epoch=15, seed=0,
            ),
        ),
        (
            "sage-maxpool",
            lambda: GNNFramework(
                dim=48, fanout=8, aggregator="maxpool", epochs=3,
                max_steps_per_epoch=15, seed=0,
            ),
        ),
    ]


@dataclass
class CandidateResult:
    """Validation outcome of one searched candidate."""

    name: str
    score: float
    fitted: bool


@dataclass
class AutoGNN(EmbeddingModel):
    """Validation-driven model selection over a candidate zoo.

    Parameters
    ----------
    candidates:
        ``(name, zero-arg factory)`` pairs; defaults to
        :func:`default_candidates`.
    validation_fraction:
        Edge fraction held out of the input graph for scoring.
    metric:
        ``"roc_auc"``, ``"pr_auc"`` or ``"f1"``.
    min_promising:
        Candidates scoring more than this many points below the running
        best are abandoned without a full refit consideration (successive-
        halving in its simplest form).
    """

    candidates: "list[tuple[str, Callable[[], EmbeddingModel]]] | None" = None
    validation_fraction: float = 0.15
    metric: str = "roc_auc"
    min_promising: float = 10.0
    seed: int = 0
    results: "list[CandidateResult]" = field(default_factory=list)

    name = "auto-gnn"

    def __post_init__(self) -> None:
        if self.metric not in ("roc_auc", "pr_auc", "f1"):
            raise TrainingError(f"unknown selection metric {self.metric!r}")
        self._embeddings = None
        self._best_name: str | None = None

    def fit(self, graph: Graph) -> "AutoGNN":
        candidates = (
            self.candidates if self.candidates is not None else default_candidates()
        )
        if not candidates:
            raise TrainingError("AutoGNN needs at least one candidate")
        split = train_test_split_edges(
            graph, test_fraction=self.validation_fraction, seed=self.seed
        )
        self.results = []
        best_score = -float("inf")
        best_factory: Callable[[], EmbeddingModel] | None = None
        for name, factory in candidates:
            model = factory()
            try:
                model.fit(split.train_graph)
                result = evaluate_link_prediction(model.embeddings(), split)
                score = getattr(result, self.metric)
                fitted = True
            except ReproError:
                # Any library-raised failure (wrong graph kind, schema
                # mismatch, training blow-up) just disqualifies this
                # candidate.
                score = -float("inf")
                fitted = False
            self.results.append(CandidateResult(name, score, fitted))
            if score > best_score:
                best_score = score
                best_factory = factory
                self._best_name = name
        if best_factory is None:
            raise TrainingError("no AutoGNN candidate could be fitted")
        # Abandon losers: keep only results within min_promising of best.
        self.results = [
            r
            for r in self.results
            if r.score >= best_score - self.min_promising or not r.fitted
        ]
        final = best_factory()
        final.fit(graph)
        self._embeddings = final.embeddings()
        self._final_model = final
        return self

    @property
    def best_candidate(self) -> str:
        """Name of the selected candidate (after fit)."""
        if self._best_name is None:
            raise TrainingError("AutoGNN is not fitted yet")
        return self._best_name

    def embeddings(self):
        self._require_fitted()
        return self._embeddings
