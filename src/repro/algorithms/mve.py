"""MVE (Qu et al., CIKM 2017): multi-view network embedding.

Each vertex has one *collaborated* base embedding shared by all views plus
a per-view deviation; the view-v representation is ``base + delta_v``. All
views are trained jointly with skip-gram on their own walks, and the
attention mechanism weighs each view's deviation into the final single
embedding — "embeds networks with multiple views in a single collaborated
embedding using the attention mechanism". The collaboration strength
regularizes deviations toward zero, sharing statistical strength across
sparse views.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.nn import functional as F
from repro.nn.layers import Embedding
from repro.nn.loss import skipgram_negative_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.negative import DegreeBiasedNegativeSampler
from repro.sampling.randomwalk import random_walks, walk_context_pairs
from repro.utils.rng import make_rng


class MVE(EmbeddingModel):
    """Attention-collaborated multi-view embeddings."""

    name = "mve"

    def __init__(
        self,
        dim: int = 64,
        walks_per_vertex: int = 3,
        walk_length: int = 8,
        window: int = 3,
        epochs: int = 2,
        batch_size: int = 1024,
        neg_num: int = 5,
        collaboration: float = 0.05,
        lr: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.walks_per_vertex = walks_per_vertex
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.batch_size = batch_size
        self.neg_num = neg_num
        self.collaboration = collaboration
        self.lr = lr
        self.seed = seed
        self._embeddings: np.ndarray | None = None
        self._type_embeddings: dict[str, np.ndarray] = {}

    def fit(self, graph: AttributedHeterogeneousGraph) -> "MVE":
        if not isinstance(graph, AttributedHeterogeneousGraph):
            raise TrainingError("MVE needs a multi-view (AHG) input")
        rng = make_rng(self.seed)
        n = graph.n_vertices
        views = [(t, graph.edge_type_subgraph(t)) for t in graph.edge_type_names]
        views = [(t, g) for t, g in views if g.n_edges > 0]
        if not views:
            raise TrainingError("no non-empty views")
        n_views = len(views)

        base = Embedding(n, self.dim, rng)
        deltas = [Embedding(n, self.dim, rng, scale=0.01) for _ in range(n_views)]
        context = Embedding(n, self.dim, rng)
        # Per-vertex attention logits over views.
        attn = Tensor(np.zeros((n, n_views)), requires_grad=True, name="view_attn")
        params = base.parameters() + context.parameters() + [attn]
        for d in deltas:
            params += d.parameters()
        optimizer = Adam(params, lr=self.lr)

        per_view_pairs = []
        for _, g in views:
            starts = np.tile(g.vertices(), self.walks_per_vertex)
            rng.shuffle(starts)
            pairs = walk_context_pairs(
                random_walks(g, starts, self.walk_length, rng), self.window
            )
            per_view_pairs.append(pairs)
        neg_sampler = DegreeBiasedNegativeSampler(graph)

        for _ in range(self.epochs):
            for vi, (centers, contexts) in enumerate(per_view_pairs):
                if centers.size == 0:
                    continue
                perm = rng.permutation(centers.size)
                for lo in range(0, centers.size, self.batch_size):
                    idx = perm[lo : lo + self.batch_size]
                    c_ids, u_ids = centers[idx], contexts[idx]
                    negs = neg_sampler.sample(c_ids, self.neg_num, rng).reshape(-1)
                    optimizer.zero_grad()
                    delta = deltas[vi](c_ids)
                    z = base(c_ids) + delta
                    sg = skipgram_negative_loss(
                        z, context(u_ids), context(negs)
                    )
                    # Collaboration: deviations stay small, so every view's
                    # gradient flows into the shared base.
                    collab = (delta * delta).mean()
                    # Attention training: the attention-combined embedding
                    # must also explain this view's contexts, so the
                    # per-vertex view weights learn which views to trust.
                    weights = F.softmax(attn.gather_rows(c_ids), axis=-1)
                    combined = base(c_ids)
                    for vj, d in enumerate(deltas):
                        onehot = np.zeros((1, n_views))
                        onehot[0, vj] = 1.0
                        w_col = (weights * onehot).sum(axis=1, keepdims=True)
                        combined = combined + d(c_ids) * w_col
                    sg_comb = skipgram_negative_loss(
                        combined, context(u_ids), context(negs)
                    )
                    loss = sg + sg_comb * 0.5 + collab * self.collaboration
                    loss.backward()
                    optimizer.step()

        final_weights = F.softmax(Tensor(attn.data), axis=-1).numpy()  # (n, V)
        base_table = base.table.numpy()
        delta_tables = [d.table.numpy() for d in deltas]
        weighted = base_table + sum(
            delta_tables[v] * final_weights[:, v : v + 1] for v in range(n_views)
        )
        self._embeddings = unit_rows(weighted)
        self._type_embeddings = {
            t: unit_rows(base_table + delta_tables[v])
            for v, (t, _) in enumerate(views)
        }
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings

    def type_embeddings(self, edge_type: str) -> np.ndarray:
        """The per-view (edge-type) embedding ``base + delta_v``."""
        self._require_fitted()
        try:
            return self._type_embeddings[edge_type]
        except KeyError:
            raise TrainingError(f"no embeddings for view {edge_type!r}") from None
