"""NetMF (Qiu et al., WSDM 2018).

Closed-form network embedding: factorize the (truncated) DeepWalk matrix

    M = log max(1, vol(G)/(b*T) * (sum_{r=1..T} P^r) D^{-1})

with a rank-d SVD. Unifies DeepWalk/LINE as matrix factorization; used here
as the spectral member of the homogeneous baseline family.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import svds

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.errors import TrainingError
from repro.graph.graph import Graph


class NetMF(EmbeddingModel):
    """DeepWalk-matrix factorization embeddings (small/medium graphs)."""

    name = "netmf"

    def __init__(self, dim: int = 64, window: int = 3, negatives: float = 1.0) -> None:
        if window < 1:
            raise TrainingError(f"window must be positive, got {window}")
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self._embeddings: np.ndarray | None = None

    def fit(self, graph: Graph) -> "NetMF":
        n = graph.n_vertices
        if n > 30_000:
            raise TrainingError("NetMF's dense step is limited to 30k vertices here")
        indptr, indices, weights = graph.csr_arrays()
        a = sp.csr_matrix((weights, indices, indptr), shape=(n, n))
        if graph.directed:
            a = a + a.T  # symmetrize: NetMF is defined on undirected graphs
        degree = np.asarray(a.sum(axis=1)).ravel()
        degree = np.maximum(degree, 1e-12)
        vol = degree.sum()
        d_inv = sp.diags(1.0 / degree)
        p = d_inv @ a  # random-walk transition matrix
        # Sum of the first T powers (dense — guarded by the size check).
        p_dense = p.toarray()
        power = np.eye(n)
        acc = np.zeros((n, n))
        for _ in range(self.window):
            power = power @ p_dense
            acc += power
        m = (vol / (self.negatives * self.window)) * (acc @ np.diag(1.0 / degree))
        m = np.log(np.maximum(m, 1.0))
        k = min(self.dim, n - 2)
        u, s, _ = svds(sp.csr_matrix(m), k=k)
        emb = u * np.sqrt(np.maximum(s, 0.0))
        if k < self.dim:
            emb = np.pad(emb, ((0, 0), (0, self.dim - k)))
        self._embeddings = unit_rows(emb)
        return self

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
