"""PMNE (Liu et al., ICDM 2017): principled multilayer network embedding.

Three approaches to embed a multiplex (multi-edge-type) network, all
node2vec-based, matching the paper's PMNE-n / PMNE-r / PMNE-c competitors:

* ``network`` (PMNE-n) — *network aggregation*: merge all layers into one
  graph, then node2vec;
* ``results`` (PMNE-r) — *results aggregation*: node2vec per layer,
  concatenate the per-layer embeddings;
* ``layer_coanalysis`` (PMNE-c) — *layer co-analysis*: walks may hop across
  layers at each step (union-neighborhood walks), then one skip-gram.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import EmbeddingModel, unit_rows
from repro.algorithms.node2vec import Node2Vec
from repro.errors import TrainingError
from repro.graph.ahg import AttributedHeterogeneousGraph
from repro.graph.graph import Graph


class PMNE(EmbeddingModel):
    """Multiplex embeddings with a selectable aggregation variant."""

    name = "pmne"

    def __init__(
        self,
        variant: str = "network",
        dim: int = 64,
        p: float = 0.5,
        q: float = 2.0,
        seed: int = 0,
        **node2vec_kwargs: object,
    ) -> None:
        if variant not in ("network", "results", "layer_coanalysis"):
            raise TrainingError(f"unknown PMNE variant {variant!r}")
        self.variant = variant
        self.dim = dim
        self.p = p
        self.q = q
        self.seed = seed
        self.node2vec_kwargs = node2vec_kwargs
        self._embeddings: np.ndarray | None = None

    def _merged(self, graph: AttributedHeterogeneousGraph) -> Graph:
        src, dst, w = graph.edge_array()
        return Graph(graph.n_vertices, src, dst, weights=w, directed=graph.directed)

    def fit(self, graph: AttributedHeterogeneousGraph) -> "PMNE":
        if not isinstance(graph, AttributedHeterogeneousGraph):
            raise TrainingError("PMNE needs a multiplex (AHG) input")
        if self.variant == "network":
            model = Node2Vec(
                dim=self.dim, p=self.p, q=self.q, seed=self.seed, **self.node2vec_kwargs
            )
            self._embeddings = model.fit(self._merged(graph)).embeddings()
            return self
        if self.variant == "results":
            layers = graph.edge_type_names
            per_layer_dim = max(4, self.dim // max(len(layers), 1))
            parts = []
            for i, etype in enumerate(layers):
                layer_graph = graph.edge_type_subgraph(etype)
                if layer_graph.n_edges == 0:
                    parts.append(np.zeros((graph.n_vertices, per_layer_dim)))
                    continue
                model = Node2Vec(
                    dim=per_layer_dim,
                    p=self.p,
                    q=self.q,
                    seed=self.seed + i,
                    **self.node2vec_kwargs,
                )
                parts.append(model.fit(layer_graph).embeddings())
            self._embeddings = unit_rows(np.concatenate(parts, axis=1))
            return self
        self._embeddings = self._fit_coanalysis(graph)
        return self

    def _fit_coanalysis(self, graph: AttributedHeterogeneousGraph) -> np.ndarray:
        """Cross-layer walks: stay in the current layer with probability
        ``window_stay``, otherwise jump to a random layer where the vertex
        has edges, then step within the chosen layer."""
        from repro.algorithms.base import default_optimizer, train_skipgram
        from repro.nn.layers import Embedding
        from repro.sampling.negative import DegreeBiasedNegativeSampler
        from repro.sampling.randomwalk import walk_context_pairs
        from repro.utils.rng import make_rng

        rng = make_rng(self.seed)
        stay_prob = 0.7
        layers = [graph.edge_type_subgraph(t) for t in graph.edge_type_names]
        layers = [g for g in layers if g.n_edges > 0]
        if not layers:
            raise TrainingError("co-analysis needs at least one non-empty layer")
        walk_length = int(self.node2vec_kwargs.get("walk_length", 10))
        walks_per_vertex = int(self.node2vec_kwargs.get("walks_per_vertex", 4))
        window = int(self.node2vec_kwargs.get("window", 3))
        walks = []
        starts = np.tile(graph.vertices(), walks_per_vertex)
        rng.shuffle(starts)
        for start in starts:
            current = int(start)
            layer = int(rng.integers(len(layers)))
            walk = [current]
            for _ in range(walk_length):
                if rng.random() > stay_prob:
                    options = [
                        i
                        for i, g in enumerate(layers)
                        if g.out_neighbors(current).size > 0
                    ]
                    if options:
                        layer = int(rng.choice(options))
                nbrs = layers[layer].out_neighbors(current)
                if nbrs.size == 0:
                    merged_nbrs = graph.out_neighbors(current)
                    if merged_nbrs.size == 0:
                        break
                    current = int(merged_nbrs[rng.integers(merged_nbrs.size)])
                else:
                    current = int(nbrs[rng.integers(nbrs.size)])
                walk.append(current)
            walks.append(np.asarray(walk, dtype=np.int64))
        pairs = walk_context_pairs(walks, window)
        center = Embedding(graph.n_vertices, self.dim, rng)
        context = Embedding(graph.n_vertices, self.dim, rng)
        optimizer = default_optimizer(center.parameters() + context.parameters())
        train_skipgram(
            pairs,
            center_fn=center,
            context_fn=context,
            optimizer=optimizer,
            negative_sampler=DegreeBiasedNegativeSampler(graph),
            rng=rng,
            epochs=int(self.node2vec_kwargs.get("epochs", 2)),
        )
        return unit_rows(center.table.numpy())

    def embeddings(self) -> np.ndarray:
        self._require_fitted()
        return self._embeddings
