"""Algorithm layer: classic GE baselines, GNNs, and the six in-house models.

Everything is a plugin over the system layers below: samplers feed
aggregate/combine operators (or skip-gram objectives), trained by the
autograd engine. Models share the :class:`~repro.algorithms.base.
EmbeddingModel` interface — ``fit`` then ``embeddings()`` — so the
evaluation harness treats the whole zoo uniformly.
"""

from repro.algorithms.anrl import ANRL
from repro.algorithms.autoencoders import DAE, BetaVAE
from repro.algorithms.automl import AutoGNN
from repro.algorithms.base import EmbeddingModel
from repro.algorithms.bayesian_gnn import BayesianGNN
from repro.algorithms.deepwalk import DeepWalk
from repro.algorithms.dynamic_baselines import DANE, TNE
from repro.algorithms.evolving_gnn import EvolvingGNN
from repro.algorithms.framework import GNNFramework
from repro.algorithms.gatne import GATNE
from repro.algorithms.gcn import ASGCN, FastGCN, GCN
from repro.algorithms.graphsage import GraphSAGE
from repro.algorithms.hep import AHEP, HEP
from repro.algorithms.hierarchical_gnn import HierarchicalGNN
from repro.algorithms.line import LINE
from repro.algorithms.metapath2vec import Metapath2Vec
from repro.algorithms.mixture_gnn import MixtureGNN
from repro.algorithms.mne import MNE
from repro.algorithms.mve import MVE
from repro.algorithms.netmf import NetMF
from repro.algorithms.node2vec import Node2Vec
from repro.algorithms.pmne import PMNE
from repro.algorithms.sign import SIGN
from repro.algorithms.struc2vec import Struc2Vec

__all__ = [
    "EmbeddingModel",
    "GNNFramework",
    "AutoGNN",
    "DeepWalk",
    "Node2Vec",
    "LINE",
    "NetMF",
    "Metapath2Vec",
    "ANRL",
    "PMNE",
    "MVE",
    "MNE",
    "Struc2Vec",
    "GCN",
    "FastGCN",
    "ASGCN",
    "GraphSAGE",
    "SIGN",
    "HEP",
    "AHEP",
    "GATNE",
    "MixtureGNN",
    "HierarchicalGNN",
    "EvolvingGNN",
    "BayesianGNN",
    "TNE",
    "DANE",
    "DAE",
    "BetaVAE",
]
