"""Exception hierarchy for the repro (AliGraph reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a graph (bad vertex, malformed edge, ...)."""


class VertexNotFoundError(GraphError):
    """A vertex id was requested that does not exist in the graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} not found in graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """An edge was requested that does not exist in the graph."""

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"edge ({src!r}, {dst!r}) not found in graph")
        self.src = src
        self.dst = dst


class SchemaError(GraphError):
    """Vertex/edge type or attribute schema violated (AHG constraints)."""


class StorageError(ReproError):
    """Problem inside the distributed storage layer."""


class PartitionError(StorageError):
    """A partitioner was misconfigured or produced an invalid assignment."""


class SamplingError(ReproError):
    """A sampler was misconfigured or asked for an impossible sample."""


class OperatorError(ReproError):
    """An AGGREGATE/COMBINE operator was misused."""


class TrainingError(ReproError):
    """A model failed during training (diverged, bad shapes, ...)."""


class DatasetError(ReproError):
    """A dataset generator or loader was misconfigured."""
