"""Exception hierarchy for the repro (AliGraph reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a graph (bad vertex, malformed edge, ...)."""


class VertexNotFoundError(GraphError):
    """A vertex id was requested that does not exist in the graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} not found in graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError):
    """An edge was requested that does not exist in the graph."""

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"edge ({src!r}, {dst!r}) not found in graph")
        self.src = src
        self.dst = dst


class SchemaError(GraphError):
    """Vertex/edge type or attribute schema violated (AHG constraints)."""


class StorageError(ReproError):
    """Problem inside the distributed storage layer."""


class PartitionError(StorageError):
    """A partitioner was misconfigured or produced an invalid assignment."""


class ReadUnavailableError(StorageError):
    """A read could not be served by any healthy server or replica.

    Raised when a vertex's owning worker is down (or unreachable past the
    retry budget) and no healthy cache replica holds the data. Carries the
    vertex and owner so callers can degrade per-vertex instead of per-batch.
    """

    def __init__(self, vertex: int, owner: int, kind: str = "neighbors") -> None:
        super().__init__(
            f"{kind} of vertex {vertex} unavailable: owner worker {owner} "
            "is down and no healthy replica holds it"
        )
        self.vertex = vertex
        self.owner = owner
        self.kind = kind


class ReproRuntimeError(ReproError, RuntimeError):
    """Problem inside the simulated RPC runtime (repro.runtime).

    Also derives from the builtin :class:`RuntimeError` so generic handlers
    written against the standard hierarchy keep working.
    """


class RuntimeConfigError(ReproRuntimeError):
    """A runtime component (fault plan, retry policy, inbox) was misconfigured."""


class InboxOverflowError(ReproRuntimeError):
    """A server's bounded inbox rejected a request (backpressure signal)."""

    def __init__(self, part: int, capacity: int) -> None:
        super().__init__(
            f"inbox of server {part} is full (capacity {capacity}); "
            "the issuer must drain responses before submitting more"
        )
        self.part = part
        self.capacity = capacity


class RetryExhaustedError(ReproRuntimeError):
    """A request kept failing past the retry budget and no failover replica
    could serve it."""

    def __init__(self, detail: str, attempts: int) -> None:
        super().__init__(f"{detail} (after {attempts} attempts)")
        self.attempts = attempts


class SamplingError(ReproError):
    """A sampler was misconfigured or asked for an impossible sample."""


class OperatorError(ReproError):
    """An AGGREGATE/COMBINE operator was misused."""


class TrainingError(ReproError):
    """A model failed during training (diverged, bad shapes, ...)."""


class DatasetError(ReproError):
    """A dataset generator or loader was misconfigured."""


class ServingError(ReproError):
    """The online serving tier was misconfigured or misused."""
