"""Hash-based edge-cut and vertex-cut partitioners (paper §3.2, [16]).

These are the PowerGraph-family strategies the paper recommends for dense
graphs:

* **edge cut** — vertices are hashed to workers; an edge is "cut" when its
  endpoints hash apart. Cheap, stateless, embarrassingly parallel, and the
  strategy the distributed build pipeline defaults to.
* **vertex cut** — *edges* are hashed to workers and vertices are replicated
  wherever their edges land; quality is measured by the replication factor
  rather than the cut fraction. Greedy placement (least-loaded part already
  holding an endpoint) keeps replication down, mirroring PowerGraph's greedy
  vertex cut.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.storage.partition.base import (
    PartitionAssignment,
    Partitioner,
    register_partitioner,
)


def _mix_hash(values: np.ndarray, salt: int) -> np.ndarray:
    """Cheap deterministic integer mixer (splitmix64 finalizer)."""
    x = values.astype(np.uint64) + np.uint64(salt) + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


@register_partitioner
class EdgeCutPartitioner(Partitioner):
    """Vertices hashed to parts; edges placed at their source's part."""

    name = "edge_cut"

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt

    def partition(self, graph: Graph, n_parts: int) -> PartitionAssignment:
        self._validate(graph, n_parts)
        vids = np.arange(graph.n_vertices, dtype=np.int64)
        parts = (_mix_hash(vids, self.salt) % np.uint64(n_parts)).astype(np.int64)
        return PartitionAssignment(graph, n_parts, parts)


@register_partitioner
class VertexCutPartitioner(Partitioner):
    """Greedy edge placement with vertex replication (PowerGraph style).

    Each edge goes to the least-loaded part that already hosts a replica of
    one endpoint (creating a replica otherwise). The vertex-to-part map
    reports each vertex's *primary* replica: the part holding most of its
    edges.
    """

    name = "vertex_cut"

    def partition(self, graph: Graph, n_parts: int) -> PartitionAssignment:
        self._validate(graph, n_parts)
        src, dst, _ = graph.edge_array()
        loads = np.zeros(n_parts, dtype=np.int64)
        # replica_mask[v] is a bitset of parts hosting v (n_parts <= 64 fast
        # path; sets otherwise).
        use_bits = n_parts <= 64
        if use_bits:
            replica_bits = np.zeros(graph.n_vertices, dtype=np.uint64)
        else:
            replica_sets: list[set[int]] = [set() for _ in range(graph.n_vertices)]
        edge_to_part = np.zeros(src.size, dtype=np.int64)
        # Per-(vertex, part) edge counts for primary-replica election.
        vertex_part_edges: dict[tuple[int, int], int] = {}

        for e in range(src.size):
            u, v = int(src[e]), int(dst[e])
            if use_bits:
                common = int(replica_bits[u] | replica_bits[v])
                candidates = [p for p in range(n_parts) if common >> p & 1]
            else:
                candidates = sorted(replica_sets[u] | replica_sets[v])
            if candidates:
                part = min(candidates, key=lambda p: loads[p])
            else:
                part = int(np.argmin(loads))
            edge_to_part[e] = part
            loads[part] += 1
            if use_bits:
                bit = np.uint64(1) << np.uint64(part)
                replica_bits[u] |= bit
                replica_bits[v] |= bit
            else:
                replica_sets[u].add(part)
                replica_sets[v].add(part)
            vertex_part_edges[(u, part)] = vertex_part_edges.get((u, part), 0) + 1
            vertex_part_edges[(v, part)] = vertex_part_edges.get((v, part), 0) + 1

        vertex_to_part = np.zeros(graph.n_vertices, dtype=np.int64)
        best_count = np.full(graph.n_vertices, -1, dtype=np.int64)
        for (vertex, part), count in vertex_part_edges.items():
            if count > best_count[vertex]:
                best_count[vertex] = count
                vertex_to_part[vertex] = part
        # Isolated vertices spread round-robin.
        isolated = np.flatnonzero(best_count < 0)
        vertex_to_part[isolated] = isolated % n_parts
        return PartitionAssignment(graph, n_parts, vertex_to_part, edge_to_part)
