"""Graph partition strategies (paper §3.2).

AliGraph ships four built-in partitioners, each suited to a different regime:
METIS-style multilevel for sparse graphs, vertex/edge cut for dense graphs,
2-D partition when the worker count is fixed, and streaming partition for
graphs with frequent edge updates. All are plugins behind the
:class:`Partitioner` interface and new ones can be registered.
"""

from repro.storage.partition.base import (
    PartitionAssignment,
    Partitioner,
    get_partitioner,
    register_partitioner,
)
from repro.storage.partition.hashcut import EdgeCutPartitioner, VertexCutPartitioner
from repro.storage.partition.metis import MetisPartitioner
from repro.storage.partition.streaming import StreamingPartitioner
from repro.storage.partition.twodim import TwoDimPartitioner

__all__ = [
    "Partitioner",
    "PartitionAssignment",
    "register_partitioner",
    "get_partitioner",
    "EdgeCutPartitioner",
    "VertexCutPartitioner",
    "MetisPartitioner",
    "TwoDimPartitioner",
    "StreamingPartitioner",
]
