"""METIS-style multilevel partitioner (paper §3.2, Karypis & Kumar [27]).

The real METIS is a C library; this is a from-scratch Python implementation
of the same multilevel scheme, which the paper recommends for sparse graphs:

1. **Coarsen** — repeated heavy-edge matching collapses matched vertex pairs
   until the graph is small;
2. **Initial partition** — greedy BFS region growing splits the coarsest
   graph into ``p`` balanced parts;
3. **Uncoarsen + refine** — the partition is projected back level by level
   with boundary Kernighan–Lin/Fiduccia–Mattheyses style moves reducing the
   edge cut while keeping balance.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.storage.partition.base import (
    PartitionAssignment,
    Partitioner,
    register_partitioner,
)
from repro.utils.rng import make_rng


class _Level:
    """One coarsening level: weighted adjacency + projection map."""

    def __init__(
        self,
        adj: list[dict[int, float]],
        vertex_weights: np.ndarray,
        fine_to_coarse: np.ndarray | None,
    ) -> None:
        self.adj = adj
        self.vertex_weights = vertex_weights
        self.fine_to_coarse = fine_to_coarse  # None at the finest level

    @property
    def n(self) -> int:
        return len(self.adj)


def _graph_to_adj(graph: Graph) -> list[dict[int, float]]:
    """Symmetrized weighted adjacency dicts (self-loops dropped)."""
    adj: list[dict[int, float]] = [dict() for _ in range(graph.n_vertices)]
    src, dst, w = graph.edge_array()
    for u, v, wt in zip(src, dst, w):
        u, v = int(u), int(v)
        if u == v:
            continue
        adj[u][v] = adj[u].get(v, 0.0) + float(wt)
        adj[v][u] = adj[v].get(u, 0.0) + float(wt)
    return adj


def _heavy_edge_matching(
    adj: list[dict[int, float]], rng: np.random.Generator
) -> np.ndarray:
    """Match each unmatched vertex with its heaviest unmatched neighbor."""
    n = len(adj)
    match = -np.ones(n, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        v = int(v)
        if match[v] >= 0:
            continue
        best, best_w = -1, -1.0
        for u, wt in adj[v].items():
            if match[u] < 0 and wt > best_w:
                best, best_w = u, wt
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v  # matched with itself
    return match


def _coarsen(level: _Level, rng: np.random.Generator) -> _Level:
    """Collapse matched pairs into coarse vertices."""
    match = _heavy_edge_matching(level.adj, rng)
    n = level.n
    fine_to_coarse = -np.ones(n, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if fine_to_coarse[v] >= 0:
            continue
        fine_to_coarse[v] = next_id
        partner = int(match[v])
        if partner != v:
            fine_to_coarse[partner] = next_id
        next_id += 1
    coarse_adj: list[dict[int, float]] = [dict() for _ in range(next_id)]
    coarse_w = np.zeros(next_id, dtype=np.float64)
    for v in range(n):
        cv = int(fine_to_coarse[v])
        coarse_w[cv] += level.vertex_weights[v]
        for u, wt in level.adj[v].items():
            cu = int(fine_to_coarse[u])
            if cu == cv:
                continue
            coarse_adj[cv][cu] = coarse_adj[cv].get(cu, 0.0) + wt
    return _Level(coarse_adj, coarse_w, fine_to_coarse)


def _initial_partition(
    level: _Level, n_parts: int, rng: np.random.Generator
) -> np.ndarray:
    """Greedy BFS region growing into weight-balanced parts."""
    n = level.n
    total_w = level.vertex_weights.sum()
    target = total_w / n_parts
    part = -np.ones(n, dtype=np.int64)
    part_w = np.zeros(n_parts, dtype=np.float64)
    unassigned = set(range(n))
    for p in range(n_parts - 1):
        if not unassigned:
            break
        seed = int(rng.choice(sorted(unassigned)))
        queue = [seed]
        while queue and part_w[p] < target:
            v = queue.pop(0)
            if part[v] >= 0:
                continue
            part[v] = p
            part_w[p] += level.vertex_weights[v]
            unassigned.discard(v)
            for u in level.adj[v]:
                if part[u] < 0:
                    queue.append(u)
        # BFS exhausted its component early: continue from another seed.
        while part_w[p] < target and unassigned:
            v = int(rng.choice(sorted(unassigned)))
            part[v] = p
            part_w[p] += level.vertex_weights[v]
            unassigned.discard(v)
    for v in list(unassigned):
        part[v] = n_parts - 1
    return part


def _refine(
    level: _Level,
    part: np.ndarray,
    n_parts: int,
    max_passes: int,
    balance_slack: float,
) -> np.ndarray:
    """Boundary KL/FM refinement: greedy gain moves preserving balance."""
    part = part.copy()
    weights = level.vertex_weights
    part_w = np.zeros(n_parts, dtype=np.float64)
    for v in range(level.n):
        part_w[part[v]] += weights[v]
    max_w = balance_slack * weights.sum() / n_parts
    for _ in range(max_passes):
        moved = 0
        for v in range(level.n):
            home = int(part[v])
            # Edge weight toward each adjacent part.
            toward: dict[int, float] = {}
            for u, wt in level.adj[v].items():
                toward[int(part[u])] = toward.get(int(part[u]), 0.0) + wt
            internal = toward.get(home, 0.0)
            best_gain, best_part = 0.0, home
            for p, wt in toward.items():
                if p == home:
                    continue
                if part_w[p] + weights[v] > max_w:
                    continue
                gain = wt - internal
                if gain > best_gain:
                    best_gain, best_part = gain, p
            if best_part != home:
                part[v] = best_part
                part_w[home] -= weights[v]
                part_w[best_part] += weights[v]
                moved += 1
        if moved == 0:
            break
    return part


@register_partitioner
class MetisPartitioner(Partitioner):
    """Multilevel partitioner in the METIS family.

    Parameters
    ----------
    coarsen_to:
        Stop coarsening once the graph has at most ``max(coarsen_to,
        20 * n_parts)`` vertices.
    refine_passes:
        Boundary refinement sweeps per uncoarsening level.
    balance_slack:
        Allowed imbalance: max part weight / ideal (METIS default ~1.03;
        we default looser since graphs here are small).
    """

    name = "metis"

    def __init__(
        self,
        coarsen_to: int = 100,
        refine_passes: int = 4,
        balance_slack: float = 1.1,
        seed: int = 0,
    ) -> None:
        self.coarsen_to = coarsen_to
        self.refine_passes = refine_passes
        self.balance_slack = balance_slack
        self.seed = seed

    def partition(self, graph: Graph, n_parts: int) -> PartitionAssignment:
        self._validate(graph, n_parts)
        rng = make_rng(self.seed)
        if n_parts == 1:
            return PartitionAssignment(
                graph, 1, np.zeros(graph.n_vertices, dtype=np.int64)
            )
        finest = _Level(
            _graph_to_adj(graph),
            np.ones(graph.n_vertices, dtype=np.float64),
            fine_to_coarse=None,
        )
        levels = [finest]
        floor = max(self.coarsen_to, 20 * n_parts)
        while levels[-1].n > floor:
            coarser = _coarsen(levels[-1], rng)
            if coarser.n >= levels[-1].n * 0.95:
                break  # matching stalled (e.g. star graphs) — stop coarsening
            levels.append(coarser)

        part = _initial_partition(levels[-1], n_parts, rng)
        part = _refine(
            levels[-1], part, n_parts, self.refine_passes, self.balance_slack
        )
        # Project back through the levels, refining at each.
        for level in reversed(levels[1:]):
            assert level.fine_to_coarse is not None
            finer = levels[levels.index(level) - 1]
            part = part[level.fine_to_coarse]
            part = _refine(finer, part, n_parts, self.refine_passes, self.balance_slack)
        return PartitionAssignment(graph, n_parts, part)
