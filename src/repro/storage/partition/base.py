"""Partitioner plugin interface and partition quality metrics.

Following Algorithm 2 (lines 1–4), the cluster places each edge ``(u, v)`` on
the worker ``ASSIGN(u)`` — the graph "is partitioned by source vertices"
(§3.3). A :class:`PartitionAssignment` therefore always carries a
vertex-to-part map; vertex-cut style strategies may additionally carry an
explicit edge-to-part map, with the vertex map giving each vertex's primary
replica.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph


class PartitionAssignment:
    """The result of partitioning ``graph`` into ``n_parts`` workers."""

    def __init__(
        self,
        graph: Graph,
        n_parts: int,
        vertex_to_part: np.ndarray,
        edge_to_part: np.ndarray | None = None,
    ) -> None:
        vertex_to_part = np.asarray(vertex_to_part, dtype=np.int64)
        if vertex_to_part.shape != (graph.n_vertices,):
            raise PartitionError("vertex_to_part must have one entry per vertex")
        if n_parts < 1:
            raise PartitionError(f"n_parts must be positive, got {n_parts}")
        if vertex_to_part.size and (
            vertex_to_part.min() < 0 or vertex_to_part.max() >= n_parts
        ):
            raise PartitionError("vertex part ids out of range")
        self.graph = graph
        self.n_parts = n_parts
        self.vertex_to_part = vertex_to_part
        if edge_to_part is None:
            # Source-vertex placement: edge (u, v) lives where u lives.
            src, _, _ = graph.edge_array()
            edge_to_part = vertex_to_part[src]
        else:
            edge_to_part = np.asarray(edge_to_part, dtype=np.int64)
            if edge_to_part.shape != (graph.n_edges,):
                raise PartitionError("edge_to_part must have one entry per edge")
        self.edge_to_part = edge_to_part
        # Lazily cached edge-source column for reassign_vertex.
        self._edge_src: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Quality metrics
    # ------------------------------------------------------------------ #
    def crossing_edges(self) -> int:
        """Edges whose endpoints live on different workers (the cut)."""
        src, dst, _ = self.graph.edge_array()
        return int(np.sum(self.vertex_to_part[src] != self.vertex_to_part[dst]))

    def edge_cut_fraction(self) -> float:
        """Fraction of edges crossing the cut — the minimization target."""
        m = self.graph.n_edges
        return self.crossing_edges() / m if m else 0.0

    def vertex_counts(self) -> np.ndarray:
        """Vertices per part."""
        return np.bincount(self.vertex_to_part, minlength=self.n_parts)

    def edge_counts(self) -> np.ndarray:
        """Edges per part (by edge placement)."""
        return np.bincount(self.edge_to_part, minlength=self.n_parts)

    def balance(self) -> float:
        """max part size / mean part size (1.0 = perfectly balanced)."""
        counts = self.vertex_counts()
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0

    def replication_factor(self) -> float:
        """Average replicas per non-isolated vertex under edge placement.

        A vertex is replicated on every part holding one of its edges; 1.0
        means no replication. Isolated vertices (no edges, hence no
        replicas) are excluded from the denominator.
        """
        src, dst, _ = self.graph.edge_array()
        replicas: set[tuple[int, int]] = set()
        touched: set[int] = set()
        for u, v, p in zip(src, dst, self.edge_to_part):
            replicas.add((int(u), int(p)))
            replicas.add((int(v), int(p)))
            touched.add(int(u))
            touched.add(int(v))
        return len(replicas) / len(touched) if touched else 1.0

    def part_vertices(self, part: int) -> np.ndarray:
        """Vertex ids owned by ``part``."""
        if not 0 <= part < self.n_parts:
            raise PartitionError(f"part {part} out of range [0, {self.n_parts})")
        return np.flatnonzero(self.vertex_to_part == part)

    def reassign_vertex(self, vertex: int, part: int) -> int:
        """Move ``vertex`` to ``part`` (incremental repartitioning commit).

        Keeps the source-placement invariant: edges whose source is
        ``vertex`` follow it to the new part. Returns the previous owner.
        """
        if not 0 <= part < self.n_parts:
            raise PartitionError(f"part {part} out of range [0, {self.n_parts})")
        vertex = int(vertex)
        if not 0 <= vertex < self.graph.n_vertices:
            raise PartitionError(f"vertex {vertex} out of range")
        previous = int(self.vertex_to_part[vertex])
        if previous == part:
            return previous
        self.vertex_to_part[vertex] = part
        if self._edge_src is None:
            self._edge_src, _, _ = self.graph.edge_array()
        self.edge_to_part[self._edge_src == vertex] = part
        return previous


class Partitioner:
    """Base class for partition strategies (plugin interface).

    Subclasses implement :meth:`partition`; ``name`` keys the registry so
    users can select a strategy by string and register their own.
    """

    name = "abstract"

    def partition(self, graph: Graph, n_parts: int) -> PartitionAssignment:
        """Divide ``graph`` into ``n_parts`` workers."""
        raise NotImplementedError

    def _validate(self, graph: Graph, n_parts: int) -> None:
        if n_parts < 1:
            raise PartitionError(f"n_parts must be positive, got {n_parts}")
        if graph.n_vertices == 0:
            raise PartitionError("cannot partition an empty graph")


_REGISTRY: dict[str, type[Partitioner]] = {}


def register_partitioner(cls: type[Partitioner]) -> type[Partitioner]:
    """Class decorator adding a partitioner to the plugin registry."""
    if not cls.name or cls.name == "abstract":
        raise PartitionError("partitioner plugins need a unique name")
    _REGISTRY[cls.name] = cls
    return cls


def get_partitioner(name: str, **kwargs: object) -> Partitioner:
    """Instantiate a registered partitioner by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PartitionError(f"unknown partitioner {name!r} (known: {known})") from None
    return cls(**kwargs)  # type: ignore[arg-type]


def available_partitioners() -> list[str]:
    """Names of all registered partition strategies."""
    return sorted(_REGISTRY)
