"""Streaming-style partition (paper §3.2, Stanton & Kliot [45]).

Linear Deterministic Greedy (LDG): vertices arrive as a stream with their
neighbor lists and each is assigned — once, immediately — to the part
maximizing ``|N(v) ∩ P_i| · (1 - |P_i| / C)`` where ``C`` is the per-part
capacity. One pass, O(m), and naturally incremental: the paper recommends it
for graphs with frequent edge updates, and the distributed build benchmark
(Figure 7) uses it as the update-friendly option.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.storage.partition.base import (
    PartitionAssignment,
    Partitioner,
    register_partitioner,
)
from repro.utils.rng import make_rng


@register_partitioner
class StreamingPartitioner(Partitioner):
    """One-pass LDG partitioner.

    Parameters
    ----------
    order:
        Stream order of vertices: ``"natural"`` (id order), ``"random"`` or
        ``"bfs"`` (breadth-first from vertex 0, the friendliest order for
        LDG in the original paper).
    slack:
        Capacity multiplier: each part may hold ``slack * n / p`` vertices.
    """

    name = "streaming"

    def __init__(self, order: str = "bfs", slack: float = 1.1, seed: int = 0) -> None:
        if order not in ("natural", "random", "bfs"):
            raise ValueError(f"unknown stream order {order!r}")
        if slack < 1.0:
            raise ValueError(f"slack must be >= 1.0, got {slack}")
        self.order = order
        self.slack = slack
        self.seed = seed

    def _stream_order(self, graph: Graph) -> np.ndarray:
        n = graph.n_vertices
        if self.order == "natural":
            return np.arange(n, dtype=np.int64)
        if self.order == "random":
            return make_rng(self.seed).permutation(n).astype(np.int64)
        # BFS order over (possibly several) components.
        seen = np.zeros(n, dtype=bool)
        order: list[int] = []
        for root in range(n):
            if seen[root]:
                continue
            seen[root] = True
            queue = [root]
            while queue:
                u = queue.pop(0)
                order.append(u)
                for w in graph.out_neighbors(u):
                    w = int(w)
                    if not seen[w]:
                        seen[w] = True
                        queue.append(w)
        return np.asarray(order, dtype=np.int64)

    def partition(self, graph: Graph, n_parts: int) -> PartitionAssignment:
        self._validate(graph, n_parts)
        n = graph.n_vertices
        capacity = max(1.0, self.slack * n / n_parts)
        part_of = -np.ones(n, dtype=np.int64)
        sizes = np.zeros(n_parts, dtype=np.float64)
        for v in self._stream_order(graph):
            nbrs = graph.out_neighbors(int(v))
            placed = part_of[nbrs]
            placed = placed[placed >= 0]
            overlap = np.bincount(placed, minlength=n_parts).astype(np.float64)
            score = overlap * (1.0 - sizes / capacity)
            # Full parts are ineligible; ties break to the emptiest part so a
            # neighbor-less vertex still balances the stream.
            score[sizes >= capacity] = -np.inf
            best = int(np.argmax(score + 1e-9 * (1.0 - sizes / capacity)))
            part_of[v] = best
            sizes[best] += 1.0
        return PartitionAssignment(graph, n_parts, part_of)
