"""2-D graph partition (paper §3.2, Boman et al. [3]).

The 2-D scheme views the adjacency matrix as a ``pr × pc`` grid of blocks:
vertices are range-partitioned into ``pr`` row blocks and ``pc`` column
blocks, and edge ``(u, v)`` is stored on worker ``(rowblock(u),
colblock(v))``. The paper notes it is "often used when the number of workers
is fixed" — the grid shape is chosen once from ``p`` and vertex placement is
then purely arithmetic, which is what we implement (with the squarest
factorization of ``p`` picked automatically).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.storage.partition.base import (
    PartitionAssignment,
    Partitioner,
    register_partitioner,
)


def squarest_grid(p: int) -> tuple[int, int]:
    """Factor ``p`` as ``pr * pc`` with the factors as close as possible."""
    if p < 1:
        raise PartitionError(f"worker count must be positive, got {p}")
    for pr in range(int(np.sqrt(p)), 0, -1):
        if p % pr == 0:
            return pr, p // pr
    return 1, p


@register_partitioner
class TwoDimPartitioner(Partitioner):
    """Grid (2-D block) partitioner.

    ``vertex_to_part`` places vertex ``v`` on the diagonal-ish worker of its
    row block (its primary replica); ``edge_to_part`` holds the true 2-D
    placement ``(rowblock(src), colblock(dst))``.
    """

    name = "2d"

    def __init__(self, grid: "tuple[int, int] | None" = None) -> None:
        self.grid = grid

    def partition(self, graph: Graph, n_parts: int) -> PartitionAssignment:
        self._validate(graph, n_parts)
        pr, pc = self.grid if self.grid is not None else squarest_grid(n_parts)
        if pr * pc != n_parts:
            raise PartitionError(
                f"grid {pr}x{pc} does not match n_parts={n_parts}"
            )
        n = graph.n_vertices
        row_block = np.minimum(
            (np.arange(n, dtype=np.int64) * pr) // max(n, 1), pr - 1
        )
        col_block = np.minimum(
            (np.arange(n, dtype=np.int64) * pc) // max(n, 1), pc - 1
        )
        src, dst, _ = graph.edge_array()
        edge_to_part = row_block[src] * pc + col_block[dst]
        # Primary replica: keep each vertex inside its row block (so its
        # out-edges are row-local) but spread across the block's pc workers
        # for balance.
        vertex_to_part = row_block * pc + (np.arange(n, dtype=np.int64) % pc)
        return PartitionAssignment(graph, n_parts, vertex_to_part, edge_to_part)
