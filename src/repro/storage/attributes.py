"""Separate storage of structure and attributes (paper §3.2).

The paper's storage layer keeps the adjacency table free of attribute
payloads: each vertex/edge row stores only an integer handle into a
deduplicating attribute index (``IV`` for vertices, ``IE`` for edges). The
two stated reasons are (1) attributes are 1–3 orders of magnitude larger than
an 8-byte id, and (2) attribute values overlap heavily across vertices
("many vertices share the tag 'man'"). An LRU cache fronts each index to
absorb the extra indirection.

:class:`AttributeIndex` is the deduplicating store; :class:`SeparateAttributeStore`
wires two of them (vertices + edges) behind LRU caches and accounts the space
saved versus inline storage: ``O(n·N_D·N_L)`` inline vs
``O(n·N_D + N_A·N_L)`` separated.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.utils.lru import LRUCache

#: Bytes to store one id/handle in the adjacency table (paper: "at most 8").
HANDLE_BYTES = 8


class AttributeIndex:
    """Deduplicating index of attribute payloads.

    ``intern`` maps a payload (any byte string / encoded feature row) to a
    stable integer handle, storing each distinct payload once. ``lookup``
    returns the payload for a handle. Eviction never happens — the index is
    the ground-truth store; caching is layered on top.
    """

    def __init__(self) -> None:
        self._payloads: list[bytes] = []
        self._handle_of: dict[bytes, int] = {}

    def __len__(self) -> int:
        return len(self._payloads)

    def intern(self, payload: bytes) -> int:
        """Return the handle for ``payload``, storing it if new."""
        if not isinstance(payload, bytes):
            raise StorageError("attribute payloads must be bytes")
        handle = self._handle_of.get(payload)
        if handle is None:
            handle = len(self._payloads)
            self._handle_of[payload] = handle
            self._payloads.append(payload)
        return handle

    def intern_vector(self, vector: np.ndarray) -> int:
        """Intern a float feature row (canonical float32 byte encoding)."""
        return self.intern(np.ascontiguousarray(vector, dtype=np.float32).tobytes())

    def lookup(self, handle: int) -> bytes:
        """Payload bytes for ``handle``."""
        if not 0 <= handle < len(self._payloads):
            raise StorageError(f"unknown attribute handle {handle}")
        return self._payloads[handle]

    def lookup_vector(self, handle: int) -> np.ndarray:
        """Decode a handle interned by :meth:`intern_vector`."""
        return np.frombuffer(self.lookup(handle), dtype=np.float32)

    def stored_bytes(self) -> int:
        """Total bytes of distinct payloads held (N_A · N_L)."""
        return sum(len(p) for p in self._payloads)


class SeparateAttributeStore:
    """Vertex + edge attribute indices behind LRU caches (IV and IE).

    Parameters
    ----------
    vertex_cache_capacity, edge_cache_capacity:
        Entries each LRU cache may hold (0 disables caching).
    """

    def __init__(
        self,
        vertex_cache_capacity: int = 1024,
        edge_cache_capacity: int = 1024,
    ) -> None:
        self.iv = AttributeIndex()
        self.ie = AttributeIndex()
        self.iv_cache = LRUCache(vertex_cache_capacity)
        self.ie_cache = LRUCache(edge_cache_capacity)
        self._vertex_handle: dict[int, int] = {}
        self._edge_handle: dict[int, int] = {}
        self._inline_bytes = 0  # what inline storage would have cost

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def put_vertex_attr(self, vertex: int, vector: np.ndarray) -> int:
        """Intern vertex ``vertex``'s attribute row; returns its handle."""
        handle = self.iv.intern_vector(np.asarray(vector))
        self._vertex_handle[vertex] = handle
        self._inline_bytes += np.asarray(vector, dtype=np.float32).nbytes
        return handle

    def put_edge_attr(self, edge_id: int, vector: np.ndarray) -> int:
        """Intern edge ``edge_id``'s attribute row; returns its handle."""
        handle = self.ie.intern_vector(np.asarray(vector))
        self._edge_handle[edge_id] = handle
        self._inline_bytes += np.asarray(vector, dtype=np.float32).nbytes
        return handle

    # ------------------------------------------------------------------ #
    # Reads (through the LRU caches)
    # ------------------------------------------------------------------ #
    def get_vertex_attr(self, vertex: int) -> np.ndarray:
        """Attribute row of ``vertex``, served from the IV cache if hot."""
        if vertex not in self._vertex_handle:
            raise StorageError(f"vertex {vertex} has no stored attributes")
        cached = self.iv_cache.get(vertex)
        if cached is not None:
            return cached
        value = self.iv.lookup_vector(self._vertex_handle[vertex])
        self.iv_cache.put(vertex, value)
        return value

    def get_edge_attr(self, edge_id: int) -> np.ndarray:
        """Attribute row of edge ``edge_id``, served from the IE cache if hot."""
        if edge_id not in self._edge_handle:
            raise StorageError(f"edge {edge_id} has no stored attributes")
        cached = self.ie_cache.get(edge_id)
        if cached is not None:
            return cached
        value = self.ie.lookup_vector(self._edge_handle[edge_id])
        self.ie_cache.put(edge_id, value)
        return value

    def has_vertex_attr(self, vertex: int) -> bool:
        """Whether ``vertex`` has stored attributes."""
        return vertex in self._vertex_handle

    def remove_vertex_attr(self, vertex: int) -> "np.ndarray | None":
        """Drop ``vertex``'s attribute mapping; returns the row or None.

        Used when ownership of a vertex migrates away: the handle mapping
        and any cached decode leave with it. The interned payload stays in
        the dedup index (other vertices may share it), but the inline-cost
        counter is rolled back so space accounting tracks live rows only.
        """
        handle = self._vertex_handle.pop(vertex, None)
        if handle is None:
            return None
        self.iv_cache.delete(vertex)
        value = self.iv.lookup_vector(handle)
        self._inline_bytes -= value.nbytes
        return value

    # ------------------------------------------------------------------ #
    # Space accounting (the §3.2 cost comparison)
    # ------------------------------------------------------------------ #
    def separated_bytes(self) -> int:
        """Bytes used by separate storage: handles + deduped payloads."""
        handles = (len(self._vertex_handle) + len(self._edge_handle)) * HANDLE_BYTES
        return handles + self.iv.stored_bytes() + self.ie.stored_bytes()

    def inline_bytes(self) -> int:
        """Bytes inline storage would use (every row repeats its payload)."""
        return self._inline_bytes

    def space_saving_ratio(self) -> float:
        """inline / separated — how many times smaller the separated layout is."""
        sep = self.separated_bytes()
        return self._inline_bytes / sep if sep else 0.0
