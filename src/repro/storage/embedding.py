"""Partitioned, versioned embedding KV store served over the RPC runtime.

AliGraph trains its embedding tables through a parameter-server tier: rows
are hash-partitioned across the graph servers, workers **pull** the rows a
minibatch touches and **push** back row-sparse gradients, and the server
applies the optimizer update in place. This module reproduces that tier on
the simulated cluster:

* :class:`EmbeddingShard` — one server's slice of a table (``owner = id %
  n_parts``, ``local = id // n_parts``) plus its optimizer state. Updates
  are applied with the *same* :class:`~repro.nn.optim.SparseAdam` /
  :class:`~repro.nn.optim.SparseAdagrad` code the in-process dense path
  uses, so a KV training run's touched rows are bit-identical to the
  single-process reference.
* :class:`EmbeddingKVStore` — the client face. ``pull``/``push`` ride the
  :class:`~repro.runtime.rpc.RpcRuntime` as registered service kinds
  (``emb.pull/<name>``, ``emb.push/<name>``): the same inboxes, fault
  injection, retries, virtual-clock accounting and metrics as graph reads.
  Reads follow the store's ``_resolve_read`` conventions — dedup up front,
  local rows answered directly, remote rows coalesced into one request per
  owning server, ledger events recorded client-side in deterministic order.
* **Versions and bounded staleness** — every row carries a version bumped
  on each applied update. The client keeps a pull cache tagged with a
  *push-round* clock (incremented per :meth:`EmbeddingKVStore.push`); an
  entry is served while it is at most ``staleness`` rounds old. A row's
  version advances at most once per round it is touched, so a cache hit is
  never more than ``staleness`` versions behind the shard — ``staleness=0``
  still allows exact hits within the current round. Pushed rows are
  invalidated eagerly (write-invalidate), so a worker never reads its own
  writes stale.
* **Failure semantics** — embedding rows have no replicas: a pull or push
  that exhausts the retry budget raises
  :class:`~repro.errors.RetryExhaustedError`. Transient drops and timeouts
  are retried by the runtime; the simulation only *serves* a request on its
  final successful delivery, so a retried push applies exactly once.

:meth:`EmbeddingKVStore.minibatch` is the training-loop helper: it pulls
the deduplicated union of a step's id arrays once, exposes differentiable
:meth:`EmbeddingMinibatch.lookup` views over the pulled block, and
:meth:`EmbeddingMinibatch.push` ships the coalesced row gradients back.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RetryExhaustedError, StorageError
from repro.nn.init import embedding_init
from repro.nn.optim import SparseAdagrad, SparseAdam
from repro.nn.tensor import SparseGrad, Tensor
from repro.runtime.batching import RequestBatcher
from repro.storage.costmodel import (
    EV_EMB_CACHE_HIT,
    EV_EMB_LOCAL_ROW,
    EV_EMB_ROW_UPDATE,
    EV_ITEM_SHIPPED,
    EV_REMOTE_RPC,
)
from repro.utils.rng import make_rng

#: Optimizers a shard can apply server-side. Both update only touched rows
#: and match their in-process sparse counterparts bit-for-bit (they *are*
#: the same code).
_OPTIMIZERS = {"adam": SparseAdam, "adagrad": SparseAdagrad}


class EmbeddingShard:
    """One server's rows of a partitioned table, with optimizer state.

    The shard owns every row whose global id hashes to its partition
    (``id % n_parts == part``) at local index ``id // n_parts``. Pushes are
    applied by the shard's own sparse optimizer — gradients never leave the
    server as dense tables, and untouched rows are never written.
    """

    def __init__(
        self,
        part: int,
        rows: np.ndarray,
        optimizer: str,
        lr: float,
        opt_kwargs: "dict | None" = None,
    ) -> None:
        self.part = part
        self.param = Tensor(rows, requires_grad=True, name=f"shard{part}")
        self.param.accumulates_sparse = True
        #: Per-row update counter: bumped once per applied push touching
        #: the row. The staleness bound is stated against these.
        self.versions = np.zeros(rows.shape[0], dtype=np.int64)
        self.applied_pushes = 0
        self._opt = _OPTIMIZERS[optimizer](
            [self.param], lr=lr, **(opt_kwargs or {})
        )

    @property
    def rows(self) -> np.ndarray:
        """The shard's ``(n_local, dim)`` row block (live view)."""
        return self.param.data

    def read(self, local_ids: np.ndarray) -> np.ndarray:
        """Copies of the requested local rows."""
        return self.param.data[local_ids].copy()

    def apply(self, local_ids: np.ndarray, grad_rows: np.ndarray) -> None:
        """Apply one coalesced gradient batch through the sparse optimizer.

        ``local_ids`` must be unique (the client coalesces before
        shipping); the optimizer state advances exactly as the in-process
        sparse path would for the same rows and gradients.
        """
        sg = SparseGrad(self.param.data.shape)
        sg.append(local_ids, grad_rows)
        self.param.sparse_grad = sg
        self._opt.step()
        self.param.zero_grad()
        self.versions[local_ids] += 1
        self.applied_pushes += 1


class EmbeddingMinibatch:
    """One training step's pulled row block, with autograd lookups.

    Constructed by :meth:`EmbeddingKVStore.minibatch`; ``lookup`` maps
    global id arrays to differentiable tensors over the pulled block, and
    ``push`` ships the accumulated row-sparse gradient back to the shards.
    """

    def __init__(
        self,
        kv: "EmbeddingKVStore",
        ids: np.ndarray,
        rows: np.ndarray,
        from_part: int,
    ) -> None:
        self._kv = kv
        #: Sorted unique global ids backing :attr:`tensor`'s rows.
        self.ids = ids
        self.tensor = Tensor(rows, requires_grad=True, name="minibatch")
        self.tensor.accumulates_sparse = True
        self._from_part = from_part

    def lookup(self, ids: np.ndarray) -> Tensor:
        """Differentiable rows for ``ids`` (must be within the minibatch)."""
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        idx = np.searchsorted(self.ids, ids)
        idx = np.minimum(idx, self.ids.size - 1) if self.ids.size else idx
        if self.ids.size == 0 or not np.array_equal(self.ids[idx], ids):
            raise StorageError("lookup id outside the pulled minibatch")
        return self.tensor.gather_rows(idx)

    def push(self) -> int:
        """Ship the accumulated gradient to the shards; rows pushed.

        A no-op (returning 0) when backward never reached this minibatch.
        Clears the local gradient so a minibatch can be pushed only once
        per backward.
        """
        sg = self.tensor.sparse_grad
        if sg is None or not len(sg):
            return 0
        local_ids, grad_rows = sg.coalesce()
        self.tensor.zero_grad()
        self._kv.push(self.ids[local_ids], grad_rows, from_part=self._from_part)
        return int(local_ids.size)


class EmbeddingKVStore:
    """Hash-partitioned, versioned embedding table over the RPC runtime.

    One instance is one named table; its pull/push verbs register on the
    graph store's runtime as service kinds ``emb.pull/<name>`` and
    ``emb.push/<name>`` (create the KV *after* attaching a custom runtime).
    ``staleness`` bounds how many push rounds old a cached row may be
    served; ``0`` (the default) means reads are exact.
    """

    def __init__(
        self,
        store: "object",
        n_rows: int,
        dim: int,
        name: str = "emb",
        optimizer: str = "adam",
        lr: float = 1e-2,
        opt_kwargs: "dict | None" = None,
        staleness: int = 0,
        init: "np.ndarray | None" = None,
        scale: "float | None" = None,
        seed: int = 0,
    ) -> None:
        if n_rows < 1 or dim < 1:
            raise StorageError(
                f"embedding table needs n_rows, dim >= 1, got ({n_rows}, {dim})"
            )
        if optimizer not in _OPTIMIZERS:
            raise StorageError(
                f"unknown embedding optimizer {optimizer!r} "
                f"(choose from {sorted(_OPTIMIZERS)})"
            )
        if staleness < 0:
            raise StorageError(f"staleness bound must be >= 0, got {staleness}")
        self.store = store
        self.n_rows = n_rows
        self.dim = dim
        self.name = name
        self.staleness = staleness
        self.runtime = store._ensure_runtime()
        self.n_parts = store.n_workers
        self.kind_pull = f"emb.pull/{name}"
        self.kind_push = f"emb.push/{name}"
        self.runtime.register_service(self.kind_pull, self._serve_pull)
        self.runtime.register_service(self.kind_push, self._serve_push)
        self._batcher = RequestBatcher(self.runtime.max_batch_size)

        if init is None:
            init = embedding_init((n_rows, dim), make_rng(seed), scale=scale)
        else:
            init = np.asarray(init, dtype=np.float64)
            if init.shape != (n_rows, dim):
                raise StorageError(
                    f"init table shape {init.shape} != ({n_rows}, {dim})"
                )
        self.shards = [
            EmbeddingShard(
                p, init[p :: self.n_parts].copy(), optimizer, lr, opt_kwargs
            )
            for p in range(self.n_parts)
        ]
        #: Per-issuer pull caches: ``from_part -> {global id -> (row copy,
        #: version at pull, push round at pull)}``. A worker's own pushes
        #: invalidate its own cache (read-your-writes); other workers may
        #: keep serving their cached copy until it ages past ``staleness``
        #: rounds — that age is exactly the version lag bound, because a
        #: row's version advances at most once per push round.
        self._caches: "dict[int, dict[int, tuple[np.ndarray, int, int]]]" = {}
        #: Push-round clock: bumped once per :meth:`push` call.
        self._round = 0

    # ------------------------------------------------------------------ #
    # Server side (runtime service handlers)
    # ------------------------------------------------------------------ #
    def _serve_pull(self, req: "object") -> "tuple[dict, dict, int]":
        """Serve a pull on the destination shard: rows + versions."""
        shard = self.shards[req.dst_part]
        payload: "dict[int, np.ndarray]" = {}
        meta: "dict[int, object]" = {}
        n_items = 0
        for gid in req.vertices:
            li = gid // self.n_parts
            payload[gid] = shard.param.data[li].copy()
            meta[gid] = int(shard.versions[li])
            n_items += self.dim
        return payload, meta, n_items

    def _serve_push(self, req: "object") -> "tuple[dict, dict, int]":
        """Apply a pushed gradient batch on the destination shard.

        The simulation serves a request only on its final successful
        delivery (drops/timeouts reschedule without serving), so retried
        pushes apply exactly once.
        """
        shard = self.shards[req.dst_part]
        ids = np.asarray(req.vertices, dtype=np.int64)
        grad_rows = np.asarray(req.body, dtype=np.float64)
        if grad_rows.shape != (ids.size, self.dim):
            raise StorageError(
                f"push body shape {grad_rows.shape} != ({ids.size}, {self.dim})"
            )
        shard.apply(ids // self.n_parts, grad_rows)
        meta = {
            int(gid): int(shard.versions[gid // self.n_parts])
            for gid in req.vertices
        }
        return {}, meta, int(grad_rows.size)

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def _validate(self, ids: np.ndarray) -> np.ndarray:
        arr = np.asarray(ids, dtype=np.int64).reshape(-1)
        if arr.size:
            oob = (arr < 0) | (arr >= self.n_rows)
            if oob.any():
                raise StorageError(
                    f"unknown embedding row {int(arr[oob][0])} "
                    f"(table {self.name!r} has {self.n_rows} rows)"
                )
        return arr

    def pull(self, ids: "np.ndarray | list[int]", from_part: int = 0) -> np.ndarray:
        """Rows for ``ids`` (duplicates allowed), aligned with the input.

        Routing per unique id, in order: locally-owned shard row, staleness
        cache, remote — remote ids coalesce into one request per owning
        server. Ledger events mirror the graph read path: one
        ``remote_rpc`` per batch plus ``item_shipped`` per scalar, with
        ``emb_row_local`` / ``emb_cache_hit`` for the RPC-free arms.
        """
        arr = self._validate(ids)
        if arr.size == 0:
            return np.empty((0, self.dim))
        with self.runtime.tracer.span(
            "emb.pull", table=self.name, issuer=from_part
        ) as span:
            uniq, first_idx = np.unique(arr, return_index=True)
            uniq = uniq[np.argsort(first_idx, kind="stable")]
            rows = self._pull_unique(uniq, from_part, span)
        out = np.empty((arr.size, self.dim))
        pos = {int(g): i for i, g in enumerate(uniq.tolist())}
        for i, g in enumerate(arr.tolist()):
            out[i] = rows[pos[g]]
        return out

    def _pull_unique(
        self, uniq: np.ndarray, from_part: int, span: "object"
    ) -> np.ndarray:
        store = self.store
        metrics = self.runtime.metrics
        cache = self._caches.setdefault(from_part, {})
        rows = np.empty((uniq.size, self.dim))
        owners = uniq % self.n_parts
        remote_v: "list[int]" = []
        remote_owner: "list[int]" = []
        remote_slot: "dict[int, int]" = {}
        cache_hits = 0
        for i, (g, owner) in enumerate(zip(uniq.tolist(), owners.tolist())):
            if owner == from_part:
                store.ledger.record(EV_EMB_LOCAL_ROW)
                rows[i] = self.shards[owner].param.data[g // self.n_parts]
                continue
            entry = cache.get(g)
            if entry is not None and self._round - entry[2] <= self.staleness:
                store.ledger.record(EV_EMB_CACHE_HIT)
                rows[i] = entry[0]
                cache_hits += 1
                continue
            remote_v.append(g)
            remote_owner.append(owner)
            remote_slot[g] = i
        span.annotate(
            rows=int(uniq.size),
            local=int(uniq.size) - len(remote_v) - cache_hits,
            cache_hits=cache_hits,
            remote=len(remote_v),
        )
        metrics.counter("emb.pull.rows", labels={"table": self.name}).inc(
            int(uniq.size)
        )
        metrics.counter("emb.pull.cache_hits", labels={"table": self.name}).inc(
            cache_hits
        )
        if not remote_v:
            return rows
        batches = self._batcher.plan_grouped(
            self.kind_pull,
            np.asarray(remote_v, dtype=np.int64),
            np.asarray(remote_owner, dtype=np.int64),
        )
        requests = [
            self.runtime.make_request(b.kind, from_part, b.dst_part, b.vertices)
            for b in batches
        ]
        for req, resp in zip(requests, self.runtime.execute(requests)):
            if not resp.ok:
                raise RetryExhaustedError(
                    f"pull of table {self.name!r} row {req.vertices[0]}: "
                    f"{resp.error}, and embedding rows have no replicas",
                    resp.attempts,
                )
            store.ledger.record(EV_REMOTE_RPC)
            store.ledger.record(
                EV_ITEM_SHIPPED, times=len(resp.payload) * self.dim
            )
            for g, row in resp.payload.items():
                rows[remote_slot[g]] = row
                cache[g] = (row, int(resp.meta[g]), self._round)
        return rows

    def push(
        self,
        ids: "np.ndarray | list[int]",
        grad_rows: np.ndarray,
        from_part: int = 0,
    ) -> None:
        """Apply row gradients (coalescing duplicate ids by summation).

        Locally-owned rows update in place; remote rows ship as one
        request per owning server with the gradient block as the request
        body. Advances the push-round clock and write-invalidates the
        pushed ids in the pull cache.
        """
        arr = self._validate(ids)
        grad_rows = np.asarray(grad_rows, dtype=np.float64)
        if grad_rows.shape != (arr.size, self.dim):
            raise StorageError(
                f"grad shape {grad_rows.shape} != ({arr.size}, {self.dim})"
            )
        if arr.size == 0:
            return
        store = self.store
        with self.runtime.tracer.span(
            "emb.push", table=self.name, issuer=from_part
        ) as span:
            sg = SparseGrad((self.n_rows, self.dim))
            sg.append(arr, grad_rows)
            uniq, summed = sg.coalesce()
            owners = uniq % self.n_parts
            local = owners == from_part
            n_local = int(local.sum())
            span.annotate(rows=int(uniq.size), local=n_local)
            if n_local:
                self.shards[from_part].apply(
                    uniq[local] // self.n_parts, summed[local]
                )
                store.ledger.record(EV_EMB_ROW_UPDATE, times=n_local)
            remote_ids = uniq[~local]
            if remote_ids.size:
                batches = self._batcher.plan_grouped(
                    self.kind_push, remote_ids, owners[~local]
                )
                requests = []
                for b in batches:
                    slots = np.searchsorted(uniq, np.asarray(b.vertices))
                    requests.append(
                        self.runtime.make_request(
                            b.kind,
                            from_part,
                            b.dst_part,
                            b.vertices,
                            body=summed[slots],
                        )
                    )
                for req, resp in zip(requests, self.runtime.execute(requests)):
                    if not resp.ok:
                        raise RetryExhaustedError(
                            f"push to table {self.name!r} row "
                            f"{req.vertices[0]}: {resp.error}, and embedding "
                            "updates cannot be dropped silently",
                            resp.attempts,
                        )
                    store.ledger.record(EV_REMOTE_RPC)
                    shipped = len(req.vertices) * self.dim
                    store.ledger.record(EV_ITEM_SHIPPED, times=shipped)
                    store.ledger.record(
                        EV_EMB_ROW_UPDATE, times=len(req.vertices)
                    )
            self.runtime.metrics.counter(
                "emb.push.rows", labels={"table": self.name}
            ).inc(int(uniq.size))
            self._round += 1
            issuer_cache = self._caches.get(from_part)
            if issuer_cache:
                for g in uniq.tolist():
                    issuer_cache.pop(g, None)

    def minibatch(
        self, *id_arrays: "np.ndarray | list[int]", from_part: int = 0
    ) -> EmbeddingMinibatch:
        """Pull the deduplicated union of ``id_arrays`` once.

        The returned :class:`EmbeddingMinibatch` serves every lookup of the
        step from the single pulled block — the per-step RPC count is one
        coalesced pull per remote shard, regardless of how many id arrays
        (centers, contexts, negatives) the loss touches.
        """
        parts = [self._validate(a) for a in id_arrays]
        ids = (
            np.unique(np.concatenate(parts))
            if parts
            else np.empty(0, dtype=np.int64)
        )
        rows = self.pull(ids, from_part=from_part)
        return EmbeddingMinibatch(self, ids, rows, from_part)

    # ------------------------------------------------------------------ #
    # Inspection (tests, evaluation, checkpointing)
    # ------------------------------------------------------------------ #
    def materialize(self) -> np.ndarray:
        """The full ``(n_rows, dim)`` table, gathered from every shard."""
        out = np.empty((self.n_rows, self.dim))
        for p, shard in enumerate(self.shards):
            out[p :: self.n_parts] = shard.param.data
        return out

    def row_versions(self) -> np.ndarray:
        """Authoritative per-row versions, gathered from every shard."""
        out = np.empty(self.n_rows, dtype=np.int64)
        for p, shard in enumerate(self.shards):
            out[p :: self.n_parts] = shard.versions
        return out

    def cached_version_lag(self) -> int:
        """Max (authoritative - cached) version over live cache entries.

        The staleness bound asserts this never exceeds :attr:`staleness`
        for entries the cache would still serve.
        """
        lag = 0
        versions = self.row_versions()
        for cache in self._caches.values():
            for g, (_, ver, rnd) in cache.items():
                if self._round - rnd <= self.staleness:
                    lag = max(lag, int(versions[g]) - ver)
        return lag
