"""Lock-free request-flow buckets (paper §3.3, Figure 6).

On each graph server, vertices are split into groups; each group gets a
request-flow bucket — a lock-free FIFO queue bound to one CPU core — and all
reads/updates of a vertex are funnelled through its group's bucket, processed
sequentially without locking.

We simulate the scheduling consequence of that design rather than actual
threads: given a request trace, the lock-free makespan is the busiest
bucket's total service time (buckets drain in parallel, no synchronization),
while the lock-based alternative serializes conflicting requests on shared
structures and pays a lock acquisition overhead per request. The ablation
benchmark compares the two makespans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError


@dataclass(frozen=True)
class Request:
    """One storage operation: a read or a (sampler weight) update."""

    vertex: int
    kind: str = "read"  # "read" or "update"
    service_us: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("read", "update"):
            raise StorageError(f"request kind must be read/update: {self.kind!r}")
        if self.service_us <= 0:
            raise StorageError("service time must be positive")


class RequestFlowBuckets:
    """Vertex-group buckets bound to cores, as in Figure 6."""

    def __init__(self, n_vertices: int, n_buckets: int) -> None:
        if n_buckets < 1:
            raise StorageError(f"need at least one bucket, got {n_buckets}")
        if n_vertices < 1:
            raise StorageError("need at least one vertex")
        self.n_vertices = n_vertices
        self.n_buckets = n_buckets

    def bucket_of(self, vertex: int) -> int:
        """The bucket (== core) responsible for ``vertex``'s group."""
        if not 0 <= vertex < self.n_vertices:
            raise StorageError(f"unknown vertex {vertex}")
        return vertex % self.n_buckets

    def route(self, requests: "list[Request]") -> list[list[Request]]:
        """Distribute a request trace into per-bucket FIFO queues."""
        queues: list[list[Request]] = [[] for _ in range(self.n_buckets)]
        for req in requests:
            queues[self.bucket_of(req.vertex)].append(req)
        return queues

    def lock_free_makespan_us(self, requests: "list[Request]") -> float:
        """Makespan with one core per bucket and no locks.

        Each bucket drains sequentially; buckets drain concurrently; the
        makespan is the busiest bucket.
        """
        queues = self.route(requests)
        if not requests:
            return 0.0
        return max(sum(r.service_us for r in q) for q in queues)

    def locked_makespan_us(
        self,
        requests: "list[Request]",
        n_cores: int | None = None,
        lock_overhead_us: float = 0.8,
        writer_exclusive: bool = True,
    ) -> float:
        """Makespan of the lock-based alternative on the same trace.

        ``n_cores`` cores share one locked structure: every request pays the
        lock overhead, and with ``writer_exclusive`` updates serialize
        globally (readers-writer lock) while reads split across cores.
        """
        if n_cores is None:
            n_cores = self.n_buckets
        if n_cores < 1:
            raise StorageError("need at least one core")
        if not requests:
            return 0.0
        read_us = sum(
            r.service_us + lock_overhead_us for r in requests if r.kind == "read"
        )
        update_us = sum(
            r.service_us + lock_overhead_us for r in requests if r.kind == "update"
        )
        if writer_exclusive:
            # Updates hold the write lock exclusively; reads parallelize.
            return update_us + read_us / n_cores
        return (read_us + update_us) / n_cores

    def speedup(
        self, requests: "list[Request]", lock_overhead_us: float = 0.8
    ) -> float:
        """locked / lock-free makespan ratio (>1 means buckets win)."""
        lock_free = self.lock_free_makespan_us(requests)
        if lock_free == 0.0:
            return 1.0
        return self.locked_makespan_us(
            requests, lock_overhead_us=lock_overhead_us
        ) / lock_free


def synthetic_trace(
    n_vertices: int,
    n_requests: int,
    update_fraction: float,
    rng: np.random.Generator,
    read_service_us: float = 1.0,
    update_service_us: float = 2.0,
) -> list[Request]:
    """A uniform random request trace for the buckets ablation."""
    if not 0.0 <= update_fraction <= 1.0:
        raise StorageError("update_fraction must be within [0, 1]")
    vertices = rng.integers(0, n_vertices, size=n_requests)
    is_update = rng.random(n_requests) < update_fraction
    return [
        Request(
            vertex=int(v),
            kind="update" if u else "read",
            service_us=update_service_us if u else read_service_us,
        )
        for v, u in zip(vertices, is_update)
    ]
