"""Calibratable cost model for the simulated cluster.

The paper's §5.1 numbers were measured on Alibaba's production cluster. We
reproduce their *shape* on one machine by counting storage events exactly
(local reads, neighbor-cache hits, remote RPCs, items shipped, attribute
decodes) and pricing them with this table. Defaults are calibrated to
commodity-datacenter magnitudes — in-memory read ~1µs, intra-DC RPC ~100µs —
which put the modelled results in the same millisecond regime as Tables 4–5
and Figure 9.

Every experiment that uses modelled time also reports the raw counts, so the
calibration is transparent and swappable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.timer import CostAccumulator

#: Canonical event names recorded by the storage layer.
EV_LOCAL_READ = "local_read"  # adjacency row read on the owning server
EV_CACHE_HIT = "cache_hit"  # neighbor served from a NeighborCache
EV_REMOTE_RPC = "remote_rpc"  # one round trip to another server
EV_ITEM_SHIPPED = "item_shipped"  # one vertex id serialized over the wire
EV_ATTR_DECODE = "attr_decode"  # one attribute payload decoded
EV_ATTR_CACHE_HIT = "attr_cache_hit"  # attribute served from IV/IE cache
EV_CACHE_FILL = "cache_fill"  # demand-filled cache admission (LRU)
EV_EDGE_INGESTED = "edge_ingested"  # one edge processed during build
EV_COORDINATION = "coordination"  # per-build-round coordination barrier
EV_FAILOVER_READ = "failover_read"  # read served from a replica after a
# worker failure (a remote hop to whichever healthy cache holds the entry)
EV_SUSPECT_ROUTE = "suspect_route"  # read routed around a *suspect* (not
# fail-stopped) server to a healthy replica
EV_DEGRADED_READ = "degraded_read"  # unavailable read answered with an
# empty row because the store runs in degraded mode (opt-in)
EV_REPLICA_REFRESH = "replica_refresh"  # fresh adjacency pushed to one
# replica holder after a streaming edge update (re-pin)
EV_EMB_LOCAL_ROW = "emb_row_local"  # embedding row pulled from the local shard
EV_EMB_CACHE_HIT = "emb_cache_hit"  # embedding row served from the staleness
# cache (no RPC, possibly a bounded number of versions behind)
EV_EMB_ROW_UPDATE = "emb_row_update"  # one embedding row updated in place by
# a pushed sparse gradient (server-side optimizer application)
EV_REPLICA_INSTALL = "replica_install"  # adjacency row pinned on a non-owner
# by the placement controller (promotion; priced like a replica refresh)
EV_REPLICA_DROP = "replica_drop"  # pinned replica evicted by the controller
# (demotion; bookkeeping only, no wire traffic)
EV_VERTEX_MIGRATED = "vertex_migrated"  # ownership of one vertex handed from
# one server to another by the incremental repartitioner (commit bookkeeping;
# the data movement itself is priced through the migration RPCs)
EV_MIGRATION_RPC = "migration_rpc"  # one migration-protocol round trip
# (fetch or release). Kept distinct from EV_REMOTE_RPC so benchmarks can
# report read-path traffic and migration traffic separately.


@dataclass(frozen=True)
class CostModel:
    """Per-event costs in microseconds."""

    local_read_us: float = 1.0
    cache_hit_us: float = 0.5
    remote_rpc_us: float = 100.0
    item_shipped_us: float = 0.05
    attr_decode_us: float = 2.0
    attr_cache_hit_us: float = 0.2
    cache_fill_us: float = 1.5
    edge_ingest_us: float = 1.2
    coordination_us: float = 50_000.0
    failover_read_us: float = 120.0
    suspect_route_us: float = 120.0
    degraded_read_us: float = 0.5
    replica_refresh_us: float = 100.0
    emb_row_local_us: float = 0.8
    emb_cache_hit_us: float = 0.3
    emb_row_update_us: float = 0.6
    replica_install_us: float = 100.0
    replica_drop_us: float = 0.5
    vertex_migrate_us: float = 5.0
    migration_rpc_us: float = 100.0
    #: Expected refreshes per read for a cached vertex — the paper's §4
    #: cache-maintenance term. A replica is "worth keeping" while the saved
    #: remote reads outweigh refresh pushes; at the defaults the break-even
    #: importance works out to the paper's τ = 0.2 threshold.
    cache_churn_ratio: float = 0.199

    def cost_table(self) -> dict[str, float]:
        """Event-name -> µs mapping consumed by :class:`CostAccumulator`."""
        return {
            EV_LOCAL_READ: self.local_read_us,
            EV_CACHE_HIT: self.cache_hit_us,
            EV_REMOTE_RPC: self.remote_rpc_us,
            EV_ITEM_SHIPPED: self.item_shipped_us,
            EV_ATTR_DECODE: self.attr_decode_us,
            EV_ATTR_CACHE_HIT: self.attr_cache_hit_us,
            EV_CACHE_FILL: self.cache_fill_us,
            EV_EDGE_INGESTED: self.edge_ingest_us,
            EV_COORDINATION: self.coordination_us,
            EV_FAILOVER_READ: self.failover_read_us,
            EV_SUSPECT_ROUTE: self.suspect_route_us,
            EV_DEGRADED_READ: self.degraded_read_us,
            EV_REPLICA_REFRESH: self.replica_refresh_us,
            EV_EMB_LOCAL_ROW: self.emb_row_local_us,
            EV_EMB_CACHE_HIT: self.emb_cache_hit_us,
            EV_EMB_ROW_UPDATE: self.emb_row_update_us,
            EV_REPLICA_INSTALL: self.replica_install_us,
            EV_REPLICA_DROP: self.replica_drop_us,
            EV_VERTEX_MIGRATED: self.vertex_migrate_us,
            EV_MIGRATION_RPC: self.migration_rpc_us,
        }

    def importance_threshold(self) -> float:
        """Minimum §4 importance at which caching a vertex pays off.

        A replica of ``v`` saves ``remote_rpc_us - cache_hit_us`` per read
        but costs ``replica_refresh_us`` per upstream churn event; with
        churn arriving at ``cache_churn_ratio`` events per read, break-even
        sits at ``churn * refresh / (rpc - hit)``. At the default prices
        this lands exactly on the paper's τ = 0.2 (rounded to 9 places to
        absorb float noise so parity with the historical constant is exact).
        """
        saving = self.remote_rpc_us - self.cache_hit_us
        return round(self.cache_churn_ratio * self.replica_refresh_us / saving, 9)

    def replication_gain_us(
        self, remote_reads: float, out_degree: int, refreshes: float = 0.0
    ) -> float:
        """Modelled net µs saved by pinning one vertex on one reader part.

        ``remote_reads`` is the (possibly decay-weighted) number of reads
        the candidate part issued for the vertex over the decision window;
        ``refreshes`` the churn events expected over the same window.
        Positive means the replica pays for its install + upkeep.
        """
        per_read = self.remote_rpc_us - self.cache_hit_us
        upkeep = refreshes * (
            self.replica_refresh_us + out_degree * self.item_shipped_us
        )
        install = self.replica_install_us + out_degree * self.item_shipped_us
        return remote_reads * per_read - upkeep - install

    def migration_cost_us(self, n_items: int) -> float:
        """Wire cost of migrating one vertex: fetch + release round trips."""
        return 2.0 * self.migration_rpc_us + n_items * self.item_shipped_us

    def migration_gain_us(
        self, reads_to_target: float, reads_from_owner: float
    ) -> float:
        """Modelled µs/window saved by moving a vertex to its hottest reader.

        Reads from the target part turn remote → local; reads the current
        owner still issues turn local → remote, so only the differential
        counts.
        """
        per_read = self.remote_rpc_us - self.local_read_us
        return (reads_to_target - reads_from_owner) * per_read

    def accumulator(self) -> CostAccumulator:
        """Fresh accumulator priced with this model."""
        return CostAccumulator(costs=self.cost_table())
