"""Calibratable cost model for the simulated cluster.

The paper's §5.1 numbers were measured on Alibaba's production cluster. We
reproduce their *shape* on one machine by counting storage events exactly
(local reads, neighbor-cache hits, remote RPCs, items shipped, attribute
decodes) and pricing them with this table. Defaults are calibrated to
commodity-datacenter magnitudes — in-memory read ~1µs, intra-DC RPC ~100µs —
which put the modelled results in the same millisecond regime as Tables 4–5
and Figure 9.

Every experiment that uses modelled time also reports the raw counts, so the
calibration is transparent and swappable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.timer import CostAccumulator

#: Canonical event names recorded by the storage layer.
EV_LOCAL_READ = "local_read"  # adjacency row read on the owning server
EV_CACHE_HIT = "cache_hit"  # neighbor served from a NeighborCache
EV_REMOTE_RPC = "remote_rpc"  # one round trip to another server
EV_ITEM_SHIPPED = "item_shipped"  # one vertex id serialized over the wire
EV_ATTR_DECODE = "attr_decode"  # one attribute payload decoded
EV_ATTR_CACHE_HIT = "attr_cache_hit"  # attribute served from IV/IE cache
EV_CACHE_FILL = "cache_fill"  # demand-filled cache admission (LRU)
EV_EDGE_INGESTED = "edge_ingested"  # one edge processed during build
EV_COORDINATION = "coordination"  # per-build-round coordination barrier
EV_FAILOVER_READ = "failover_read"  # read served from a replica after a
# worker failure (a remote hop to whichever healthy cache holds the entry)
EV_SUSPECT_ROUTE = "suspect_route"  # read routed around a *suspect* (not
# fail-stopped) server to a healthy replica
EV_DEGRADED_READ = "degraded_read"  # unavailable read answered with an
# empty row because the store runs in degraded mode (opt-in)
EV_REPLICA_REFRESH = "replica_refresh"  # fresh adjacency pushed to one
# replica holder after a streaming edge update (re-pin)
EV_EMB_LOCAL_ROW = "emb_row_local"  # embedding row pulled from the local shard
EV_EMB_CACHE_HIT = "emb_cache_hit"  # embedding row served from the staleness
# cache (no RPC, possibly a bounded number of versions behind)
EV_EMB_ROW_UPDATE = "emb_row_update"  # one embedding row updated in place by
# a pushed sparse gradient (server-side optimizer application)


@dataclass(frozen=True)
class CostModel:
    """Per-event costs in microseconds."""

    local_read_us: float = 1.0
    cache_hit_us: float = 0.5
    remote_rpc_us: float = 100.0
    item_shipped_us: float = 0.05
    attr_decode_us: float = 2.0
    attr_cache_hit_us: float = 0.2
    cache_fill_us: float = 1.5
    edge_ingest_us: float = 1.2
    coordination_us: float = 50_000.0
    failover_read_us: float = 120.0
    suspect_route_us: float = 120.0
    degraded_read_us: float = 0.5
    replica_refresh_us: float = 100.0
    emb_row_local_us: float = 0.8
    emb_cache_hit_us: float = 0.3
    emb_row_update_us: float = 0.6

    def cost_table(self) -> dict[str, float]:
        """Event-name -> µs mapping consumed by :class:`CostAccumulator`."""
        return {
            EV_LOCAL_READ: self.local_read_us,
            EV_CACHE_HIT: self.cache_hit_us,
            EV_REMOTE_RPC: self.remote_rpc_us,
            EV_ITEM_SHIPPED: self.item_shipped_us,
            EV_ATTR_DECODE: self.attr_decode_us,
            EV_ATTR_CACHE_HIT: self.attr_cache_hit_us,
            EV_CACHE_FILL: self.cache_fill_us,
            EV_EDGE_INGESTED: self.edge_ingest_us,
            EV_COORDINATION: self.coordination_us,
            EV_FAILOVER_READ: self.failover_read_us,
            EV_SUSPECT_ROUTE: self.suspect_route_us,
            EV_DEGRADED_READ: self.degraded_read_us,
            EV_REPLICA_REFRESH: self.replica_refresh_us,
            EV_EMB_LOCAL_ROW: self.emb_row_local_us,
            EV_EMB_CACHE_HIT: self.emb_cache_hit_us,
            EV_EMB_ROW_UPDATE: self.emb_row_update_us,
        }

    def accumulator(self) -> CostAccumulator:
        """Fresh accumulator priced with this model."""
        return CostAccumulator(costs=self.cost_table())
