"""Cluster-wide replica registry: which servers hold which cached vertices.

The paper's caching theorems (§4.3, Theorems 1–2) assume an important
vertex's out-neighbors are replicated "on each partition it occurs" — which
is exactly the replica set a serving layer routes around failures with.
Before this registry existed, the failover path scanned every server's
neighbor cache linearly (O(servers) per read, and every probe inflated the
scanned caches' miss counters). The registry keeps a two-way index —
vertex -> holder parts and part -> held vertices — maintained by the
caches themselves: pinned entries register on install, demand fills
register on admit, invalidations and evictions deregister. Failover and
health-aware routing then resolve a replica with one dict lookup.
"""

from __future__ import annotations

from repro.errors import StorageError


class ReplicaRegistry:
    """Two-way index of cache replicas: vertex -> parts and part -> vertices.

    Registration is idempotent; deregistering an unknown pair is a no-op
    (caches may invalidate entries they never held). ``drop_part`` forgets
    one server's registrations wholesale — used when a server's cache is
    swapped out (policy change) or rebuilt.
    """

    def __init__(self, n_parts: int) -> None:
        if n_parts < 1:
            raise StorageError(f"registry needs at least one part, got {n_parts}")
        self.n_parts = n_parts
        self._holders: "dict[int, set[int]]" = {}
        self._by_part: "dict[int, set[int]]" = {p: set() for p in range(n_parts)}

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.n_parts:
            raise StorageError(f"unknown part {part} (have {self.n_parts})")

    def register(self, vertex: int, part: int) -> None:
        """Record that ``part`` holds a cached replica of ``vertex``."""
        self._check_part(part)
        vertex = int(vertex)
        self._holders.setdefault(vertex, set()).add(part)
        self._by_part[part].add(vertex)

    def deregister(self, vertex: int, part: int) -> None:
        """Forget ``part``'s replica of ``vertex`` (no-op when absent)."""
        self._check_part(part)
        vertex = int(vertex)
        holders = self._holders.get(vertex)
        if holders is None:
            return
        holders.discard(part)
        self._by_part[part].discard(vertex)
        if not holders:
            del self._holders[vertex]

    def drop_part(self, part: int) -> None:
        """Forget every replica registered by ``part`` (cache swap/rebuild)."""
        self._check_part(part)
        for vertex in self._by_part[part]:
            holders = self._holders.get(vertex)
            if holders is not None:
                holders.discard(part)
                if not holders:
                    del self._holders[vertex]
        self._by_part[part] = set()

    def holders(self, vertex: int) -> "tuple[int, ...]":
        """Parts holding a replica of ``vertex``, sorted (deterministic)."""
        return tuple(sorted(self._holders.get(int(vertex), ())))

    def replica_count(self, vertex: int) -> int:
        """Number of servers holding a replica of ``vertex``."""
        return len(self._holders.get(int(vertex), ()))

    def held_by(self, part: int) -> "tuple[int, ...]":
        """Vertices registered by ``part``, sorted (deterministic)."""
        self._check_part(part)
        return tuple(sorted(self._by_part[part]))

    @property
    def n_tracked(self) -> int:
        """Distinct vertices with at least one replica."""
        return len(self._holders)

    def audit(self, contents_by_part: "dict[int, set[int]]") -> "dict[str, list]":
        """Diff the index against ground-truth cache contents.

        ``contents_by_part`` maps part -> the vertex ids that part's cache
        actually holds. Returns ``{"missing": [...], "stale": [...]}`` of
        ``(vertex, part)`` pairs — replicas the cache holds but the index
        lost, and index entries whose cache copy is gone. Both lists empty
        means the two-way index is exact; tests run this after heavy
        promote/demote/migrate churn to prove removals never leak.
        """
        missing: "list[tuple[int, int]]" = []
        stale: "list[tuple[int, int]]" = []
        for part in sorted(contents_by_part):
            self._check_part(part)
            truth = {int(v) for v in contents_by_part[part]}
            indexed = self._by_part.get(part, set())
            missing.extend((v, part) for v in sorted(truth - indexed))
            stale.extend((v, part) for v in sorted(indexed - truth))
        # The vertex->holders side must mirror part->vertices exactly.
        for vertex in sorted(self._holders):
            for part in sorted(self._holders[vertex]):
                if vertex not in self._by_part.get(part, set()):
                    stale.append((vertex, part))
        return {"missing": missing, "stale": stale}

    def __contains__(self, vertex: int) -> bool:
        return int(vertex) in self._holders

    def __repr__(self) -> str:
        return (
            f"ReplicaRegistry(parts={self.n_parts}, "
            f"tracked={self.n_tracked})"
        )
