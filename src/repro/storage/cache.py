"""Neighbor caching: the importance policy and the Figure 9 baselines.

A :class:`NeighborCache` lives on each graph server and holds out-neighbor
lists of vertices owned by *other* servers, so cross-partition traversals can
be served locally. Three interchangeable policies decide its contents:

* :class:`ImportanceCachePolicy` — the paper's contribution: pin the
  neighbors of the globally most important vertices (Eq. 1 / Algorithm 2);
* :class:`RandomCachePolicy` — pin a uniformly random vertex subset;
* :class:`LRUCachePolicy` — classic demand-filled LRU replacement.

Pinned policies (importance/random) decide contents up front and never evict;
LRU fills on access. Figure 9 compares the three at equal capacity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.graph.graph import Graph
from repro.storage.importance import importance_scores
from repro.utils.lru import LRUCache


class NeighborCache:
    """Per-server cache of remote vertices' out-neighbor arrays.

    When bound to a :class:`~repro.storage.replicas.ReplicaRegistry` (via
    :meth:`bind`), the cache keeps the registry's vertex -> holder index in
    sync: pins and demand-fill admissions register, invalidations and LRU
    evictions deregister. Failover and health-aware routing use the
    registry plus :meth:`peek` — which never touches the hit/miss counters,
    so availability probes cannot corrupt ``cache_hit_rate()``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise StorageError(f"cache capacity must be non-negative: {capacity}")
        self.capacity = capacity
        self._pinned: dict[int, np.ndarray] = {}
        self._lru = LRUCache(capacity)
        self.hits = 0
        self.misses = 0
        self._registry = None  # ReplicaRegistry | None
        self._part: int | None = None
        # Sorted snapshot of the pinned key set, rebuilt lazily after a
        # pin/invalidate; lets the store's batched read path answer "which
        # of these vertices are cached?" with one np.isin instead of a
        # per-vertex dict probe.
        self._pinned_keys: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._pinned) + len(self._lru)

    def bind(self, registry, part: int) -> None:
        """Attach a replica registry and register current contents."""
        self._registry = registry
        self._part = part
        for vertex in self._pinned:
            registry.register(vertex, part)
        for vertex in self._lru.keys():
            registry.register(vertex, part)

    def _register(self, vertex: int) -> None:
        if self._registry is not None:
            self._registry.register(vertex, self._part)

    def _deregister(self, vertex: int) -> None:
        if self._registry is not None:
            self._registry.deregister(vertex, self._part)

    def pin(self, vertex: int, neighbors: np.ndarray) -> None:
        """Permanently cache ``vertex``'s neighbors (up to capacity)."""
        if vertex not in self._pinned and len(self._pinned) >= self.capacity:
            raise StorageError("neighbor cache pin capacity exhausted")
        self._pinned[vertex] = np.asarray(neighbors, dtype=np.int64)
        self._pinned_keys = None
        self._register(vertex)

    def get(self, vertex: int) -> np.ndarray | None:
        """Cached neighbor array of ``vertex``, or None on a miss."""
        if vertex in self._pinned:
            self.hits += 1
            return self._pinned[vertex]
        value = self._lru.get(vertex)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        return None

    def peek(self, vertex: int) -> np.ndarray | None:
        """Cached neighbor array without hit/miss accounting or recency.

        The failover/suspect-routing path reads replicas through this, so
        serving another worker's read does not distort this cache's own
        hit-rate statistics (they model the *owner's* locality, not the
        cluster's failures).
        """
        value = self._pinned.get(vertex)
        if value is not None:
            return value
        return self._lru.peek(vertex)

    def is_pinned(self, vertex: int) -> bool:
        """Whether ``vertex`` is held as a pinned (policy-selected) entry."""
        return vertex in self._pinned

    def unpin(self, vertex: int) -> bool:
        """Release a pinned entry (placement demotion); True if it was held.

        Unlike :meth:`invalidate` this touches only the pinned side — a
        demand-filled copy of the same vertex (possible under mixed
        policies) survives, because demotion is a capacity decision, not a
        staleness one.
        """
        if self._pinned.pop(vertex, None) is None:
            return False
        self._pinned_keys = None
        if self._lru.peek(vertex) is None:
            self._deregister(vertex)
        return True

    @property
    def pinned_count(self) -> int:
        """Number of pinned entries currently held."""
        return len(self._pinned)

    @property
    def free_pin_slots(self) -> int:
        """Pin capacity still available (promotion headroom)."""
        return max(0, self.capacity - len(self._pinned))

    def pinned_vertices(self) -> tuple[int, ...]:
        """Sorted ids of all pinned entries (deterministic scan order)."""
        return tuple(sorted(self._pinned))

    def admit(self, vertex: int, neighbors: np.ndarray) -> None:
        """Offer a fetched entry for demand-filled (LRU) caching.

        Pinned policies set LRU capacity to 0, making this a no-op; the LRU
        policy relies on it entirely.
        """
        if self._lru.capacity > 0 and vertex not in self._pinned:
            evicted = self._lru.put(vertex, np.asarray(neighbors, dtype=np.int64))
            self._register(vertex)
            if evicted is not None and evicted != vertex:
                self._deregister(evicted)

    def invalidate(self, vertex: int) -> None:
        """Drop any cached copy of ``vertex``'s neighbors (after an update).

        Pinned entries are dropped too: a stale pinned row is worse than a
        miss.
        """
        pinned = self._pinned.pop(vertex, None) is not None
        if pinned:
            self._pinned_keys = None
        dropped = self._lru.delete(vertex)
        if pinned or dropped:
            self._deregister(vertex)

    @property
    def supports_batch_probe(self) -> bool:
        """Whether :meth:`probe_batch` answers membership exactly.

        True for pinned-only caches (importance/random policies, or no
        cache at all): their contents do not change on access, so a batch
        membership mask computed up front stays valid while the batch's
        hits are read out. Demand-filled (LRU) caches mutate recency and
        contents per access and must keep the per-vertex path.
        """
        return self._lru.capacity == 0

    def probe_batch(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean membership mask over ``vertices`` (pinned entries only).

        A pure array probe: no hit/miss accounting, no recency updates —
        callers read the hits out with :meth:`get` (which counts them) and
        charge the misses in bulk with :meth:`record_misses`.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if not self._pinned:
            return np.zeros(vertices.shape, dtype=bool)
        if self._pinned_keys is None:
            self._pinned_keys = np.fromiter(
                self._pinned, dtype=np.int64, count=len(self._pinned)
            )
            self._pinned_keys.sort()
        return np.isin(vertices, self._pinned_keys, assume_unique=False)

    def record_misses(self, n: int) -> None:
        """Charge ``n`` lookups that a batch probe resolved as misses."""
        if n < 0:
            raise StorageError(f"cannot record {n} misses")
        self.misses += n

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from this cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachePolicy:
    """Strategy deciding a server's neighbor-cache contents.

    ``select(graph, budget, rng)`` returns the vertex ids to pin (may be
    empty for demand-filled policies); ``demand_filled`` says whether the
    cache should also admit entries on access.
    """

    name = "abstract"
    demand_filled = False

    def select(
        self, graph: Graph, budget: int, rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError


class ImportanceCachePolicy(CachePolicy):
    """Pin the top-``budget`` vertices by Imp^(k) (the paper's strategy)."""

    name = "importance"

    def __init__(self, hop: int = 2, method: str = "multiplicity") -> None:
        self.hop = hop
        self.method = method

    def select(
        self, graph: Graph, budget: int, rng: np.random.Generator
    ) -> np.ndarray:
        if budget <= 0:
            return np.zeros(0, dtype=np.int64)
        scores = importance_scores(graph, self.hop, method=self.method)
        top = np.argsort(scores, kind="stable")[::-1][:budget]
        return top[scores[top] > 0].astype(np.int64)


class RandomCachePolicy(CachePolicy):
    """Pin a uniformly random vertex subset (Figure 9 baseline)."""

    name = "random"

    def select(
        self, graph: Graph, budget: int, rng: np.random.Generator
    ) -> np.ndarray:
        if budget <= 0:
            return np.zeros(0, dtype=np.int64)
        budget = min(budget, graph.n_vertices)
        return rng.choice(graph.n_vertices, size=budget, replace=False).astype(
            np.int64
        )


class LRUCachePolicy(CachePolicy):
    """Demand-filled LRU replacement (Figure 9 baseline).

    Pins nothing; every fetched remote neighbor list is admitted and evicted
    least-recently-used, so a scattered access pattern churns the cache —
    exactly the "additional cost since it frequently replaces cached
    vertices" the paper observes.
    """

    name = "lru"
    demand_filled = True

    def select(
        self, graph: Graph, budget: int, rng: np.random.Generator
    ) -> np.ndarray:
        return np.zeros(0, dtype=np.int64)


def make_cache(
    policy: CachePolicy,
    graph: Graph,
    budget: int,
    rng: np.random.Generator,
) -> NeighborCache:
    """Build a :class:`NeighborCache` under ``policy`` with ``budget`` slots."""
    if policy.demand_filled:
        cache = NeighborCache(budget)
        return cache
    cache = NeighborCache(budget)
    for v in policy.select(graph, budget, rng):
        cache.pin(int(v), graph.out_neighbors(int(v)))
    # Pinned caches do not demand-fill: zero out the LRU side.
    cache._lru = LRUCache(0)
    return cache


def make_pinned_cache(capacity: int) -> NeighborCache:
    """Empty pin-only cache (no demand fill, batch-probe capable).

    The placement controller installs these on servers that start with no
    cache so promotions have somewhere to land; contents are decided online
    rather than by a :class:`CachePolicy`.
    """
    cache = NeighborCache(capacity)
    cache._lru = LRUCache(0)
    return cache
