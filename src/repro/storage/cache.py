"""Neighbor caching: the importance policy and the Figure 9 baselines.

A :class:`NeighborCache` lives on each graph server and holds out-neighbor
lists of vertices owned by *other* servers, so cross-partition traversals can
be served locally. Three interchangeable policies decide its contents:

* :class:`ImportanceCachePolicy` — the paper's contribution: pin the
  neighbors of the globally most important vertices (Eq. 1 / Algorithm 2);
* :class:`RandomCachePolicy` — pin a uniformly random vertex subset;
* :class:`LRUCachePolicy` — classic demand-filled LRU replacement.

Pinned policies (importance/random) decide contents up front and never evict;
LRU fills on access. Figure 9 compares the three at equal capacity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.graph.graph import Graph
from repro.storage.importance import importance_scores
from repro.utils.lru import LRUCache


class NeighborCache:
    """Per-server cache of remote vertices' out-neighbor arrays."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise StorageError(f"cache capacity must be non-negative: {capacity}")
        self.capacity = capacity
        self._pinned: dict[int, np.ndarray] = {}
        self._lru = LRUCache(capacity)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pinned) + len(self._lru)

    def pin(self, vertex: int, neighbors: np.ndarray) -> None:
        """Permanently cache ``vertex``'s neighbors (up to capacity)."""
        if len(self._pinned) >= self.capacity:
            raise StorageError("neighbor cache pin capacity exhausted")
        self._pinned[vertex] = np.asarray(neighbors, dtype=np.int64)

    def get(self, vertex: int) -> np.ndarray | None:
        """Cached neighbor array of ``vertex``, or None on a miss."""
        if vertex in self._pinned:
            self.hits += 1
            return self._pinned[vertex]
        value = self._lru.get(vertex)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        return None

    def admit(self, vertex: int, neighbors: np.ndarray) -> None:
        """Offer a fetched entry for demand-filled (LRU) caching.

        Pinned policies set LRU capacity to 0, making this a no-op; the LRU
        policy relies on it entirely.
        """
        if self._lru.capacity > 0 and vertex not in self._pinned:
            self._lru.put(vertex, np.asarray(neighbors, dtype=np.int64))

    def invalidate(self, vertex: int) -> None:
        """Drop any cached copy of ``vertex``'s neighbors (after an update).

        Pinned entries are dropped too: a stale pinned row is worse than a
        miss.
        """
        self._pinned.pop(vertex, None)
        self._lru.delete(vertex)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from this cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachePolicy:
    """Strategy deciding a server's neighbor-cache contents.

    ``select(graph, budget, rng)`` returns the vertex ids to pin (may be
    empty for demand-filled policies); ``demand_filled`` says whether the
    cache should also admit entries on access.
    """

    name = "abstract"
    demand_filled = False

    def select(
        self, graph: Graph, budget: int, rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError


class ImportanceCachePolicy(CachePolicy):
    """Pin the top-``budget`` vertices by Imp^(k) (the paper's strategy)."""

    name = "importance"

    def __init__(self, hop: int = 2, method: str = "multiplicity") -> None:
        self.hop = hop
        self.method = method

    def select(
        self, graph: Graph, budget: int, rng: np.random.Generator
    ) -> np.ndarray:
        if budget <= 0:
            return np.zeros(0, dtype=np.int64)
        scores = importance_scores(graph, self.hop, method=self.method)
        top = np.argsort(scores, kind="stable")[::-1][:budget]
        return top[scores[top] > 0].astype(np.int64)


class RandomCachePolicy(CachePolicy):
    """Pin a uniformly random vertex subset (Figure 9 baseline)."""

    name = "random"

    def select(
        self, graph: Graph, budget: int, rng: np.random.Generator
    ) -> np.ndarray:
        if budget <= 0:
            return np.zeros(0, dtype=np.int64)
        budget = min(budget, graph.n_vertices)
        return rng.choice(graph.n_vertices, size=budget, replace=False).astype(
            np.int64
        )


class LRUCachePolicy(CachePolicy):
    """Demand-filled LRU replacement (Figure 9 baseline).

    Pins nothing; every fetched remote neighbor list is admitted and evicted
    least-recently-used, so a scattered access pattern churns the cache —
    exactly the "additional cost since it frequently replaces cached
    vertices" the paper observes.
    """

    name = "lru"
    demand_filled = True

    def select(
        self, graph: Graph, budget: int, rng: np.random.Generator
    ) -> np.ndarray:
        return np.zeros(0, dtype=np.int64)


def make_cache(
    policy: CachePolicy,
    graph: Graph,
    budget: int,
    rng: np.random.Generator,
) -> NeighborCache:
    """Build a :class:`NeighborCache` under ``policy`` with ``budget`` slots."""
    if policy.demand_filled:
        cache = NeighborCache(budget)
        return cache
    cache = NeighborCache(budget)
    for v in policy.select(graph, budget, rng):
        cache.pin(int(v), graph.out_neighbors(int(v)))
    # Pinned caches do not demand-fill: zero out the LRU side.
    cache._lru = LRUCache(0)
    return cache
