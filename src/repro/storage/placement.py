"""Trace-driven adaptive placement: replica promotion + incremental repartitioning.

The paper's §4 storage layer decides caching and partitioning *offline*;
everything this repo measured since PR 3 says the workload drifts out from
under those decisions (shifting Zipf hot sets rotate which vertices are hot
and which edges cross the cut). This module closes the observe → decide →
migrate loop on the virtual clock:

* a :class:`PlacementController` consumes the decayed per-vertex /
  per-issuer statistics of a :class:`~repro.obs.workload.
  WindowedAccessRecorder` once per decision epoch;
* **replica promotion/demotion** prices each candidate with the §4 cost
  model (:meth:`CostModel.replication_gain_us`) instead of the static
  importance heuristic: pin where the modelled remote-read savings beat the
  install + maintenance cost, unpin replicas the hot set left behind;
* an **incremental repartitioner** migrates vertices toward their dominant
  reader in bounded batches: a token bucket caps migration items per epoch,
  and ownership handoff runs as a two-phase RPC protocol (``placement.fetch``
  then ``placement.release``) through the normal :class:`RpcRuntime` — same
  clock, same fault injection, same retries — so migration traffic is priced
  on the ledger (``migration_rpc`` / ``item_shipped`` / ``vertex_migrated``
  events) and a mid-migration fault leaves the cluster consistent.

Handoff safety on the single-threaded simulator: the new owner *ingests
before* the old owner releases, and the assignment flips only after the
release RPC succeeded — every instant of the protocol has exactly one
server the router resolves for the vertex, and that server holds the row.
The fault model rolls drop/timeout *before* serving, so a release that
fails after retries provably never executed: the controller rolls the
staged copy back and the vertex simply stays put (exactly-once semantics).

Everything is deterministic: candidate scans iterate sorted keys, ties
break on vertex id, and per-epoch reports are plain dicts — two same-seed
runs produce bit-identical decision sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError
from repro.obs.workload import WindowedAccessRecorder
from repro.storage.cache import make_pinned_cache
from repro.storage.cluster import DistributedGraphStore
from repro.storage.costmodel import (
    EV_ITEM_SHIPPED,
    EV_MIGRATION_RPC,
    EV_REPLICA_DROP,
    EV_REPLICA_INSTALL,
)

#: Migration protocol verbs (registered on the runtime via register_service).
KIND_MIGRATE_FETCH = "placement.fetch"
KIND_MIGRATE_RELEASE = "placement.release"


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs of the adaptive placement loop (all priced per decision epoch)."""

    #: Virtual-clock time between decision epochs.
    epoch_us: float = 20_000.0
    #: Exponential decay per window for the recorder's recency weighting.
    decay: float = 0.5
    #: Pin slots ensured on every server's neighbor cache so promotions
    #: have somewhere to land (servers with a larger policy cache keep it).
    replica_capacity: int = 256
    #: Max replica pins installed per epoch (cluster-wide).
    promote_per_epoch: int = 32
    #: Max replica pins released per epoch (cluster-wide).
    demote_per_epoch: int = 64
    #: Keep a pinned replica only while its decayed read weight times the
    #: per-read saving stays above this fraction of the install cost.
    demote_margin: float = 0.25
    #: Max vertices migrated per epoch (cluster-wide).
    migrate_per_epoch: int = 16
    #: Token bucket: migration items (adjacency entries + attr rows)
    #: granted per epoch, and the cap unused tokens accumulate to.
    migrate_items_per_epoch: int = 4096
    migrate_burst_items: int = 8192
    #: A vertex migrates only toward an issuer reading it at least this
    #: multiple of the current owner's own read weight (hysteresis).
    migrate_dominance: float = 2.0
    #: Windows over which a migration's wire cost must pay back.
    payback_windows: float = 4.0
    #: Noise floor: decayed weights below this never trigger a decision.
    min_decision_weight: float = 1.5
    #: Reject migrations that would push any part past this multiple of
    #: the mean vertex count (same bound the partitioners target).
    balance_limit: float = 1.6


class PlacementController:
    """Online placement decisions over a :class:`DistributedGraphStore`.

    Construction attaches a :class:`WindowedAccessRecorder` to the store
    (unless one is already attached) and registers the migration protocol
    verbs on the store's runtime; :meth:`poll` — cheap enough to call per
    request — fires :meth:`run_epoch` whenever the virtual clock crosses
    the next epoch boundary. One controller per runtime: the protocol verbs
    cannot be registered twice.
    """

    def __init__(
        self,
        store: DistributedGraphStore,
        config: "PlacementConfig | None" = None,
        recorder: "WindowedAccessRecorder | None" = None,
    ) -> None:
        self.store = store
        self.config = config or PlacementConfig()
        self.runtime = store._ensure_runtime()
        if recorder is None:
            if isinstance(store.recorder, WindowedAccessRecorder):
                recorder = store.recorder
            else:
                recorder = WindowedAccessRecorder(decay=self.config.decay)
                store.attach_recorder(recorder)
        elif store.recorder is not recorder:
            store.attach_recorder(recorder)
        self.recorder = recorder
        self.runtime.register_service(KIND_MIGRATE_FETCH, self._serve_fetch)
        self.runtime.register_service(KIND_MIGRATE_RELEASE, self._serve_release)
        self._ensure_caches()
        self._next_epoch_us = self.runtime.clock.now_us + self.config.epoch_us
        self._tokens = float(self.config.migrate_items_per_epoch)
        #: One plain dict per epoch — the deterministic decision log.
        self.epoch_reports: "list[dict]" = []

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def _ensure_caches(self) -> None:
        """Make every server's cache able to hold the replica budget.

        Cacheless servers get a pin-only cache; servers whose policy cache
        is smaller than ``replica_capacity`` have their pin capacity
        raised (existing pinned contents are kept — the controller will
        demote them through the cost model if they turn out cold).
        """
        for server in self.store.servers:
            cache = server.neighbor_cache
            if cache.capacity == 0:
                server.neighbor_cache = make_pinned_cache(
                    self.config.replica_capacity
                )
            elif cache.capacity < self.config.replica_capacity:
                cache.capacity = self.config.replica_capacity

    # ------------------------------------------------------------------ #
    # Migration protocol handlers (run on the *old owner* via the runtime)
    # ------------------------------------------------------------------ #
    def _serve_fetch(self, req) -> "tuple[dict, dict, int]":
        """Phase 1: read out adjacency, weights and attrs of each vertex."""
        server = self.store.servers[req.dst_part]
        payload: "dict[int, np.ndarray]" = {}
        meta: "dict[int, object]" = {}
        n_items = 0
        for v in req.vertices:
            row = server.local_neighbors(v)
            weights = server.local_weights(v)
            attr = (
                server.attrs.get_vertex_attr(v)
                if server.attrs.has_vertex_attr(v)
                else None
            )
            payload[v] = row
            meta[v] = (weights, attr)
            n_items += int(row.size) + (int(attr.size) if attr is not None else 0)
        return payload, meta, n_items

    def _serve_release(self, req) -> "tuple[dict, dict, int]":
        """Phase 2: the old owner surrenders the rows (idempotent ack)."""
        server = self.store.servers[req.dst_part]
        payload = {
            int(v): np.zeros(0, dtype=np.int64) for v in req.vertices
        }
        for v in req.vertices:
            if server.owns(int(v)):
                server.release_vertex(int(v))
        return payload, {}, 0

    # ------------------------------------------------------------------ #
    # The decision loop
    # ------------------------------------------------------------------ #
    def poll(self) -> None:
        """Run an epoch if the virtual clock crossed the next boundary."""
        if self.runtime.clock.now_us >= self._next_epoch_us:
            self.run_epoch()
            self._next_epoch_us = (
                self.runtime.clock.now_us + self.config.epoch_us
            )

    def run_epoch(self) -> dict:
        """Roll the stats window, then demote → migrate → promote."""
        cfg = self.config
        epoch = len(self.epoch_reports)
        self._tokens = min(
            float(cfg.migrate_burst_items),
            self._tokens + float(cfg.migrate_items_per_epoch),
        )
        with self.runtime.tracer.span("placement.epoch", epoch=epoch):
            self.recorder.roll()
            demoted = self._demote_pass()
            migrated, migrate_items, aborted = self._migrate_pass()
            promoted = self._promote_pass()
        metrics = self.runtime.metrics
        metrics.counter("placement.epochs").inc()
        report = {
            "epoch": epoch,
            "now_us": round(self.runtime.clock.now_us, 3),
            "demoted": demoted,
            "migrated": migrated,
            "migrate_items": migrate_items,
            "migrate_aborted": aborted,
            "promoted": promoted,
            "tokens_left": round(self._tokens, 3),
        }
        self.epoch_reports.append(report)
        return report

    # -- demotion ------------------------------------------------------ #
    def _demote_pass(self) -> int:
        """Unpin replicas the hot set left behind (and now-local pins)."""
        cfg = self.config
        cost = self.store.cost_model
        per_read = cost.remote_rpc_us - cost.cache_hit_us
        keep_floor = cost.replica_install_us * cfg.demote_margin
        weights = self.recorder.decayed_issuer_reads
        demoted = 0
        for part, server in enumerate(self.store.servers):
            cache = server.neighbor_cache
            for v in cache.pinned_vertices():
                if demoted >= cfg.demote_per_epoch:
                    return demoted
                now_local = self.store.owner(v) == part
                if not now_local:
                    if weights.get((v, part), 0.0) * per_read >= keep_floor:
                        continue
                cache.unpin(v)
                self.store.ledger.record(EV_REPLICA_DROP)
                self.runtime.metrics.counter("placement.demote").inc()
                demoted += 1
        return demoted

    # -- migration ----------------------------------------------------- #
    def _migrate_candidates(self) -> "list[tuple[float, int, int, int, int]]":
        """Ranked ``(gain, vertex, src, dst, items)`` migration candidates."""
        cfg = self.config
        cost = self.store.cost_model
        remote = self.recorder.decayed_remote_reads
        all_reads = self.recorder.decayed_issuer_reads
        # Dominant remote reader per vertex (ties -> smaller part id).
        best: "dict[int, tuple[float, int]]" = {}
        for (v, issuer) in sorted(remote):
            w = remote[(v, issuer)]
            if w < cfg.min_decision_weight:
                continue
            cur = best.get(v)
            if cur is None or w > cur[0]:
                best[v] = (w, issuer)
        ranked: "list[tuple[float, int, int, int, int]]" = []
        for v in sorted(best):
            w_target, target = best[v]
            owner = self.store.owner(v)
            if target == owner:
                continue
            if owner in self.store.failed_workers:
                continue
            if target in self.store.failed_workers:
                continue
            w_owner = all_reads.get((v, owner), 0.0)
            if w_target < cfg.migrate_dominance * max(w_owner, 1e-12):
                continue
            server = self.store.servers[owner]
            items = int(server.local_neighbors(v).size)
            if server.attrs.has_vertex_attr(v):
                items += int(server.attrs.get_vertex_attr(v).size)
            gain = cost.migration_gain_us(w_target, w_owner)
            if gain * cfg.payback_windows <= cost.migration_cost_us(items):
                continue
            ranked.append((gain, v, owner, target, items))
        ranked.sort(key=lambda t: (-t[0], t[1]))
        return ranked

    def _migrate_pass(self) -> "tuple[int, int, int]":
        """Execute the top candidates within the epoch's traffic budget."""
        cfg = self.config
        counts = self.store.assignment.vertex_counts().astype(np.int64)
        mean = counts.sum() / counts.size if counts.size else 0.0
        limit = cfg.balance_limit * mean
        selected: "dict[tuple[int, int], list[tuple[int, int]]]" = {}
        n_selected = 0
        items_used = 0
        for gain, v, src, dst, items in self._migrate_candidates():
            if n_selected >= cfg.migrate_per_epoch:
                break
            if items > self._tokens:
                continue
            if counts[dst] + 1 > limit:
                continue
            selected.setdefault((src, dst), []).append((v, items))
            self._tokens -= items
            counts[src] -= 1
            counts[dst] += 1
            n_selected += 1
        migrated = 0
        aborted = 0
        for (src, dst) in sorted(selected):
            batch = selected[(src, dst)]
            done, items = self._migrate_batch(
                src, dst, [v for v, _ in batch]
            )
            migrated += done
            items_used += items
            if done == 0:
                aborted += len(batch)
                # Refund the unused budget: nothing moved.
                self._tokens += sum(i for _, i in batch)
                for _v, _i in batch:
                    counts[src] += 1
                    counts[dst] -= 1
        return migrated, items_used, aborted

    def _migrate_batch(
        self, src: int, dst: int, vertices: "list[int]"
    ) -> "tuple[int, int]":
        """Two-phase handoff of ``vertices`` from ``src`` to ``dst``.

        ``dst`` here is the migration *target* issuing the protocol;
        ``src`` is the current owner serving both RPCs. Returns
        ``(migrated, items_shipped)`` — all-or-nothing per batch.
        """
        runtime = self.runtime
        metrics = runtime.metrics
        store = self.store
        with runtime.tracer.span(
            "placement.migrate", src=src, dst=dst, vertices=len(vertices)
        ):
            fetch = runtime.make_request(
                KIND_MIGRATE_FETCH, dst, src, tuple(vertices)
            )
            (resp,) = runtime.execute([fetch])
            if not resp.ok:
                metrics.counter("placement.migrate_aborted").inc(len(vertices))
                return 0, 0
            n_items = sum(
                int(row.size)
                + (int(meta[1].size) if meta[1] is not None else 0)
                for row, meta in (
                    (resp.payload[v], resp.meta[v]) for v in vertices
                )
            )
            store.ledger.record(EV_MIGRATION_RPC)
            if n_items:
                store.ledger.record(EV_ITEM_SHIPPED, times=n_items)
            # Stage the rows on the new owner *before* the old owner
            # releases: every instant has a server holding the data.
            target = store.servers[dst]
            for v in vertices:
                weights, attr = resp.meta[v]
                target.ingest_vertex(v, resp.payload[v], weights, attr)
            release = runtime.make_request(
                KIND_MIGRATE_RELEASE, dst, src, tuple(vertices)
            )
            (ack,) = runtime.execute([release])
            if not ack.ok:
                # The release provably never executed (faults roll before
                # serving): the old owner still holds every row. Roll the
                # staged copies back and leave ownership untouched.
                for v in vertices:
                    target.release_vertex(v)
                metrics.counter("placement.migrate_aborted").inc(len(vertices))
                return 0, 0
            store.ledger.record(EV_MIGRATION_RPC)
            for v in vertices:
                store.commit_migration(v, dst)
                metrics.counter("placement.migrate").inc()
            metrics.counter("placement.migrate_items").inc(n_items)
        return len(vertices), n_items

    # -- promotion ----------------------------------------------------- #
    def _promote_pass(self) -> int:
        """Pin hot remote vertices where the §4 cost model says they pay."""
        cfg = self.config
        cost = self.store.cost_model
        remote = self.recorder.decayed_remote_reads
        scored: "list[tuple[float, int, int]]" = []
        for (v, issuer) in sorted(remote):
            w = remote[(v, issuer)]
            if w < cfg.min_decision_weight:
                continue
            owner = self.store.owner(v)
            if owner == issuer or owner in self.store.failed_workers:
                continue
            cache = self.store.servers[issuer].neighbor_cache
            if cache.is_pinned(v):
                continue
            degree = int(self.store.servers[owner].local_neighbors(v).size)
            gain = cost.replication_gain_us(w, degree)
            if gain <= 0.0:
                continue
            scored.append((gain, v, issuer))
        scored.sort(key=lambda t: (-t[0], t[1], t[2]))
        promoted = 0
        for _gain, v, issuer in scored:
            if promoted >= cfg.promote_per_epoch:
                break
            cache = self.store.servers[issuer].neighbor_cache
            if cache.free_pin_slots == 0:
                continue
            owner = self.store.owner(v)
            row = self.store.servers[owner].local_neighbors(v)
            cache.pin(v, row)
            self.store.ledger.record(EV_REPLICA_INSTALL)
            if row.size:
                self.store.ledger.record(EV_ITEM_SHIPPED, times=int(row.size))
            self.runtime.metrics.counter("placement.promote").inc()
            promoted += 1
        return promoted

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def totals(self) -> dict:
        """Cumulative decision counts over all epochs (plain dict)."""
        keys = ("demoted", "migrated", "migrate_items", "migrate_aborted", "promoted")
        out = {k: sum(int(r[k]) for r in self.epoch_reports) for k in keys}
        out["epochs"] = len(self.epoch_reports)
        return out

    def __repr__(self) -> str:
        t = self.totals()
        return (
            f"PlacementController(epochs={t['epochs']}, "
            f"promoted={t['promoted']}, demoted={t['demoted']}, "
            f"migrated={t['migrated']})"
        )


def attach_placement(
    store: DistributedGraphStore,
    config: "PlacementConfig | None" = None,
) -> PlacementController:
    """Convenience: stand up a controller (and its recorder) on ``store``."""
    if not isinstance(store, DistributedGraphStore):
        raise StorageError("placement needs a DistributedGraphStore")
    return PlacementController(store, config=config)
