"""The distributed graph store: routing, caching and exact cost accounting.

:class:`DistributedGraphStore` glues together a partition assignment, one
:class:`GraphServer` per worker, a neighbor-cache policy and a
:class:`CostModel`. Every read states which worker issued it, and the router
charges exactly one of three paths:

* the issuer owns the vertex            -> ``local_read``
* the issuer's neighbor cache hits      -> ``cache_hit``
* otherwise                             -> ``remote_rpc`` + per-item shipping
  (plus a demand-fill admission when the policy is LRU)

These counters are the entire substance of Figures 8–9 and Table 4, so the
experiments measure them exactly and convert to time through the cost model.

Cross-server traffic is mediated by the simulated RPC runtime
(:mod:`repro.runtime`): the batch entry points ``get_neighbors_batch`` /
``get_attrs_batch`` coalesce a batch's remote misses into one deduplicated
request per owning server — charging one ``remote_rpc`` per batch instead of
one per vertex — with seeded fault injection, capped-backoff retries and
cache-replica failover handled by the attached :class:`RpcRuntime`.

:func:`build_distributed` reproduces the Figure 7 pipeline: edges are
streamed to workers by the partition's ASSIGN function and each worker builds
its shard; with ``p`` workers the (simulated) build time is the *critical
path* — the slowest worker's measured ingestion time — plus a coordination
term, exactly how a synchronous distributed build behaves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ReadUnavailableError, RetryExhaustedError, StorageError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph
from repro.storage.cache import CachePolicy, make_cache
from repro.storage.costmodel import (
    EV_ATTR_CACHE_HIT,
    EV_ATTR_DECODE,
    EV_CACHE_FILL,
    EV_CACHE_HIT,
    EV_COORDINATION,
    EV_DEGRADED_READ,
    EV_EDGE_INGESTED,
    EV_FAILOVER_READ,
    EV_ITEM_SHIPPED,
    EV_LOCAL_READ,
    EV_REMOTE_RPC,
    EV_REPLICA_REFRESH,
    EV_SUSPECT_ROUTE,
    EV_VERTEX_MIGRATED,
    CostModel,
)
from repro.obs.timeseries import NULL_TIMESERIES
from repro.obs.workload import NULL_RECORDER
from repro.runtime.batching import RequestBatcher
from repro.runtime.rpc import KIND_ATTRS, KIND_NEIGHBORS, RpcRuntime
from repro.storage.partition.base import PartitionAssignment, Partitioner
from repro.storage.partition.hashcut import EdgeCutPartitioner
from repro.storage.replicas import ReplicaRegistry
from repro.storage.server import GraphServer
from repro.utils.rng import make_rng
from repro.utils.timer import CostAccumulator


class DistributedGraphStore:
    """A cluster of :class:`GraphServer` shards with accounted routing."""

    def __init__(
        self,
        graph: Graph,
        assignment: PartitionAssignment,
        cost_model: CostModel | None = None,
        cache_policy: CachePolicy | None = None,
        cache_budget_fraction: float = 0.0,
        attr_cache_capacity: int = 4096,
        seed: int = 0,
        degraded_reads: bool = False,
    ) -> None:
        if assignment.graph is not graph:
            raise StorageError("assignment was computed for a different graph")
        self.graph = graph
        self.assignment = assignment
        self.cost_model = cost_model or CostModel()
        self.ledger: CostAccumulator = self.cost_model.accumulator()
        self._rng = make_rng(seed)

        self.servers: list[GraphServer] = []
        for p in range(assignment.n_parts):
            self.servers.append(
                GraphServer(
                    part_id=p,
                    owned_vertices=assignment.part_vertices(p),
                    graph=graph,
                    attr_cache_capacity=attr_cache_capacity,
                )
            )

        # The replica registry tracks which servers hold which cached
        # vertices; servers keep it in sync through their caches (pins and
        # admissions register, invalidations and evictions deregister).
        self.replicas = ReplicaRegistry(assignment.n_parts)
        for server in self.servers:
            server.bind_replica_registry(self.replicas)

        #: When True, a neighbors read that no healthy server or replica
        #: can serve degrades to an empty row (``EV_DEGRADED_READ``)
        #: instead of raising. Attribute reads never degrade — a feature
        #: row cannot be faked — so they raise regardless.
        self.degraded_reads = degraded_reads

        self.cache_policy = cache_policy
        if cache_policy is not None and cache_budget_fraction > 0:
            budget = int(cache_budget_fraction * graph.n_vertices)
            self._install_caches(cache_policy, budget)
        self._cache_budget = (
            int(cache_budget_fraction * graph.n_vertices)
            if cache_budget_fraction > 0
            else 0
        )
        self._failed: set[int] = set()
        self.runtime: "RpcRuntime | None" = None
        self._batcher = RequestBatcher()
        #: Workload-introspection hooks (repro.obs). Null objects by
        #: default: disabled runs pay one attribute check per batch.
        self.recorder = NULL_RECORDER
        self.timeseries = NULL_TIMESERIES

    # ------------------------------------------------------------------ #
    # Cache installation
    # ------------------------------------------------------------------ #
    def _install_caches(self, policy: CachePolicy, budget: int) -> None:
        """Give every server a neighbor cache built under ``policy``.

        The paper caches an important vertex's out-neighbors "on each
        partition it occurs" — operationally, every server can then resolve
        that vertex locally, so we install the selected set on all servers.
        """
        for server in self.servers:
            server.neighbor_cache = make_cache(policy, self.graph, budget, self._rng)

    def set_cache_policy(self, policy: CachePolicy, budget: int) -> None:
        """Swap the neighbor-cache policy at runtime (used by Figure 9)."""
        self.cache_policy = policy
        self._cache_budget = budget
        self._install_caches(policy, budget)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        """Number of graph servers."""
        return len(self.servers)

    def owner(self, vertex: int) -> int:
        """The worker owning ``vertex``."""
        if not 0 <= vertex < self.graph.n_vertices:
            raise StorageError(f"unknown vertex {vertex}")
        return int(self.assignment.vertex_to_part[vertex])

    # ------------------------------------------------------------------ #
    # Failure injection (operational concern of any production cluster)
    # ------------------------------------------------------------------ #
    def fail_worker(self, part: int) -> None:
        """Take worker ``part`` offline: its shard stops serving reads."""
        if not 0 <= part < self.n_workers:
            raise StorageError(f"unknown worker {part}")
        self._failed.add(part)

    def restore_worker(self, part: int) -> None:
        """Bring a failed worker back (its shard is intact — fail-stop)."""
        self._failed.discard(part)

    @property
    def failed_workers(self) -> "frozenset[int]":
        """The currently offline workers."""
        return frozenset(self._failed)

    # ------------------------------------------------------------------ #
    # The unified read path
    #
    # Every read — scalar or batched, neighbors or attributes — resolves
    # through _resolve_read, so local/cached/remote/failover/degraded
    # semantics are identical on all four entry points. Scalar reads are
    # batches of one: same validation, same ledger events, same failure
    # behaviour.
    # ------------------------------------------------------------------ #
    def attach_runtime(self, runtime: RpcRuntime) -> None:
        """Install the RPC runtime mediating this store's batched reads.

        A runtime carrying an enabled tracer is bound to the cost ledger:
        every ledger event recorded while a trace span is open is stamped
        with that span's ids (the ledger<->trace cross-reference).
        """
        if runtime.store is not self:
            raise StorageError("runtime was constructed for a different store")
        self.runtime = runtime
        self._batcher.max_batch_size = runtime.max_batch_size
        if runtime.tracer.enabled:
            runtime.tracer.bind_ledger(self.ledger)

    def attach_recorder(self, recorder: "object") -> None:
        """Install an :class:`~repro.obs.workload.AccessRecorder`.

        The dispatch loop feeds it one ``(vertex, owner, issuer, route)``
        call per resolved read — the per-key stream the workload miners
        (and the future adaptive partitioner) consume. Pass
        :data:`~repro.obs.workload.NULL_RECORDER` to detach.
        """
        self.recorder = recorder

    def attach_timeseries(self, sampler: "object") -> None:
        """Install a :class:`~repro.obs.timeseries.TimeSeriesSampler`.

        Polled once per resolved read batch, so metric snapshots advance
        with the virtual clock as the workload runs. Pass
        :data:`~repro.obs.timeseries.NULL_TIMESERIES` to detach.
        """
        self.timeseries = sampler

    def _ensure_runtime(self) -> RpcRuntime:
        """The attached runtime, creating a fault-free default on first use."""
        if self.runtime is None:
            self.attach_runtime(RpcRuntime(self))
        return self.runtime

    def _replica_peek(self, vertex: int, exclude_part: int) -> "np.ndarray | None":
        """A healthy replica's copy of ``vertex``'s neighbors, or None.

        Resolved through the replica registry (one dict lookup, not a scan
        over servers) and read with ``peek`` so availability probes never
        touch any cache's hit/miss counters.
        """
        for p in self.replicas.holders(vertex):
            if p == exclude_part or p in self._failed:
                continue
            row = self.servers[p].neighbor_cache.peek(vertex)
            if row is not None:
                return row
        return None

    def _read_unavailable(
        self, vertex: int, kind: str, from_part: int = -1
    ) -> np.ndarray:
        """Last resort for a read no server or replica can serve."""
        if self.degraded_reads and kind == KIND_NEIGHBORS:
            self.ledger.record(EV_DEGRADED_READ)
            if self.runtime is not None:
                self.runtime.metrics.counter("reads.degraded").inc()
            if self.recorder.enabled and from_part >= 0:
                self.recorder.record(
                    vertex, self.owner(vertex), from_part, "degraded"
                )
            return np.zeros(0, dtype=np.int64)
        raise ReadUnavailableError(vertex, self.owner(vertex), kind)

    def _failover_read(self, vertex: int, from_part: int, kind: str) -> np.ndarray:
        """Serve a read whose owner is unreachable from a healthy replica.

        Replicas exist wherever a neighbor cache pinned/holds the vertex —
        exactly the importance-cache entries ("cached on each partition it
        occurs") — so hot vertices survive worker loss, cold ones do not.
        Attribute rows have no replicas, so attr reads go straight to
        :meth:`_read_unavailable` (raise, or degrade when enabled).
        """
        if kind == KIND_NEIGHBORS:
            row = self._replica_peek(vertex, from_part)
            if row is not None:
                self.ledger.record(EV_FAILOVER_READ)
                if self.recorder.enabled:
                    self.recorder.record(
                        vertex, self.owner(vertex), from_part, "failover"
                    )
                return row
        return self._read_unavailable(vertex, kind, from_part)

    def _resolve_read(
        self, kind: str, vertices: "np.ndarray | list[int]", from_part: int
    ) -> "dict[int, np.ndarray]":
        """Resolve a deduplicated read batch as seen by ``from_part``.

        Per-vertex routing, in order: owned shard (local), issuer neighbor
        cache, fail-stopped owner -> replica failover, suspect owner ->
        replica route (with probing), otherwise remote via the runtime —
        one coalesced request per owning server. RPC failures past the
        retry budget fall back to replica failover per vertex and raise
        :class:`~repro.errors.RetryExhaustedError` when no replica holds
        the data (or degrade, see ``degraded_reads``).
        """
        if kind not in (KIND_NEIGHBORS, KIND_ATTRS):
            raise StorageError(f"unknown read kind {kind!r}")
        if not 0 <= from_part < self.n_workers:
            raise StorageError(f"unknown worker {from_part}")
        if from_part in self._failed:
            raise StorageError(f"issuing worker {from_part} is down")
        runtime = self._ensure_runtime()
        with runtime.tracer.span(
            "store.resolve_read", kind=kind, issuer=from_part
        ) as read_span:
            results = self._resolve_read_traced(
                kind, vertices, from_part, runtime, read_span
            )
        self.timeseries.poll()
        return results

    def _resolve_read_traced(
        self,
        kind: str,
        vertices: "np.ndarray | list[int]",
        from_part: int,
        runtime: RpcRuntime,
        read_span: "object",
    ) -> "dict[int, np.ndarray]":
        health = runtime.health
        issuer = self.servers[from_part]
        nb_cache = issuer.neighbor_cache
        demand_fill = (
            kind == KIND_NEIGHBORS
            and self.cache_policy is not None
            and self.cache_policy.demand_filled
        )
        # Hoisted once per batch: the disabled recorder costs the loop one
        # `is not None` check per vertex (the NULL_TRACER overhead bar).
        rec = self.recorder if self.recorder.enabled else None

        # Dedup and validate the whole batch with array ops: np.unique on
        # the raw ids, re-sorted to first-seen order so replays (and the
        # ledger events the ordered loop below emits) stay deterministic.
        arr = np.asarray(vertices, dtype=np.int64).reshape(-1)
        if arr.size:
            uniq, first_idx = np.unique(arr, return_index=True)
            uniq = uniq[np.argsort(first_idx, kind="stable")]
        else:
            uniq = arr
        oob = (uniq < 0) | (uniq >= self.graph.n_vertices)
        if oob.any():
            raise StorageError(f"unknown vertex {int(uniq[oob][0])}")
        owners = self.assignment.vertex_to_part[uniq]

        # Pinned caches never mutate on access, so one np.isin answers
        # every cache probe for the batch; the loop then only touches the
        # cache for actual hits. LRU caches mutate recency per access and
        # keep the per-vertex probe (probe_mask=None).
        probe_mask = None
        if kind == KIND_NEIGHBORS and nb_cache.supports_batch_probe:
            probe_mask = nb_cache.probe_batch(uniq)

        results: "dict[int, np.ndarray]" = {}
        remote_v: "list[int]" = []
        remote_owner: "list[int]" = []
        probe_misses = 0
        # Dispatch stays an ordered scalar loop: each arm records ledger
        # events whose order is part of the deterministic trace contract.
        for i, (v, owner) in enumerate(zip(uniq.tolist(), owners.tolist())):
            server = self.servers[owner]
            if owner == from_part:
                if rec is not None:
                    rec.record(v, owner, from_part, "local")
                if kind == KIND_NEIGHBORS:
                    self.ledger.record(EV_LOCAL_READ)
                    results[v] = server.local_neighbors(v)
                else:
                    if not server.attrs.has_vertex_attr(v):
                        raise StorageError(
                            f"vertex {v} has no attributes stored"
                        )
                    was_cached = v in server.attrs.iv_cache
                    results[v] = server.local_vertex_attr(v)
                    self.ledger.record(
                        EV_ATTR_CACHE_HIT if was_cached else EV_ATTR_DECODE
                    )
                continue
            if kind == KIND_NEIGHBORS:
                if probe_mask is not None:
                    if probe_mask[i]:
                        cached = nb_cache.get(v)
                        self.ledger.record(EV_CACHE_HIT)
                        if rec is not None:
                            rec.record(v, owner, from_part, "cache_hit")
                        results[v] = cached
                        continue
                    probe_misses += 1
                else:
                    cached = nb_cache.get(v)
                    if cached is not None:
                        self.ledger.record(EV_CACHE_HIT)
                        if rec is not None:
                            rec.record(v, owner, from_part, "cache_hit")
                        results[v] = cached
                        continue
            if owner in self._failed:
                results[v] = self._failover_read(v, from_part, kind)
                continue
            if kind == KIND_ATTRS and not server.attrs.has_vertex_attr(v):
                raise StorageError(f"vertex {v} has no attributes stored")
            if (
                kind == KIND_NEIGHBORS
                and health.is_suspect(owner)
                and not health.should_probe(owner)
            ):
                row = self._replica_peek(v, from_part)
                if row is not None:
                    self.ledger.record(EV_SUSPECT_ROUTE)
                    runtime.metrics.counter("health.suspect_routes").inc()
                    if rec is not None:
                        rec.record(v, owner, from_part, "suspect")
                    results[v] = row
                    continue
            remote_v.append(v)
            remote_owner.append(owner)
        if probe_misses:
            nb_cache.record_misses(probe_misses)

        read_span.annotate(
            vertices=int(uniq.size),
            resolved_local=len(results),
            remote=len(remote_v),
        )
        if not remote_v:
            return results
        with runtime.tracer.span("batch.plan", kind=kind) as plan_span:
            batches = self._batcher.plan_grouped(
                kind,
                np.asarray(remote_v, dtype=np.int64),
                np.asarray(remote_owner, dtype=np.int64),
            )
            plan_span.annotate(reads=len(remote_v), batches=len(batches))
        requests = [
            runtime.make_request(b.kind, from_part, b.dst_part, b.vertices)
            for b in batches
        ]
        for req, resp in zip(requests, runtime.execute(requests)):
            if resp.ok:
                self.ledger.record(EV_REMOTE_RPC)
                if rec is not None:
                    for v in resp.payload:
                        rec.record(v, req.dst_part, from_part, "remote")
                if kind == KIND_NEIGHBORS:
                    shipped = sum(int(row.size) for row in resp.payload.values())
                    self.ledger.record(EV_ITEM_SHIPPED, times=shipped)
                    for v, row in resp.payload.items():
                        results[v] = row
                        if demand_fill:
                            issuer.neighbor_cache.admit(v, row)
                            self.ledger.record(EV_CACHE_FILL)
                else:
                    for v, row in resp.payload.items():
                        results[v] = row
                        self.ledger.record(
                            EV_ATTR_CACHE_HIT
                            if resp.meta.get(v)
                            else EV_ATTR_DECODE
                        )
            else:
                for v in req.vertices:
                    try:
                        results[v] = self._failover_read(v, from_part, kind)
                    except ReadUnavailableError as exc:
                        raise RetryExhaustedError(
                            f"{kind} of vertex {v}: {resp.error}, "
                            "and no healthy replica holds it",
                            resp.attempts,
                        ) from exc
        return results

    def neighbors(self, vertex: int, from_part: int) -> np.ndarray:
        """Out-neighbors of ``vertex`` as seen by worker ``from_part``.

        A batch of one through the unified read path: charges
        local/cached/remote cost according to where the data lives; reads
        of vertices owned by failed workers fail over to any healthy cache
        replica (or raise when none exists).
        """
        return self._resolve_read(KIND_NEIGHBORS, (vertex,), from_part)[
            int(vertex)
        ]

    def vertex_attr(self, vertex: int, from_part: int) -> np.ndarray:
        """Attribute row of ``vertex`` as seen by worker ``from_part``.

        A batch of one through the unified read path — validation and
        failure semantics are identical to :meth:`neighbors`: unknown or
        down issuers are rejected and reads of vertices owned by failed
        workers raise (attribute rows have no replicas to fail over to).
        """
        return self._resolve_read(KIND_ATTRS, (vertex,), from_part)[int(vertex)]

    def get_neighbors_batch(
        self, vertices: "np.ndarray | list[int]", from_part: int
    ) -> "dict[int, np.ndarray]":
        """Out-neighbors of a vertex batch as seen by worker ``from_part``.

        Routing per vertex is identical to :meth:`neighbors` (same shared
        path), but all remote misses coalesce into one deduplicated
        request per owning server through the runtime: the ledger charges
        one ``remote_rpc`` per batch plus per-item shipping. A batch whose
        retries are exhausted falls back to a per-vertex failover read and
        raises :class:`~repro.errors.RetryExhaustedError` when no replica
        holds the vertex.
        """
        return self._resolve_read(KIND_NEIGHBORS, vertices, from_part)

    def get_attrs_batch(
        self, vertices: "np.ndarray | list[int]", from_part: int
    ) -> "dict[int, np.ndarray]":
        """Attribute rows of a vertex batch as seen by worker ``from_part``.

        Remote rows coalesce into one request per owning server; the ledger
        charges one ``remote_rpc`` per batch and the per-vertex decode /
        IV-cache-hit events exactly as :meth:`vertex_attr` does. Reads of
        vertices owned by failed workers raise :class:`StorageError`
        (attribute rows have no replicas), and the issuer-down check is the
        same one every other read path applies.
        """
        return self._resolve_read(KIND_ATTRS, vertices, from_part)

    # ------------------------------------------------------------------ #
    # Streaming updates (the "frequent edge updates" regime of §3.2)
    # ------------------------------------------------------------------ #
    def apply_edge_events(self, events: "list") -> int:
        """Apply a batch of :class:`~repro.graph.dynamic.EdgeEvent` updates.

        Additions/removals are routed to the source vertex's owning shard;
        every server's cached copy of the touched vertex's neighbor list is
        invalidated so subsequent reads observe the new adjacency. Servers
        that held the vertex as a *pinned* (importance-selected) entry are
        re-pinned with the fresh adjacency — a hot vertex keeps its replica
        set, and therefore its failover coverage, across updates (one
        ``replica_refresh`` push plus per-item shipping per holder).
        Demand-filled (LRU) copies are dropped only; they re-fill on the
        next access. Returns the number of applied events. Note: the
        immutable analytical snapshot (``self.graph``) is not mutated —
        this is the serving path.
        """
        applied = 0
        for ev in events:
            owner = self.owner(ev.src)
            if owner in self._failed:
                raise StorageError(
                    f"cannot apply update: owner worker {owner} is down"
                )
            server = self.servers[owner]
            pinned_holders = [
                p
                for p in self.replicas.holders(ev.src)
                if self.servers[p].neighbor_cache.is_pinned(ev.src)
            ]
            if ev.kind == "add":
                server.add_local_edge(ev.src, ev.dst)
                applied += 1
            elif server.remove_local_edge(ev.src, ev.dst):
                applied += 1
            self.ledger.record(EV_EDGE_INGESTED)
            for other in self.servers:
                other.neighbor_cache.invalidate(ev.src)
            if pinned_holders:
                fresh = server.local_neighbors(ev.src)
                for p in pinned_holders:
                    self.servers[p].neighbor_cache.pin(ev.src, fresh)
                    if p != owner:
                        self.ledger.record(EV_REPLICA_REFRESH)
                        self.ledger.record(
                            EV_ITEM_SHIPPED, times=int(fresh.size)
                        )
        return applied

    def commit_migration(self, vertex: int, new_part: int) -> int:
        """Flip ownership of ``vertex`` to ``new_part``; returns the old owner.

        The placement controller calls this only after the data handoff
        succeeded (row installed on ``new_part``, old owner released), so
        the flip is the last, purely-local step of the migration protocol —
        reads before it route to the old owner's (still-installed) shard,
        reads after it to the new owner's. The new owner's cached replica
        of the vertex, if any, is dropped: owned rows are served from the
        shard, and a lingering registry entry would advertise a failover
        copy on the very server whose failure it should cover.
        """
        if not 0 <= new_part < self.n_workers:
            raise StorageError(f"unknown worker {new_part}")
        if not self.servers[new_part].owns(int(vertex)):
            raise StorageError(
                f"cannot commit migration of vertex {vertex}: "
                f"worker {new_part} has not ingested it"
            )
        previous = self.assignment.reassign_vertex(int(vertex), new_part)
        self.servers[new_part].neighbor_cache.invalidate(int(vertex))
        self.ledger.record(EV_VERTEX_MIGRATED)
        return previous

    def reset_ledger(self) -> None:
        """Zero the cost counters (cache contents are kept)."""
        self.ledger.reset()

    def cache_hit_rate(self) -> float:
        """Aggregate neighbor-cache hit rate across servers."""
        hits = sum(s.neighbor_cache.hits for s in self.servers)
        misses = sum(s.neighbor_cache.misses for s in self.servers)
        total = hits + misses
        return hits / total if total else 0.0


@dataclass(frozen=True)
class BuildReport:
    """Timing report of one distributed graph build (Figure 7 row)."""

    n_workers: int
    n_edges: int
    per_worker_seconds: tuple[float, ...]
    critical_path_seconds: float
    coordination_seconds: float

    @property
    def total_seconds(self) -> float:
        """Modelled wall time: slowest worker + coordination."""
        return self.critical_path_seconds + self.coordination_seconds


def make_store(
    graph: Graph,
    n_workers: int,
    partitioner: Partitioner | None = None,
    cost_model: CostModel | None = None,
    cache_policy: CachePolicy | None = None,
    cache_budget_fraction: float = 0.0,
    seed: int = 0,
    degraded_reads: bool = False,
) -> DistributedGraphStore:
    """Partition ``graph`` and stand up a distributed store over it."""
    partitioner = partitioner or EdgeCutPartitioner()
    assignment = partitioner.partition(graph, n_workers)
    return DistributedGraphStore(
        graph,
        assignment,
        cost_model=cost_model,
        cache_policy=cache_policy,
        cache_budget_fraction=cache_budget_fraction,
        seed=seed,
        degraded_reads=degraded_reads,
    )


def build_distributed(
    graph: Graph,
    n_workers: int,
    cost_model: CostModel | None = None,
    coordination_rounds: int = 3,
) -> tuple[DistributedGraphStore, BuildReport]:
    """Simulate the distributed build of Figure 7.

    Edges are routed to workers by source-vertex hash (the stateless ASSIGN
    of Algorithm 2 lines 1–4); each worker's shard ingestion is *actually
    executed and wall-clock timed*, worker by worker, and the reported build
    time is the critical path ``max_w(t_w)`` plus a coordination term —
    i.e. the time a p-worker cluster doing this identical work in parallel
    would take.
    """
    cost_model = cost_model or CostModel()
    partitioner = EdgeCutPartitioner()
    assignment = partitioner.partition(graph, n_workers)
    src, dst, w = graph.edge_array()
    edge_parts = assignment.edge_to_part

    per_worker: list[float] = []
    ledger = cost_model.accumulator()
    for p in range(n_workers):
        mask = edge_parts == p
        p_src, p_dst, p_w = src[mask], dst[mask], w[mask]
        start = time.perf_counter()
        builder = GraphBuilder(directed=graph.directed)
        for i in range(p_src.size):
            builder.add_edge(int(p_src[i]), int(p_dst[i]), weight=float(p_w[i]))
        builder.build()
        per_worker.append(time.perf_counter() - start)
        ledger.record(EV_EDGE_INGESTED, times=int(p_src.size))
    ledger.record(EV_COORDINATION, times=coordination_rounds)

    report = BuildReport(
        n_workers=n_workers,
        n_edges=graph.n_edges,
        per_worker_seconds=tuple(per_worker),
        critical_path_seconds=max(per_worker) if per_worker else 0.0,
        coordination_seconds=coordination_rounds * cost_model.coordination_us / 1e6,
    )
    store = DistributedGraphStore(graph, assignment, cost_model=cost_model)
    return store, report
