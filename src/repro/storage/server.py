"""One simulated graph server: a partition's shard plus its caches (§3.2).

A :class:`GraphServer` owns a set of vertices and the out-adjacency rows of
their edges, stores attributes in a :class:`SeparateAttributeStore` (the
IV/IE indices with LRU fronts) and holds a :class:`NeighborCache` of
important *remote* vertices' neighbor lists. All cross-server traffic is
mediated — and accounted — by :class:`repro.storage.cluster.
DistributedGraphStore`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.graph.graph import Graph
from repro.storage.attributes import SeparateAttributeStore
from repro.storage.cache import NeighborCache


class GraphServer:
    """Shard of the graph owned by one simulated worker."""

    def __init__(
        self,
        part_id: int,
        owned_vertices: np.ndarray,
        graph: Graph,
        attr_cache_capacity: int = 4096,
        neighbor_cache_capacity: int = 0,
    ) -> None:
        self.part_id = part_id
        self.owned = np.asarray(owned_vertices, dtype=np.int64)
        self._owned_set = set(int(v) for v in self.owned)
        self._graph = graph
        # Local adjacency: copy out the rows this server owns. The copy is
        # what makes the shard a real shard — reads of non-owned vertices
        # cannot be served from here.
        self._adjacency: dict[int, np.ndarray] = {
            int(v): np.array(graph.out_neighbors(int(v)), dtype=np.int64)
            for v in self.owned
        }
        self._adj_weights: dict[int, np.ndarray] = {
            int(v): np.array(graph.out_weights(int(v)), dtype=np.float64)
            for v in self.owned
        }
        self.attrs = SeparateAttributeStore(
            vertex_cache_capacity=attr_cache_capacity,
            edge_cache_capacity=attr_cache_capacity,
        )
        self._replica_registry = None  # ReplicaRegistry | None
        self._neighbor_cache = NeighborCache(neighbor_cache_capacity)

    @property
    def neighbor_cache(self) -> NeighborCache:
        """This server's neighbor cache (assignment rebinds the registry)."""
        return self._neighbor_cache

    @neighbor_cache.setter
    def neighbor_cache(self, cache: NeighborCache) -> None:
        self._neighbor_cache = cache
        if self._replica_registry is not None:
            self._replica_registry.drop_part(self.part_id)
            cache.bind(self._replica_registry, self.part_id)

    def bind_replica_registry(self, registry) -> None:
        """Keep ``registry`` in sync with this server's cache contents.

        Current contents register immediately; future cache swaps (policy
        changes, manual replica installs) rebind automatically through the
        :attr:`neighbor_cache` setter.
        """
        self._replica_registry = registry
        registry.drop_part(self.part_id)
        self._neighbor_cache.bind(registry, self.part_id)

    def __repr__(self) -> str:
        return (
            f"GraphServer(part={self.part_id}, vertices={self.owned.size}, "
            f"cache={len(self.neighbor_cache)})"
        )

    def owns(self, vertex: int) -> bool:
        """Whether this server is the owner of ``vertex``."""
        return vertex in self._owned_set

    @property
    def n_local_edges(self) -> int:
        """Out-edges stored on this shard."""
        return sum(a.size for a in self._adjacency.values())

    def local_neighbors(self, vertex: int) -> np.ndarray:
        """Out-neighbors of an owned vertex (raises if not owned)."""
        try:
            return self._adjacency[vertex]
        except KeyError:
            raise StorageError(
                f"server {self.part_id} does not own vertex {vertex}"
            ) from None

    def local_weights(self, vertex: int) -> np.ndarray:
        """Edge weights aligned with :meth:`local_neighbors`."""
        try:
            return self._adj_weights[vertex]
        except KeyError:
            raise StorageError(
                f"server {self.part_id} does not own vertex {vertex}"
            ) from None

    def add_local_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Append an out-edge to an owned vertex's adjacency row.

        The streaming-update path: new behaviour events land on the source
        vertex's owning shard without a rebuild.
        """
        if not self.owns(src):
            raise StorageError(
                f"server {self.part_id} cannot ingest edge of foreign vertex {src}"
            )
        if weight <= 0:
            raise StorageError(f"edge weight must be positive, got {weight}")
        self._adjacency[src] = np.append(self._adjacency[src], np.int64(dst))
        self._adj_weights[src] = np.append(self._adj_weights[src], float(weight))

    def remove_local_edge(self, src: int, dst: int) -> bool:
        """Drop the first ``src -> dst`` arc; returns whether one existed."""
        if not self.owns(src):
            raise StorageError(
                f"server {self.part_id} cannot touch foreign vertex {src}"
            )
        row = self._adjacency[src]
        hits = np.flatnonzero(row == dst)
        if hits.size == 0:
            return False
        keep = np.ones(row.size, dtype=bool)
        keep[hits[0]] = False
        self._adjacency[src] = row[keep]
        self._adj_weights[src] = self._adj_weights[src][keep]
        return True

    def ingest_vertex(
        self,
        vertex: int,
        neighbors: np.ndarray,
        weights: np.ndarray,
        attr: "np.ndarray | None" = None,
    ) -> None:
        """Take ownership of a migrated vertex (adjacency + optional attrs).

        The migration protocol installs here *before* the old owner
        releases, so every instant has at least one server able to serve
        the row. Re-ingesting an owned vertex is an error — the controller
        must never double-commit.
        """
        vertex = int(vertex)
        if self.owns(vertex):
            raise StorageError(
                f"server {self.part_id} already owns vertex {vertex}"
            )
        neighbors = np.asarray(neighbors, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if neighbors.size != weights.size:
            raise StorageError(
                f"vertex {vertex}: {neighbors.size} neighbors vs "
                f"{weights.size} weights"
            )
        self._owned_set.add(vertex)
        self.owned = np.append(self.owned, np.int64(vertex))
        self._adjacency[vertex] = neighbors
        self._adj_weights[vertex] = weights
        if attr is not None:
            self.attrs.put_vertex_attr(vertex, attr)

    def release_vertex(
        self, vertex: int
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray | None]":
        """Surrender ownership of ``vertex``; returns (neighbors, weights, attr).

        Idempotence for the RPC layer lives in the caller (the ownership
        handler treats "not owned" as an already-applied release); here a
        foreign release is an error so unit misuse surfaces loudly.
        """
        vertex = int(vertex)
        if not self.owns(vertex):
            raise StorageError(
                f"server {self.part_id} does not own vertex {vertex}"
            )
        self._owned_set.remove(vertex)
        self.owned = self.owned[self.owned != vertex]
        neighbors = self._adjacency.pop(vertex)
        weights = self._adj_weights.pop(vertex)
        attr = self.attrs.remove_vertex_attr(vertex)
        return neighbors, weights, attr

    def ingest_vertex_attr(self, vertex: int, vector: np.ndarray) -> None:
        """Store an owned vertex's attribute row in the IV index."""
        if not self.owns(vertex):
            raise StorageError(
                f"server {self.part_id} cannot store attrs of foreign vertex {vertex}"
            )
        self.attrs.put_vertex_attr(vertex, vector)

    def local_vertex_attr(self, vertex: int) -> np.ndarray:
        """Attribute row of an owned vertex, through the IV LRU cache."""
        if not self.owns(vertex):
            raise StorageError(
                f"server {self.part_id} does not own vertex {vertex}"
            )
        return self.attrs.get_vertex_attr(vertex)
