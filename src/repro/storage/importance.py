"""Vertex importance and the caching plan of Algorithm 2 (paper §3.2).

The k-th importance of vertex ``v`` is::

    Imp^(k)(v) = D_i^(k)(v) / D_o^(k)(v)                      (Eq. 1)

where ``D_i^(k)``/``D_o^(k)`` count k-hop in/out-neighbors. A vertex whose
out-neighborhood is cached on every partition it appears in saves its many
in-neighbors a remote hop; the denominator prices the replication. Theorems
1–2 show both quantities (and the ratio) stay power-law when degrees are
power-law, so only a tiny vertex fraction clears any threshold — that is the
entire economic argument for this cache, and :func:`plan_importance_cache`
implements Algorithm 2 (lines 5–9) on top of it.

k-hop counts come in two flavours:

* ``method="multiplicity"`` (default) counts k-hop *walks* via sparse
  matrix-vector products — vectorized, O(k·m), and exactly the quantity whose
  power-law tail Theorem 1's proof manipulates;
* ``method="exact"`` counts distinct k-hop neighbors by per-vertex BFS —
  O(n·d^k), intended for small graphs and for tests validating that the two
  flavours agree in ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import StorageError
from repro.graph.graph import Graph


def _out_csr_matrix(graph: Graph) -> sp.csr_matrix:
    indptr, indices, _ = graph.csr_arrays()
    data = np.ones(indices.size, dtype=np.float64)
    return sp.csr_matrix(
        (data, indices, indptr), shape=(graph.n_vertices, graph.n_vertices)
    )


def khop_degrees(
    graph: Graph, k: int, method: str = "multiplicity"
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(D_i^(k), D_o^(k))`` for every vertex.

    See the module docstring for the two methods. For undirected graphs the
    two vectors coincide by symmetry.
    """
    if k < 1:
        raise StorageError(f"hop count k must be >= 1, got {k}")
    if method == "multiplicity":
        # Cumulative walk counts over 1..k hops (Algorithm 2 caches the
        # union of 1..k-hop out-neighborhoods, so both methods count the
        # within-k neighborhood; this one with walk multiplicity).
        a = _out_csr_matrix(graph)
        at = a.T.tocsr()
        ones = np.ones(graph.n_vertices, dtype=np.float64)
        d_out = np.zeros_like(ones)
        step = ones.copy()
        for _ in range(k):
            step = a @ step
            d_out += step
        d_in = np.zeros_like(ones)
        step = ones.copy()
        for _ in range(k):
            step = at @ step
            d_in += step
        return d_in, d_out
    if method == "exact":
        d_out = np.array(
            [_exact_khop_count(graph, v, k, forward=True) for v in range(graph.n_vertices)],
            dtype=np.float64,
        )
        if graph.directed:
            d_in = np.array(
                [
                    _exact_khop_count(graph, v, k, forward=False)
                    for v in range(graph.n_vertices)
                ],
                dtype=np.float64,
            )
        else:
            d_in = d_out.copy()
        return d_in, d_out
    raise StorageError(f"unknown k-hop method {method!r}")


def _exact_khop_count(graph: Graph, v: int, k: int, forward: bool) -> int:
    """Number of distinct vertices reachable from ``v`` in 1..k hops."""
    frontier = {v}
    seen = {v}
    for _ in range(k):
        nxt: set[int] = set()
        for u in frontier:
            nbrs = graph.out_neighbors(u) if forward else graph.in_neighbors(u)
            nxt.update(int(w) for w in nbrs)
        frontier = nxt - seen
        seen |= nxt
        if not frontier:
            break
    return len(seen) - 1


def importance_scores(
    graph: Graph, k: int, method: str = "multiplicity"
) -> np.ndarray:
    """Imp^(k)(v) = D_i^(k)(v) / D_o^(k)(v) per vertex (Eq. 1).

    Vertices with zero k-hop out-neighborhood get importance 0 — they have
    nothing to cache, so they must never clear a positive threshold.
    """
    d_in, d_out = khop_degrees(graph, k, method=method)
    scores = np.zeros(graph.n_vertices, dtype=np.float64)
    nonzero = d_out > 0
    scores[nonzero] = d_in[nonzero] / d_out[nonzero]
    return scores


@dataclass
class CachePlan:
    """Output of Algorithm 2: which vertices to cache at which depth.

    ``cached_by_hop[k]`` holds the vertex ids whose 1..k-hop out-neighborhoods
    are replicated on every partition where the vertex occurs.
    """

    max_hop: int
    thresholds: list[float]
    cached_by_hop: dict[int, np.ndarray] = field(default_factory=dict)

    def all_cached_vertices(self) -> np.ndarray:
        """Union of cached vertices across hops."""
        if not self.cached_by_hop:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(list(self.cached_by_hop.values())))

    def cache_fraction(self, n_vertices: int) -> float:
        """Fraction of the vertex set selected for caching."""
        if n_vertices <= 0:
            return 0.0
        return self.all_cached_vertices().size / n_vertices

    def max_cached_hop(self, vertex: int) -> int:
        """Deepest hop at which ``vertex`` is cached (0 = not cached)."""
        deepest = 0
        for k, ids in self.cached_by_hop.items():
            if np.any(ids == vertex):
                deepest = max(deepest, k)
        return deepest


def plan_importance_cache(
    graph: Graph,
    max_hop: int = 2,
    thresholds: "list[float] | float | None" = None,
    method: str = "multiplicity",
    cost_model: "object | None" = None,
) -> CachePlan:
    """Algorithm 2 lines 5–9: select vertices with Imp^(k) >= tau_k.

    ``thresholds`` is either one value reused for every hop or a list with
    one tau_k per hop. When None (the default), tau comes from the §4 cost
    model's break-even point — ``CostModel.importance_threshold()`` — which
    equals the paper's 0.2 at the default prices, so default behaviour is
    unchanged while the knob is now the *prices*, not a second constant.
    ``cost_model`` overrides the model used for that derivation.
    """
    if thresholds is None:
        if cost_model is None:
            from repro.storage.costmodel import CostModel

            cost_model = CostModel()
        thresholds = float(cost_model.importance_threshold())  # type: ignore[attr-defined]
    if isinstance(thresholds, (int, float)):
        taus = [float(thresholds)] * max_hop
    else:
        taus = [float(t) for t in thresholds]
    if len(taus) != max_hop:
        raise StorageError(
            f"need one threshold per hop: got {len(taus)} for max_hop={max_hop}"
        )
    plan = CachePlan(max_hop=max_hop, thresholds=taus)
    for k in range(1, max_hop + 1):
        scores = importance_scores(graph, k, method=method)
        plan.cached_by_hop[k] = np.flatnonzero(scores >= taus[k - 1]).astype(np.int64)
    return plan
