"""AliGraph storage layer (paper §3.2–3.3 infrastructure).

Reproduces the three storage techniques of the paper — graph partition,
separate structure/attribute storage with LRU-fronted deduplicating indices,
and importance-based caching of neighbors — plus the distributed graph-server
simulation with exact local/remote/cache access accounting and the lock-free
request-flow buckets of Figure 6.
"""

from repro.storage.attributes import AttributeIndex, SeparateAttributeStore
from repro.storage.cache import (
    CachePolicy,
    ImportanceCachePolicy,
    LRUCachePolicy,
    NeighborCache,
    RandomCachePolicy,
    make_cache,
    make_pinned_cache,
)
from repro.storage.cluster import DistributedGraphStore, build_distributed
from repro.storage.costmodel import CostModel
from repro.storage.embedding import (
    EmbeddingKVStore,
    EmbeddingMinibatch,
    EmbeddingShard,
)
from repro.storage.importance import (
    CachePlan,
    importance_scores,
    khop_degrees,
    plan_importance_cache,
)
from repro.storage.placement import (
    PlacementConfig,
    PlacementController,
    attach_placement,
)
from repro.storage.replicas import ReplicaRegistry
from repro.storage.server import GraphServer

__all__ = [
    "AttributeIndex",
    "SeparateAttributeStore",
    "NeighborCache",
    "CachePolicy",
    "ImportanceCachePolicy",
    "RandomCachePolicy",
    "LRUCachePolicy",
    "make_cache",
    "make_pinned_cache",
    "CostModel",
    "GraphServer",
    "ReplicaRegistry",
    "DistributedGraphStore",
    "build_distributed",
    "EmbeddingKVStore",
    "EmbeddingMinibatch",
    "EmbeddingShard",
    "CachePlan",
    "importance_scores",
    "khop_degrees",
    "plan_importance_cache",
    "PlacementConfig",
    "PlacementController",
    "attach_placement",
]
