"""repro — a from-scratch reproduction of AliGraph (VLDB 2019).

A comprehensive graph neural network platform in pure Python: distributed
graph storage (partitioning, deduplicating attribute indices, importance-
based neighbor caching), an optimized sampling layer (TRAVERSE /
NEIGHBORHOOD / NEGATIVE), an operator layer (AGGREGATE / COMBINE with
materialization caching), an autograd NN engine, and the full algorithm zoo
— classic graph embeddings, GNN baselines, and AliGraph's six in-house
models (AHEP, GATNE, Mixture GNN, Hierarchical GNN, Evolving GNN, Bayesian
GNN) — plus synthetic Taobao/Amazon data substrates and a benchmark harness
regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro.data import make_dataset, train_test_split_edges
    from repro.algorithms import GraphSAGE
    from repro.tasks import evaluate_link_prediction

    graph = make_dataset("taobao-small-sim", scale=0.2)
    split = train_test_split_edges(graph, test_fraction=0.2)
    model = GraphSAGE(dim=32, epochs=3).fit(split.train_graph)
    print(evaluate_link_prediction(model.embeddings(), split))
"""

__version__ = "0.1.0"

from repro import (
    algorithms,
    data,
    graph,
    nn,
    ops,
    runtime,
    sampling,
    serving,
    storage,
    tasks,
    utils,
)
from repro.errors import ReproError

__all__ = [
    "algorithms",
    "data",
    "graph",
    "nn",
    "ops",
    "runtime",
    "sampling",
    "serving",
    "storage",
    "tasks",
    "utils",
    "ReproError",
    "__version__",
]
