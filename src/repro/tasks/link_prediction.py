"""Link-prediction evaluation over vertex embeddings.

Given embeddings ``H`` and a :class:`~repro.data.splits.LinkSplit`, scores
each candidate pair with the dot product (or cosine) of its endpoint
embeddings and reports ROC-AUC / PR-AUC / F1, averaged across edge types as
the paper's protocol requires ("each metric is averaged among different
types of edges").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.splits import LinkSplit
from repro.errors import ReproError
from repro.tasks.metrics import f1_score, pr_auc, roc_auc


def score_pairs(
    embeddings: np.ndarray, pairs: np.ndarray, method: str = "dot"
) -> np.ndarray:
    """Similarity score per ``(u, v)`` row of ``pairs``."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ReproError(f"pairs must be (k, 2), got {pairs.shape}")
    u = embeddings[pairs[:, 0]]
    v = embeddings[pairs[:, 1]]
    if method == "dot":
        return np.sum(u * v, axis=1)
    if method == "cosine":
        nu = np.linalg.norm(u, axis=1) + 1e-12
        nv = np.linalg.norm(v, axis=1) + 1e-12
        return np.sum(u * v, axis=1) / (nu * nv)
    raise ReproError(f"unknown scoring method {method!r}")


@dataclass(frozen=True)
class LinkPredictionResult:
    """Metric triple of one evaluation (all in percent, paper convention)."""

    roc_auc: float
    pr_auc: float
    f1: float

    def as_row(self) -> tuple[float, float, float]:
        """The (ROC-AUC, PR-AUC, F1) row for result tables."""
        return (self.roc_auc, self.pr_auc, self.f1)


def evaluate_link_prediction_typed(
    type_embeddings: "dict[int, np.ndarray]",
    split: LinkSplit,
    method: str = "dot",
) -> LinkPredictionResult:
    """Per-type evaluation with *type-specific* embeddings.

    Multiplex models (GATNE, MNE, MVE) learn one embedding per edge type;
    the GATNE evaluation protocol scores each test edge of type ``c`` with
    the type-c embedding and averages metrics across types.
    ``type_embeddings`` maps edge-type code -> (n, d) matrix.
    """
    k = split.test_neg.shape[0] // split.test_pos.shape[0]
    rows = []
    for etype in np.unique(split.test_types):
        emb = type_embeddings.get(int(etype))
        if emb is None:
            continue
        mask = split.test_types == etype
        if mask.sum() < 2:
            continue
        pos = score_pairs(emb, split.test_pos[mask], method)
        neg = score_pairs(emb, split.test_neg[np.repeat(mask, k)], method)
        scores = np.concatenate([pos, neg])
        labels = np.concatenate([np.ones(pos.size), np.zeros(neg.size)])
        rows.append(
            (
                100.0 * roc_auc(scores, labels),
                100.0 * pr_auc(scores, labels),
                100.0 * f1_score(scores, labels),
            )
        )
    if not rows:
        raise ReproError("no edge type had both embeddings and test pairs")
    arr = np.asarray(rows)
    return LinkPredictionResult(*(float(x) for x in arr.mean(axis=0)))


def evaluate_link_prediction(
    embeddings: np.ndarray,
    split: LinkSplit,
    method: str = "dot",
    per_type_average: bool = True,
) -> LinkPredictionResult:
    """Evaluate embeddings on a link split.

    With ``per_type_average`` each metric is computed within each edge type
    present in the test set and averaged (the paper's protocol); types whose
    test set lacks positives or negatives are skipped.
    """
    pos_scores = score_pairs(embeddings, split.test_pos, method)
    neg_scores = score_pairs(embeddings, split.test_neg, method)
    k = split.test_neg.shape[0] // split.test_pos.shape[0]

    def _metrics(p: np.ndarray, n: np.ndarray) -> tuple[float, float, float]:
        scores = np.concatenate([p, n])
        labels = np.concatenate([np.ones(p.size), np.zeros(n.size)])
        return (
            100.0 * roc_auc(scores, labels),
            100.0 * pr_auc(scores, labels),
            100.0 * f1_score(scores, labels),
        )

    if not per_type_average:
        r, p, f = _metrics(pos_scores, neg_scores)
        return LinkPredictionResult(r, p, f)

    rows = []
    for etype in np.unique(split.test_types):
        mask = split.test_types == etype
        if mask.sum() < 2:
            continue
        neg_mask = np.repeat(mask, k)
        rows.append(_metrics(pos_scores[mask], neg_scores[neg_mask]))
    if not rows:
        r, p, f = _metrics(pos_scores, neg_scores)
        return LinkPredictionResult(r, p, f)
    arr = np.asarray(rows)
    return LinkPredictionResult(*(float(x) for x in arr.mean(axis=0)))
