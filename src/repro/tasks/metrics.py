"""Evaluation metrics, implemented from scratch on numpy.

ROC-AUC via the Mann–Whitney rank statistic, PR-AUC by the
precision-recall step integral (average precision), F1 at the optimal
threshold (the convention for embedding link prediction where scores are
uncalibrated), hit-recall@K for recommendation, and micro/macro F1 for
multi-class edge classification.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def _validate_binary(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ReproError("scores and labels must be matching 1-D arrays")
    uniq = set(np.unique(labels).tolist())
    if not uniq <= {0, 1, 0.0, 1.0, False, True}:
        raise ReproError(f"labels must be binary, got values {sorted(uniq)}")
    labels = labels.astype(bool)
    if labels.all() or not labels.any():
        raise ReproError("need both positive and negative labels")
    return scores, labels


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (rank statistic, tie-aware)."""
    scores, labels = _validate_binary(scores, labels)
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks over ties.
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    rank_sum = ranks[labels].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def _tie_boundaries(sorted_scores: np.ndarray) -> np.ndarray:
    """Indices of the last element of each tie group in a sorted array.

    Metrics must only evaluate thresholds at score *boundaries*; otherwise a
    constant score vector lets the (arbitrary) sort order fake a perfect
    ranking.
    """
    change = np.flatnonzero(np.diff(sorted_scores) != 0)
    return np.concatenate([change, [sorted_scores.size - 1]])


def pr_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Average precision (area under the precision-recall curve), tie-aware."""
    scores, labels = _validate_binary(scores, labels)
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = labels[order].astype(np.float64)
    tp = np.cumsum(sorted_labels)
    n_pos = sorted_labels.sum()
    boundaries = _tie_boundaries(sorted_scores)
    # Step integral over recall at distinct-score cutoffs only.
    recall = tp[boundaries] / n_pos
    precision = tp[boundaries] / (boundaries + 1.0)
    prev_recall = np.concatenate([[0.0], recall[:-1]])
    return float(np.sum((recall - prev_recall) * precision))


def f1_score(
    scores: np.ndarray, labels: np.ndarray, threshold: float | None = None
) -> float:
    """Binary F1; with ``threshold=None`` picks the score-maximizing cut.

    Embedding methods produce uncalibrated scores, so the standard protocol
    (used by the GATNE paper this evaluation follows) reports the best F1
    over thresholds.
    """
    scores, labels = _validate_binary(scores, labels)
    if threshold is not None:
        return _f1_at(scores >= threshold, labels)
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = labels[order].astype(np.float64)
    tp = np.cumsum(sorted_labels)
    n_pos = sorted_labels.sum()
    boundaries = _tie_boundaries(sorted_scores)
    k = boundaries + 1.0
    precision = tp[boundaries] / k
    recall = tp[boundaries] / n_pos
    denom = precision + recall
    f1 = np.where(denom > 0, 2 * precision * recall / np.maximum(denom, 1e-12), 0.0)
    return float(f1.max())


def _f1_at(pred: np.ndarray, labels: np.ndarray) -> float:
    tp = float(np.sum(pred & labels))
    fp = float(np.sum(pred & ~labels))
    fn = float(np.sum(~pred & labels))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def hit_recall_at_k(
    ranked_items: np.ndarray, relevant_items: "set[int]", k: int
) -> float:
    """HR@K: fraction of relevant items appearing in the top-k ranking."""
    if k < 1:
        raise ReproError(f"k must be positive, got {k}")
    if not relevant_items:
        return 0.0
    top = set(int(v) for v in np.asarray(ranked_items)[:k])
    return len(top & relevant_items) / len(relevant_items)


def micro_f1(pred: np.ndarray, labels: np.ndarray) -> float:
    """Micro-averaged multi-class F1 (== accuracy for single-label)."""
    pred = np.asarray(pred)
    labels = np.asarray(labels)
    if pred.shape != labels.shape:
        raise ReproError("pred and labels must have matching shapes")
    if pred.size == 0:
        raise ReproError("empty prediction array")
    return float(np.mean(pred == labels))


def macro_f1(pred: np.ndarray, labels: np.ndarray) -> float:
    """Macro-averaged multi-class F1 over the label classes present."""
    pred = np.asarray(pred)
    labels = np.asarray(labels)
    if pred.shape != labels.shape:
        raise ReproError("pred and labels must have matching shapes")
    classes = np.unique(labels)
    if classes.size == 0:
        raise ReproError("empty label array")
    scores = []
    for c in classes:
        tp = float(np.sum((pred == c) & (labels == c)))
        fp = float(np.sum((pred == c) & (labels != c)))
        fn = float(np.sum((pred != c) & (labels == c)))
        if tp == 0:
            scores.append(0.0)
            continue
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))
