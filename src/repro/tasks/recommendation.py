"""Recommendation evaluation: hit-recall at K (Tables 9 and 12).

For each test user, rank all candidate items by embedding similarity
(excluding the user's training items) and measure the fraction of held-out
interactions recovered in the top K, averaged over users.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.tasks.metrics import hit_recall_at_k


def evaluate_recommendation(
    user_embeddings: np.ndarray,
    item_embeddings: np.ndarray,
    train_items: "dict[int, set[int]]",
    test_items: "dict[int, set[int]]",
    ks: "list[int]",
    item_group: np.ndarray | None = None,
) -> dict[int, float]:
    """Mean HR@K over test users.

    ``train_items``/``test_items`` map user index -> item-index sets (item
    indices into ``item_embeddings``). Training items are masked out of the
    ranking. With ``item_group`` (e.g. brand or category id per item), hits
    are counted at group granularity: recommending any item of the right
    group counts — Table 12's brand/category levels.
    """
    if not ks or any(k < 1 for k in ks):
        raise ReproError(f"ks must be positive, got {ks}")
    if not test_items:
        raise ReproError("no test users to evaluate")
    scores_by_k: dict[int, list[float]] = {k: [] for k in ks}
    for user, relevant in test_items.items():
        if not relevant:
            continue
        scores = item_embeddings @ user_embeddings[user]
        seen = train_items.get(user, set())
        if seen:
            scores = scores.copy()
            scores[list(seen)] = -np.inf
        ranked = np.argsort(-scores, kind="mergesort")
        if item_group is not None:
            ranked_groups = item_group[ranked]
            relevant_groups = set(int(item_group[i]) for i in relevant)
            for k in ks:
                scores_by_k[k].append(
                    hit_recall_at_k(ranked_groups, relevant_groups, k)
                )
        else:
            for k in ks:
                scores_by_k[k].append(hit_recall_at_k(ranked, relevant, k))
    return {k: float(np.mean(v)) if v else 0.0 for k, v in scores_by_k.items()}
