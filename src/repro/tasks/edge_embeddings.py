"""Edge-level and subgraph-level embeddings (paper §7, future work #1).

The paper's embeddings are vertex-level; its stated future work extends to
"edge-level and subgraph-level embeddings". This module provides both:

* edge embeddings via the standard binary operators over endpoint vectors
  (node2vec's hadamard / average / weighted-L1 / weighted-L2, plus concat);
* subgraph embeddings via permutation-invariant pooling (mean / max /
  degree-weighted) over the member vertices, with the induced-subgraph
  helper for pooling a vertex set's neighborhood closure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.graph.graph import Graph

EDGE_OPERATORS = ("hadamard", "average", "l1", "l2", "concat")
POOLING = ("mean", "max", "degree")


def edge_embedding(
    vertex_embeddings: np.ndarray,
    pairs: np.ndarray,
    operator: str = "hadamard",
) -> np.ndarray:
    """Embed each ``(u, v)`` pair with a binary operator over endpoints.

    ``hadamard`` is the strongest LP feature map in the node2vec study and
    the default everywhere in this library; ``concat`` doubles the width
    but keeps endpoint-specific signal (used when direction matters).
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ReproError(f"pairs must be (k, 2), got {pairs.shape}")
    u = vertex_embeddings[pairs[:, 0]]
    v = vertex_embeddings[pairs[:, 1]]
    if operator == "hadamard":
        return u * v
    if operator == "average":
        return 0.5 * (u + v)
    if operator == "l1":
        return np.abs(u - v)
    if operator == "l2":
        return (u - v) ** 2
    if operator == "concat":
        return np.concatenate([u, v], axis=1)
    raise ReproError(
        f"unknown edge operator {operator!r} (known: {', '.join(EDGE_OPERATORS)})"
    )


def subgraph_embedding(
    vertex_embeddings: np.ndarray,
    vertices: np.ndarray,
    pooling: str = "mean",
    graph: "Graph | None" = None,
) -> np.ndarray:
    """Pool a vertex set into one vector.

    ``degree`` pooling weights members by out-degree (hubs describe their
    community more than leaves) and needs ``graph``.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        raise ReproError("cannot embed an empty subgraph")
    rows = vertex_embeddings[vertices]
    if pooling == "mean":
        return rows.mean(axis=0)
    if pooling == "max":
        return rows.max(axis=0)
    if pooling == "degree":
        if graph is None:
            raise ReproError("degree pooling needs the graph")
        weights = graph.out_degrees()[vertices].astype(np.float64) + 1.0
        weights /= weights.sum()
        return weights @ rows
    raise ReproError(
        f"unknown pooling {pooling!r} (known: {', '.join(POOLING)})"
    )


def neighborhood_subgraph_embedding(
    vertex_embeddings: np.ndarray,
    graph: Graph,
    center: int,
    hops: int = 1,
    pooling: str = "mean",
) -> np.ndarray:
    """Embed the ``hops``-hop neighborhood closure around ``center``."""
    if hops < 0:
        raise ReproError(f"hops must be non-negative, got {hops}")
    frontier = {int(center)}
    members = {int(center)}
    for _ in range(hops):
        nxt: set[int] = set()
        for v in frontier:
            nxt.update(int(u) for u in graph.out_neighbors(v))
        frontier = nxt - members
        members |= nxt
    return subgraph_embedding(
        vertex_embeddings, np.asarray(sorted(members)), pooling=pooling, graph=graph
    )


def whole_graph_embedding(
    vertex_embeddings: np.ndarray,
    graph: Graph,
    pooling: str = "degree",
) -> np.ndarray:
    """One vector for the entire graph (the paper's furthest future goal)."""
    return subgraph_embedding(
        vertex_embeddings, graph.vertices(), pooling=pooling, graph=graph
    )
