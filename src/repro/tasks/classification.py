"""Multi-class link (edge) classification: the Table 11 task.

The Evolving GNN experiment classifies future links into classes (no link /
normal link / burst link) from endpoint embeddings; micro and macro F1 are
reported. A one-vs-rest logistic head is trained on edge features built from
the embeddings (hadamard product — the standard LP feature map).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.nn.layers import Dense
from repro.nn.loss import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.tasks.metrics import macro_f1, micro_f1
from repro.utils.rng import make_rng


def edge_features(embeddings: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Hadamard edge features ``h_u * h_v`` per pair."""
    pairs = np.asarray(pairs, dtype=np.int64)
    return embeddings[pairs[:, 0]] * embeddings[pairs[:, 1]]


def evaluate_node_classification(
    embeddings: np.ndarray,
    labels: np.ndarray,
    train_fraction: float = 0.7,
    epochs: int = 150,
    lr: float = 0.05,
    seed: int = 0,
) -> tuple[float, float]:
    """Node classification from embeddings: (micro, macro) F1 in %.

    The canonical downstream probe of the application layer: a softmax
    head over frozen vertex embeddings on a random train/test split.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (embeddings.shape[0],):
        raise ReproError("one label per embedding row required")
    if not 0.0 < train_fraction < 1.0:
        raise ReproError("train_fraction must be in (0, 1)")
    classes = np.unique(labels)
    if classes.size < 2:
        raise ReproError("need at least two label classes")
    rng = make_rng(seed)
    perm = rng.permutation(labels.size)
    cut = max(1, int(train_fraction * labels.size))
    train_idx, test_idx = perm[:cut], perm[cut:]
    if test_idx.size == 0:
        raise ReproError("train_fraction leaves no test examples")
    head = Dense(embeddings.shape[1], int(classes.max()) + 1, rng)
    opt = Adam(head.parameters(), lr=lr)
    xt = Tensor(embeddings[train_idx])
    for _ in range(epochs):
        opt.zero_grad()
        loss = cross_entropy(head(xt), labels[train_idx])
        loss.backward()
        opt.step()
    pred = head(Tensor(embeddings[test_idx])).numpy().argmax(axis=1)
    return (
        100.0 * micro_f1(pred, labels[test_idx]),
        100.0 * macro_f1(pred, labels[test_idx]),
    )


def evaluate_edge_classification(
    embeddings: np.ndarray,
    train_pairs: np.ndarray,
    train_labels: np.ndarray,
    test_pairs: np.ndarray,
    test_labels: np.ndarray,
    n_classes: int,
    epochs: int = 120,
    lr: float = 0.05,
    seed: int = 0,
) -> tuple[float, float]:
    """Train a softmax head on edge features; return (micro, macro) F1 in %."""
    if n_classes < 2:
        raise ReproError("need at least two classes")
    train_labels = np.asarray(train_labels, dtype=np.int64)
    test_labels = np.asarray(test_labels, dtype=np.int64)
    x_train = edge_features(embeddings, train_pairs)
    x_test = edge_features(embeddings, test_pairs)
    rng = make_rng(seed)
    head = Dense(x_train.shape[1], n_classes, rng)
    opt = Adam(head.parameters(), lr=lr)
    xt = Tensor(x_train)
    for _ in range(epochs):
        opt.zero_grad()
        loss = cross_entropy(head(xt), train_labels)
        loss.backward()
        opt.step()
    pred = head(Tensor(x_test)).numpy().argmax(axis=1)
    return (
        100.0 * micro_f1(pred, test_labels),
        100.0 * macro_f1(pred, test_labels),
    )
