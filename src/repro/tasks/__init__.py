"""Downstream evaluation tasks and metrics (paper §5.2.1).

Link prediction with ROC-AUC / PR-AUC / F1 (averaged across edge types),
recommendation hit-recall HR@K, and multi-class edge classification with
micro/macro F1 — the four metric families of the paper's evaluation.
"""

from repro.tasks.classification import (
    evaluate_edge_classification,
    evaluate_node_classification,
)
from repro.tasks.edge_embeddings import (
    edge_embedding,
    neighborhood_subgraph_embedding,
    subgraph_embedding,
    whole_graph_embedding,
)
from repro.tasks.link_prediction import (
    evaluate_link_prediction,
    evaluate_link_prediction_typed,
    score_pairs,
)
from repro.tasks.metrics import (
    f1_score,
    hit_recall_at_k,
    macro_f1,
    micro_f1,
    pr_auc,
    roc_auc,
)
from repro.tasks.recommendation import evaluate_recommendation

__all__ = [
    "roc_auc",
    "pr_auc",
    "f1_score",
    "hit_recall_at_k",
    "micro_f1",
    "macro_f1",
    "score_pairs",
    "evaluate_link_prediction",
    "evaluate_link_prediction_typed",
    "evaluate_recommendation",
    "evaluate_edge_classification",
    "evaluate_node_classification",
    "edge_embedding",
    "subgraph_embedding",
    "neighborhood_subgraph_embedding",
    "whole_graph_embedding",
]
