"""Seeded fault injection and retry policy for the simulated RPC runtime.

A :class:`FaultPlan` declares *what* can go wrong — message drops, response
timeouts, slow servers — and :class:`FaultInjector` rolls those dice from one
seeded generator, so a run with a fixed seed replays bit-for-bit. The
:class:`RetryPolicy` is the issuer-side answer: capped exponential backoff
with a bounded attempt budget, after which the store falls back to a
failover read (or raises a typed :class:`~repro.errors.RetryExhaustedError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RuntimeConfigError
from repro.utils.rng import make_rng

#: Delivery outcomes produced by :meth:`FaultInjector.roll`.
OUTCOME_OK = "ok"
OUTCOME_DROP = "drop"  # the request never reaches the server
OUTCOME_TIMEOUT = "timeout"  # the server answers but the response is lost


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the injected failure behaviour.

    ``drop_rate`` and ``timeout_rate`` are per-delivery-attempt
    probabilities; ``slow_parts`` servers serve every request
    ``slow_factor`` times slower (a degraded-but-alive node).
    """

    drop_rate: float = 0.0
    timeout_rate: float = 0.0
    slow_parts: "frozenset[int]" = field(default_factory=frozenset)
    slow_factor: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate <= 1.0:
            raise RuntimeConfigError(f"drop_rate must be in [0, 1], got {self.drop_rate}")
        if not 0.0 <= self.timeout_rate <= 1.0:
            raise RuntimeConfigError(
                f"timeout_rate must be in [0, 1], got {self.timeout_rate}"
            )
        if self.drop_rate + self.timeout_rate > 1.0:
            raise RuntimeConfigError(
                "drop_rate + timeout_rate cannot exceed 1 "
                f"(got {self.drop_rate} + {self.timeout_rate})"
            )
        if self.slow_factor < 1.0:
            raise RuntimeConfigError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )
        # Normalize to a frozenset so the plan is hashable/replayable.
        object.__setattr__(self, "slow_parts", frozenset(self.slow_parts))

    @property
    def fault_free(self) -> bool:
        """Whether this plan can never perturb a request."""
        return (
            self.drop_rate == 0.0
            and self.timeout_rate == 0.0
            and (not self.slow_parts or self.slow_factor == 1.0)
        )


class FaultInjector:
    """Rolls delivery outcomes from a seeded stream, per attempt."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = make_rng(plan.seed)

    def roll(self) -> str:
        """Outcome of one delivery attempt: ``ok`` / ``drop`` / ``timeout``."""
        if self.plan.drop_rate == 0.0 and self.plan.timeout_rate == 0.0:
            return OUTCOME_OK
        u = float(self._rng.random())
        if u < self.plan.drop_rate:
            return OUTCOME_DROP
        if u < self.plan.drop_rate + self.plan.timeout_rate:
            return OUTCOME_TIMEOUT
        return OUTCOME_OK

    def service_factor(self, part: int) -> float:
        """Service-time multiplier of server ``part`` (1.0 when healthy)."""
        return self.plan.slow_factor if part in self.plan.slow_parts else 1.0

    def reset(self) -> None:
        """Rewind the fault stream to the start of the plan's seed."""
        self._rng = make_rng(self.plan.seed)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with a bounded attempt budget."""

    max_attempts: int = 8
    base_backoff_us: float = 100.0
    multiplier: float = 2.0
    cap_us: float = 5_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RuntimeConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_us < 0 or self.cap_us < 0:
            raise RuntimeConfigError("backoff durations must be non-negative")
        if self.multiplier < 1.0:
            raise RuntimeConfigError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )

    def backoff_us(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise RuntimeConfigError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.cap_us, self.base_backoff_us * self.multiplier ** (attempt - 1)
        )
