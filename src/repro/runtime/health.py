"""Server health tracking: suspicion, probing and recovery.

Fail-stop membership (``DistributedGraphStore.fail_worker``) is an
operator-declared fact; *suspicion* is an inference the issuer makes from
traffic. The :class:`HealthTracker` watches every delivery attempt the RPC
runtime makes and marks a server **suspect** after ``suspect_after``
consecutive failures. The store then routes reads of suspect-owned vertices
to cache replicas when one exists (``EV_SUSPECT_ROUTE``), while letting
every ``probe_every``-th such read — and every read with no replica
coverage — through to the suspect server as a probe. ``recover_after``
consecutive successful deliveries flip the server back to healthy.

All transitions are counted in the shared metrics registry
(``health.suspects`` / ``health.recoveries`` / ``health.probes`` /
``health.suspect_routes``) with a ``health.suspect_parts`` gauge, and the
whole state machine is deterministic: same fault seed, same transitions.
"""

from __future__ import annotations

from repro.errors import RuntimeConfigError
from repro.runtime.metrics import MetricsRegistry

#: Health states of one server, as seen by the issuer side.
STATE_HEALTHY = "healthy"
STATE_SUSPECT = "suspect"


class HealthTracker:
    """Per-server failure-streak state machine with probing.

    ``record_failure`` / ``record_success`` are fed by the RPC runtime on
    every delivery attempt; ``should_probe`` is consulted by the store when
    it is about to route a read *around* a suspect server, and returns True
    on every ``probe_every``-th such read so the suspect keeps receiving a
    trickle of traffic to recover through.
    """

    def __init__(
        self,
        n_parts: int,
        suspect_after: int = 3,
        recover_after: int = 2,
        probe_every: int = 8,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if n_parts < 1:
            raise RuntimeConfigError(f"need at least one part, got {n_parts}")
        if suspect_after < 1:
            raise RuntimeConfigError(
                f"suspect_after must be >= 1, got {suspect_after}"
            )
        if recover_after < 1:
            raise RuntimeConfigError(
                f"recover_after must be >= 1, got {recover_after}"
            )
        if probe_every < 1:
            raise RuntimeConfigError(f"probe_every must be >= 1, got {probe_every}")
        self.n_parts = n_parts
        self.suspect_after = suspect_after
        self.recover_after = recover_after
        self.probe_every = probe_every
        self.metrics = metrics or MetricsRegistry()
        self._fail_streak = [0] * n_parts
        self._ok_streak = [0] * n_parts
        self._state = [STATE_HEALTHY] * n_parts
        self._routed_around = [0] * n_parts

    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.n_parts:
            raise RuntimeConfigError(f"unknown part {part} (have {self.n_parts})")

    def state(self, part: int) -> str:
        """Current health state of ``part``."""
        self._check_part(part)
        return self._state[part]

    def is_suspect(self, part: int) -> bool:
        """Whether ``part`` is currently suspected."""
        self._check_part(part)
        return self._state[part] == STATE_SUSPECT

    @property
    def suspect_parts(self) -> "frozenset[int]":
        """The currently suspected servers."""
        return frozenset(
            p for p, s in enumerate(self._state) if s == STATE_SUSPECT
        )

    def _update_gauge(self) -> None:
        self.metrics.gauge("health.suspect_parts").set(len(self.suspect_parts))

    def record_failure(self, part: int) -> None:
        """One failed delivery attempt to ``part`` (drop or timeout)."""
        self._check_part(part)
        self._ok_streak[part] = 0
        self._fail_streak[part] += 1
        if (
            self._state[part] == STATE_HEALTHY
            and self._fail_streak[part] >= self.suspect_after
        ):
            self._state[part] = STATE_SUSPECT
            self._routed_around[part] = 0
            self.metrics.counter("health.suspects").inc()
            self._update_gauge()

    def record_success(self, part: int) -> None:
        """One successful delivery to ``part``."""
        self._check_part(part)
        self._fail_streak[part] = 0
        if self._state[part] != STATE_SUSPECT:
            return
        self._ok_streak[part] += 1
        if self._ok_streak[part] >= self.recover_after:
            self._state[part] = STATE_HEALTHY
            self._ok_streak[part] = 0
            self.metrics.counter("health.recoveries").inc()
            self._update_gauge()

    def should_probe(self, part: int) -> bool:
        """Whether a read about to be routed around ``part`` should instead
        go through to it as a probe (every ``probe_every``-th such read)."""
        self._check_part(part)
        self._routed_around[part] += 1
        if self._routed_around[part] % self.probe_every == 0:
            self.metrics.counter("health.probes").inc()
            return True
        return False

    def reset(self) -> None:
        """Forget all streaks and suspicions (states back to healthy)."""
        self._fail_streak = [0] * self.n_parts
        self._ok_streak = [0] * self.n_parts
        self._state = [STATE_HEALTHY] * self.n_parts
        self._routed_around = [0] * self.n_parts
        self._update_gauge()

    def __repr__(self) -> str:
        suspects = sorted(self.suspect_parts)
        return f"HealthTracker(parts={self.n_parts}, suspects={suspects})"
