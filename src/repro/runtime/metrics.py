"""Metrics registry for the simulated RPC runtime.

Production graph platforms expose their serving behaviour through counters
(requests, retries, drops), gauges (queue depths) and latency histograms;
this module provides the same three primitives plus span-style timers, all
behind a single :class:`MetricsRegistry` that the runtime, the distributed
store and the sampling pipeline share.

Metrics may carry **labels** (``counter("server.served", labels={"part":
"2"})``): each label set is its own time series under one family name,
which is how the per-server and per-edge-type breakdowns export to
Prometheus (:mod:`repro.runtime.export`).

Everything is plain Python and deterministic: histograms keep their raw
observations (the simulation's scales are small), so percentiles are exact
— and with a bound :class:`~repro.runtime.rpc.VirtualClock`
(:meth:`MetricsRegistry.bind_clock`) span timers measure simulated
microseconds, so two runs with the same seed produce bit-identical
summaries. Wall-clock is the explicit fallback for non-simulated paths.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.utils.tables import format_table

#: Frozen ``((key, value), ...)`` form of a label dict.
LabelSet = "tuple[tuple[str, str], ...] | None"


def _freeze_labels(labels: "dict[str, object] | None") -> "LabelSet":
    if not labels:
        return None
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_key(name: str, labels: "LabelSet") -> str:
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


@dataclass
class Counter:
    """A monotonically increasing event count."""

    name: str
    value: int = 0
    labels: "LabelSet" = None

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time value with a tracked maximum (high-water mark)."""

    name: str
    value: float = 0.0
    high_water: float = 0.0
    labels: "LabelSet" = None

    def set(self, value: float) -> None:
        """Set the current value, updating the high-water mark."""
        self.value = float(value)
        self.high_water = max(self.high_water, self.value)

    def add(self, delta: float) -> None:
        """Shift the current value by ``delta`` (may be negative).

        Call-site sugar so queue-depth style gauges never hand-roll the
        read-modify-write ``set(g.value + 1)`` pattern.
        """
        self.set(self.value + float(delta))

    def inc(self, n: float = 1.0) -> None:
        """Increase the value by ``n``."""
        self.add(n)

    def dec(self, n: float = 1.0) -> None:
        """Decrease the value by ``n``."""
        self.add(-n)


@dataclass
class Histogram:
    """Exact distribution of observed values (latencies, batch sizes)."""

    name: str
    samples: list = field(default_factory=list)
    labels: "LabelSet" = None
    _total: float = field(default=0.0, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._total = float(sum(self.samples))

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.samples.append(value)
        self._total += value

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of observations (tracked incrementally, not re-summed)."""
        return self._total

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self._total / self.count if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100] (0.0 when empty)."""
        return self.percentiles((p,))[0]

    def percentiles(self, ps: "tuple[float, ...] | list[float]") -> "list[float]":
        """Nearest-rank percentiles for every ``p`` in ``ps``, sorting once.

        Every consumer that wants a p50/p95/p99 row (summary tables, the
        Prometheus exporter, SLO reports) should call this instead of
        re-sorting the sample list per quantile.
        """
        for p in ps:
            if not 0.0 <= p <= 100.0:
                raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.samples:
            return [0.0 for _ in ps]
        ordered = sorted(self.samples)
        return [
            ordered[max(1, math.ceil(p / 100.0 * len(ordered))) - 1] for p in ps
        ]


class SpanTimer:
    """Context manager that times a span and observes it into a histogram.

    With a virtual ``clock`` (anything exposing ``now_us``) the span measures
    simulated microseconds; without one it measures wall-clock microseconds.
    """

    def __init__(self, histogram: Histogram, clock: "object | None" = None) -> None:
        self._histogram = histogram
        self._clock = clock
        self._start = 0.0

    def _now_us(self) -> float:
        if self._clock is not None:
            return float(self._clock.now_us)
        return time.perf_counter() * 1e6

    def __enter__(self) -> "SpanTimer":
        self._start = self._now_us()
        return self

    def __exit__(self, *exc: object) -> None:
        self._histogram.observe(self._now_us() - self._start)


class MetricsRegistry:
    """Get-or-create registry of counters, gauges and histograms.

    Each ``(name, labels)`` pair is one independent series; the optional
    ``labels`` dict is frozen into the metric for exporters to render.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._clock: "object | None" = None

    def bind_clock(self, clock: "object | None") -> None:
        """Default clock for :meth:`timer` (None unbinds -> wall-clock).

        The RPC runtime binds its :class:`~repro.runtime.rpc.VirtualClock`
        here so every span timer sharing its registry — the sampling
        pipeline's stage spans included — measures deterministic simulated
        microseconds instead of wall-clock.
        """
        self._clock = clock

    def counter(
        self, name: str, labels: "dict[str, object] | None" = None
    ) -> Counter:
        """The counter series ``(name, labels)`` (created on first use)."""
        frozen = _freeze_labels(labels)
        key = _series_key(name, frozen)
        if key not in self._counters:
            self._counters[key] = Counter(name, labels=frozen)
        return self._counters[key]

    def gauge(
        self, name: str, labels: "dict[str, object] | None" = None
    ) -> Gauge:
        """The gauge series ``(name, labels)`` (created on first use)."""
        frozen = _freeze_labels(labels)
        key = _series_key(name, frozen)
        if key not in self._gauges:
            self._gauges[key] = Gauge(name, labels=frozen)
        return self._gauges[key]

    def histogram(
        self, name: str, labels: "dict[str, object] | None" = None
    ) -> Histogram:
        """The histogram series ``(name, labels)`` (created on first use)."""
        frozen = _freeze_labels(labels)
        key = _series_key(name, frozen)
        if key not in self._histograms:
            self._histograms[key] = Histogram(name, labels=frozen)
        return self._histograms[key]

    def counters(self) -> "list[Counter]":
        """All counter series, ordered by series key."""
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> "list[Gauge]":
        """All gauge series, ordered by series key."""
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> "list[Histogram]":
        """All histogram series, ordered by series key."""
        return [self._histograms[k] for k in sorted(self._histograms)]

    def timer(self, name: str, clock: "object | None" = None) -> SpanTimer:
        """A span timer feeding the histogram named ``name``.

        An explicit ``clock`` wins; otherwise the registry's bound clock
        (see :meth:`bind_clock`); otherwise wall-clock.
        """
        return SpanTimer(
            self.histogram(name),
            clock=clock if clock is not None else self._clock,
        )

    def reset(self) -> None:
        """Drop every metric (names are forgotten, not just zeroed).

        Benchmark harnesses that re-create stores inside one process call
        this between runs so series from a previous configuration cannot
        leak into the next report. The bound clock is kept.
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def summary_rows(self) -> "list[list]":
        """Rows of ``[name, type, count/value, mean, p50, p95, p99]``, sorted.

        Histograms report the full tail (p50/p95/p99) so SLO tables — the
        serving tier's per-class latency rows included — come straight from
        the registry without re-deriving percentiles.
        """
        rows: list[list] = []
        for name in sorted(self._counters):
            rows.append(
                [name, "counter", self._counters[name].value, "", "", "", ""]
            )
        for name in sorted(self._gauges):
            g = self._gauges[name]
            rows.append(
                [name, "gauge", g.value, "", "", f"hw={g.high_water:.4g}", ""]
            )
        for name in sorted(self._histograms):
            h = self._histograms[name]
            p50, p95, p99 = h.percentiles((50, 95, 99))
            rows.append(
                [
                    name,
                    "histogram",
                    h.count,
                    round(h.mean, 3),
                    round(p50, 3),
                    round(p95, 3),
                    round(p99, 3),
                ]
            )
        return rows

    def render(self, title: str = "runtime metrics") -> str:
        """Aligned plain-text summary table of every registered metric."""
        return format_table(
            ["metric", "type", "count/value", "mean", "p50", "p95", "p99"],
            self.summary_rows(),
            title=title,
        )
