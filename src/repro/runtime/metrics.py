"""Metrics registry for the simulated RPC runtime.

Production graph platforms expose their serving behaviour through counters
(requests, retries, drops), gauges (queue depths) and latency histograms;
this module provides the same three primitives plus span-style timers, all
behind a single :class:`MetricsRegistry` that the runtime, the distributed
store and the sampling pipeline share.

Everything is plain Python and deterministic: histograms keep their raw
observations (the simulation's scales are small), so percentiles are exact
and two runs with the same seed produce bit-identical summaries.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.utils.tables import format_table


@dataclass
class Counter:
    """A monotonically increasing event count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n


@dataclass
class Gauge:
    """A point-in-time value with a tracked maximum (high-water mark)."""

    name: str
    value: float = 0.0
    high_water: float = 0.0

    def set(self, value: float) -> None:
        """Set the current value, updating the high-water mark."""
        self.value = float(value)
        self.high_water = max(self.high_water, self.value)


@dataclass
class Histogram:
    """Exact distribution of observed values (latencies, batch sizes)."""

    name: str
    samples: list = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100] (0.0 when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]


class SpanTimer:
    """Context manager that times a span and observes it into a histogram.

    With a virtual ``clock`` (anything exposing ``now_us``) the span measures
    simulated microseconds; without one it measures wall-clock microseconds.
    """

    def __init__(self, histogram: Histogram, clock: "object | None" = None) -> None:
        self._histogram = histogram
        self._clock = clock
        self._start = 0.0

    def _now_us(self) -> float:
        if self._clock is not None:
            return float(self._clock.now_us)
        return time.perf_counter() * 1e6

    def __enter__(self) -> "SpanTimer":
        self._start = self._now_us()
        return self

    def __exit__(self, *exc: object) -> None:
        self._histogram.observe(self._now_us() - self._start)


class MetricsRegistry:
    """Get-or-create registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def timer(self, name: str, clock: "object | None" = None) -> SpanTimer:
        """A span timer feeding the histogram named ``name``."""
        return SpanTimer(self.histogram(name), clock=clock)

    def reset(self) -> None:
        """Drop every metric (names are forgotten, not just zeroed)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def summary_rows(self) -> "list[list]":
        """Rows of ``[name, type, count/value, mean, p50, p95]``, sorted."""
        rows: list[list] = []
        for name in sorted(self._counters):
            rows.append([name, "counter", self._counters[name].value, "", "", ""])
        for name in sorted(self._gauges):
            g = self._gauges[name]
            rows.append([name, "gauge", g.value, "", "", f"hw={g.high_water:.4g}"])
        for name in sorted(self._histograms):
            h = self._histograms[name]
            rows.append(
                [
                    name,
                    "histogram",
                    h.count,
                    round(h.mean, 3),
                    round(h.percentile(50), 3),
                    round(h.percentile(95), 3),
                ]
            )
        return rows

    def render(self, title: str = "runtime metrics") -> str:
        """Aligned plain-text summary table of every registered metric."""
        return format_table(
            ["metric", "type", "count/value", "mean", "p50", "p95"],
            self.summary_rows(),
            title=title,
        )
