"""The simulated RPC layer: envelopes, inboxes and a virtual-clock scheduler.

Cross-server reads in the cluster simulation used to be synchronous function
calls. This module gives them the shape of real traffic:

* every read crosses the wire as an explicit :class:`Request` and comes back
  as a :class:`Response`;
* each server has a bounded :class:`Inbox`; submitting past its capacity
  raises :class:`~repro.errors.InboxOverflowError` (backpressure is a real
  production failure mode, not an afterthought);
* a deterministic event loop orders deliveries on a :class:`VirtualClock`
  (simulated microseconds) — requests to different servers overlap, retries
  are rescheduled after a timeout plus capped exponential backoff, and two
  runs with the same seed replay identically;
* submission is decoupled from completion: :meth:`RpcRuntime.submit`
  schedules a batch and returns an :class:`RpcFuture` without draining the
  event loop, so several batches can be in flight concurrently (the
  prefetching pipeline overlaps one batch's RPCs with the previous batch's
  consumption). Completion order stays deterministic — deliveries are
  processed in ``(ready time, submission sequence)`` order no matter how
  many futures are outstanding — and :meth:`RpcRuntime.execute` is a thin
  submit-then-drain wrapper, so the blocking path behaves bit-for-bit as
  it always has.

Latency is *modelled*, not measured: a successful delivery costs the cost
model's ``remote_rpc_us`` plus per-item shipping, scaled by the destination's
slow-server factor. The cost ledger (Figures 8–9 semantics) is charged by the
store per successful batch; this layer's metrics cover everything else —
attempts, drops, timeouts, retries, queue depths and latency percentiles.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InboxOverflowError, RuntimeConfigError
from repro.runtime.faults import (
    OUTCOME_OK,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.runtime.health import HealthTracker
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.tracing import NULL_SPAN, NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.storage.cluster import DistributedGraphStore

#: Request kinds served by the graph store itself. Further kinds are added
#: per-runtime by registered services (:meth:`RpcRuntime.register_service`),
#: e.g. the embedding KV store's pull/push verbs.
KIND_NEIGHBORS = "neighbors"
KIND_ATTRS = "attrs"
_KINDS = frozenset({KIND_NEIGHBORS, KIND_ATTRS})


@dataclass(frozen=True)
class Request:
    """One cross-server request envelope (a deduplicated key batch).

    ``vertices`` carries the batch's keys (graph vertices or embedding row
    ids); ``body`` is an optional opaque payload shipped *with* the request
    — the embedding store's push verb uses it for the gradient rows. It
    rides through retries untouched (``dataclasses.replace`` keeps it).
    """

    req_id: int
    kind: str
    src_part: int
    dst_part: int
    vertices: "tuple[int, ...]"
    attempt: int = 1
    body: "object | None" = None


@dataclass
class Response:
    """The answer to a :class:`Request` (or its typed failure).

    ``meta`` carries per-key scalars next to the payload rows: the IV-cache
    flag for attribute reads, the row version for embedding pulls.
    """

    req_id: int
    ok: bool
    payload: "dict[int, np.ndarray]" = field(default_factory=dict)
    meta: "dict[int, object]" = field(default_factory=dict)
    latency_us: float = 0.0
    attempts: int = 1
    error: "str | None" = None


class VirtualClock:
    """Monotone simulated time in microseconds."""

    def __init__(self) -> None:
        self._now_us = 0.0

    @property
    def now_us(self) -> float:
        """Current simulated time."""
        return self._now_us

    def advance(self, us: float) -> None:
        """Move time forward by ``us`` microseconds."""
        if us < 0:
            raise RuntimeConfigError(f"cannot advance the clock by {us}us")
        self._now_us += us

    def advance_to(self, t_us: float) -> None:
        """Move time forward to ``t_us`` (no-op if already past it)."""
        self._now_us = max(self._now_us, t_us)


class Inbox:
    """Bounded FIFO request queue of one server."""

    def __init__(self, capacity: int, part: int) -> None:
        if capacity < 1:
            raise RuntimeConfigError(f"inbox capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.part = part
        self._queue: "deque[int]" = deque()
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, req_id: int) -> None:
        """Enqueue a request id; raises when the inbox is full."""
        if len(self._queue) >= self.capacity:
            raise InboxOverflowError(self.part, self.capacity)
        self._queue.append(req_id)
        self.high_water = max(self.high_water, len(self._queue))

    def pop(self, req_id: int) -> None:
        """Dequeue ``req_id`` (FIFO when it is at the head, by id otherwise —
        retries re-enter the queue out of arrival order)."""
        try:
            if self._queue and self._queue[0] == req_id:
                self._queue.popleft()
            else:
                self._queue.remove(req_id)
        except ValueError:
            raise RuntimeConfigError(
                f"request {req_id} is not queued on server {self.part}"
            ) from None


class RpcFuture:
    """Handle to one submitted batch of in-flight requests.

    Minted by :meth:`RpcRuntime.submit`; :meth:`result` drains the
    runtime's event loop until every request of *this* future has
    completed (other in-flight futures make progress too — the loop is
    shared — but only this future's completion gates the return). The
    response list aligns with the submitted request list.
    """

    __slots__ = ("requests", "span", "_runtime", "_responses")

    def __init__(
        self, runtime: "RpcRuntime", requests: "list[Request]", span: "object"
    ) -> None:
        self._runtime = runtime
        self.requests = list(requests)
        #: Span that retry-exhaustion events are stamped onto (the
        #: ``rpc.execute`` span on the blocking path, the span open at
        #: submission time otherwise).
        self.span = span
        self._responses: "dict[int, Response]" = {}

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def done(self) -> bool:
        """Whether every request of this future has a response."""
        return len(self._responses) == len(self.requests)

    @property
    def pending(self) -> int:
        """Requests still awaiting a response."""
        return len(self.requests) - len(self._responses)

    def result(self) -> "list[Response]":
        """Drain the runtime until this future completes; aligned responses."""
        self._runtime.drain(self)
        return [self._responses[req.req_id] for req in self.requests]


class RpcRuntime:
    """Mediates every cross-server read of a :class:`DistributedGraphStore`.

    The runtime owns the virtual clock, one bounded inbox per server, the
    fault injector, the retry policy and the metrics registry. The store's
    batch entry points build deduplicated :class:`Request` batches (see
    :mod:`repro.runtime.batching`) and hand them to :meth:`execute` — or,
    on the overlapped path, to :meth:`submit`, which returns an
    :class:`RpcFuture` without draining the event loop.
    """

    def __init__(
        self,
        store: "DistributedGraphStore",
        faults: "FaultPlan | FaultInjector | None" = None,
        retry: "RetryPolicy | None" = None,
        metrics: "MetricsRegistry | None" = None,
        health: "HealthTracker | None" = None,
        inbox_capacity: int = 1024,
        timeout_us: float = 500.0,
        max_batch_size: int = 0,
        tracer: "Tracer | None" = None,
    ) -> None:
        if timeout_us < 0:
            raise RuntimeConfigError(f"timeout_us must be >= 0, got {timeout_us}")
        if max_batch_size < 0:
            raise RuntimeConfigError(
                f"max_batch_size must be >= 0 (0 = unbounded), got {max_batch_size}"
            )
        self.store = store
        self.clock = VirtualClock()
        self.metrics = metrics or MetricsRegistry()
        # Span timers sharing this registry (e.g. the sampling pipeline's
        # stage spans) measure deterministic simulated time by default.
        self.metrics.bind_clock(self.clock)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled and self.tracer.clock is None:
            self.tracer.clock = self.clock
        self.health = health or HealthTracker(
            len(store.servers), metrics=self.metrics
        )
        self.retry = retry or RetryPolicy()
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.faults: "FaultInjector | None" = faults
        self.timeout_us = timeout_us
        self.max_batch_size = max_batch_size
        self.inboxes = [
            Inbox(inbox_capacity, part=p) for p in range(len(store.servers))
        ]
        self._next_req_id = 0
        self._seq = 0
        #: kind -> handler(request) -> (payload, meta, n_items). Services
        #: (the embedding KV store) extend the runtime with new verbs
        #: without touching the scheduler: registered kinds get the same
        #: inboxes, fault injection, retries, clock accounting and metrics
        #: as the built-in graph reads.
        self._services: "dict[str, object]" = {}
        # Shared scheduler state: one heap orders deliveries of *all*
        # in-flight futures by (ready time, submission sequence), so
        # completion order is deterministic regardless of how many
        # batches overlap.
        self._heap: "list[tuple[float, int, Request]]" = []
        self._submit_us: "dict[int, float]" = {}
        self._future_of: "dict[int, RpcFuture]" = {}

    # ------------------------------------------------------------------ #
    # Request construction
    # ------------------------------------------------------------------ #
    def register_service(self, kind: str, handler: "object") -> None:
        """Register ``handler`` to serve requests of a new ``kind``.

        ``handler(request)`` must return ``(payload, meta, n_items)`` with
        the same shapes :meth:`_serve` produces for the built-in kinds;
        ``n_items`` prices the response's shipping time on the virtual
        clock. Built-in kinds cannot be overridden.
        """
        if kind in _KINDS:
            raise RuntimeConfigError(f"cannot override built-in kind {kind!r}")
        if kind in self._services:
            raise RuntimeConfigError(f"service kind {kind!r} already registered")
        self._services[kind] = handler

    def make_request(
        self,
        kind: str,
        src_part: int,
        dst_part: int,
        vertices: "tuple[int, ...]",
        body: "object | None" = None,
    ) -> Request:
        """Mint a request envelope with a fresh id."""
        if kind not in _KINDS and kind not in self._services:
            raise RuntimeConfigError(f"unknown request kind {kind!r}")
        if not vertices:
            raise RuntimeConfigError("a request must carry at least one vertex")
        req = Request(
            req_id=self._next_req_id,
            kind=kind,
            src_part=src_part,
            dst_part=dst_part,
            vertices=tuple(int(v) for v in vertices),
            body=body,
        )
        self._next_req_id += 1
        return req

    # ------------------------------------------------------------------ #
    # The deterministic event loop
    # ------------------------------------------------------------------ #
    def _schedule(self, req: Request, ready_us: float) -> None:
        self.inboxes[req.dst_part].push(req.req_id)
        self._seq += 1
        heapq.heappush(self._heap, (ready_us, self._seq, req))
        self.metrics.gauge("inbox.depth", labels={"part": req.dst_part}).inc()

    def _serve(self, req: Request) -> "tuple[dict[int, np.ndarray], dict[int, bool], int]":
        """Execute ``req`` on its destination shard.

        Returns ``(payload, meta, n_items)``; for attribute reads ``meta``
        maps each vertex to whether its row was already in the IV cache
        (the store charges decode vs cache-hit events from it). Registered
        service kinds dispatch to their handler instead.
        """
        handler = self._services.get(req.kind)
        if handler is not None:
            return handler(req)
        server = self.store.servers[req.dst_part]
        payload: "dict[int, np.ndarray]" = {}
        meta: "dict[int, bool]" = {}
        n_items = 0
        if req.kind == KIND_NEIGHBORS:
            for v in req.vertices:
                row = server.local_neighbors(v)
                payload[v] = row
                n_items += int(row.size)
        else:
            for v in req.vertices:
                meta[v] = v in server.attrs.iv_cache
                row = server.local_vertex_attr(v)
                payload[v] = row
                n_items += int(row.size)
        return payload, meta, n_items

    @property
    def inflight(self) -> int:
        """Requests currently awaiting completion across all futures."""
        return len(self._future_of)

    def submit(
        self, requests: "list[Request]", span: "object | None" = None
    ) -> RpcFuture:
        """Schedule ``requests`` without draining the event loop.

        The returned :class:`RpcFuture` completes when :meth:`drain` (or
        its own :meth:`~RpcFuture.result`) has processed every delivery it
        is waiting on. ``span`` (default: the no-op span) receives
        retry-exhaustion events for this batch.
        """
        future = RpcFuture(self, requests, span if span is not None else NULL_SPAN)
        for req in requests:
            if req.req_id in self._future_of:
                raise RuntimeConfigError(
                    f"request {req.req_id} is already in flight"
                )
            self._submit_us[req.req_id] = self.clock.now_us
            self._future_of[req.req_id] = future
            self._schedule(req, self.clock.now_us)
            self.metrics.counter("rpc.requests").inc()
            self.metrics.histogram("rpc.batch_size").observe(len(req.vertices))
        return future

    def drain(self, future: "RpcFuture | None" = None) -> None:
        """Process deliveries until ``future`` completes (or, with no
        argument, until nothing is in flight).

        Deliveries of *all* in-flight futures are processed in
        ``(ready time, submission sequence)`` order — a later-submitted
        batch can complete while an earlier future is being drained, which
        is exactly the overlap the prefetching pipeline exploits.
        """
        if future is None:
            while self._heap:
                self._step()
            return
        while not future.done:
            if not self._heap:
                raise RuntimeConfigError(
                    f"future with {future.pending} pending requests has "
                    "nothing scheduled (was it submitted to this runtime?)"
                )
            self._step()

    def execute(self, requests: "list[Request]") -> "list[Response]":
        """Run ``requests`` to completion; responses align with the input.

        A thin submit-then-drain wrapper over the shared event loop:
        deliveries are ordered by ``(ready time, submission sequence)`` on
        the virtual clock. Drops and timeouts consume an attempt and are
        rescheduled after ``timeout_us`` plus the retry policy's backoff;
        a request that exhausts its attempt budget yields a failed
        :class:`Response` (the store decides between failover and raising).
        """
        if not requests:
            return []
        with self.tracer.span("rpc.execute", requests=len(requests)) as exec_span:
            return self.submit(requests, span=exec_span).result()

    def _complete(self, req: Request, response: Response) -> None:
        """Deliver ``response`` to the future owning ``req``."""
        future = self._future_of.pop(req.req_id)
        self._submit_us.pop(req.req_id, None)
        future._responses[req.req_id] = response

    def _step(self) -> None:
        """Process the next scheduled delivery (one heap pop)."""
        tracer = self.tracer
        cost = self.store.cost_model
        ready_us, _, req = heapq.heappop(self._heap)
        self.clock.advance_to(ready_us)
        self.inboxes[req.dst_part].pop(req.req_id)
        self.metrics.gauge("inbox.depth", labels={"part": req.dst_part}).dec()
        submit_us = self._submit_us[req.req_id]
        # Fail-stop membership is authoritative: a request addressed to
        # a worker the store has declared down fails immediately — no
        # retries (the server will never answer), no fault roll. The
        # store's routing avoids dispatching these; this is the
        # runtime-level guarantee that a downed shard cannot serve.
        if req.dst_part in self.store.failed_workers:
            self.metrics.counter("rpc.unreachable").inc()
            tracer.record_span(
                "rpc.request",
                ready_us,
                ready_us,
                part=req.dst_part,
                kind=req.kind,
                outcome="unreachable",
            )
            self._complete(
                req,
                Response(
                    req_id=req.req_id,
                    ok=False,
                    latency_us=ready_us + self.timeout_us - submit_us,
                    attempts=req.attempt,
                    error=(
                        f"{req.kind} request to server {req.dst_part}: "
                        "server is down (fail-stop)"
                    ),
                ),
            )
            return
        self.metrics.counter("rpc.attempts").inc()
        outcome = self.faults.roll() if self.faults is not None else OUTCOME_OK
        if outcome != OUTCOME_OK:
            self.health.record_failure(req.dst_part)
            self.metrics.counter(f"rpc.{outcome}s").inc()
            tracer.record_span(
                "rpc.attempt",
                ready_us,
                ready_us + self.timeout_us,
                part=req.dst_part,
                kind=req.kind,
                attempt=req.attempt,
                outcome=outcome,
            )
            if req.attempt >= self.retry.max_attempts:
                self._future_of[req.req_id].span.event(
                    "rpc.retry_exhausted", req.dst_part
                )
                self._complete(
                    req,
                    Response(
                        req_id=req.req_id,
                        ok=False,
                        latency_us=ready_us + self.timeout_us - submit_us,
                        attempts=req.attempt,
                        error=(
                            f"{req.kind} request to server {req.dst_part} "
                            f"{outcome}ped past the retry budget"
                            if outcome == "drop"
                            else f"{req.kind} request to server {req.dst_part} "
                            f"timed out past the retry budget"
                        ),
                    ),
                )
                return
            self.metrics.counter("rpc.retries").inc()
            backoff = self.retry.backoff_us(req.attempt)
            self._schedule(
                replace(req, attempt=req.attempt + 1),
                ready_us + self.timeout_us + backoff,
            )
            return
        self.health.record_success(req.dst_part)
        payload, meta, n_items = self._serve(req)
        factor = (
            self.faults.service_factor(req.dst_part)
            if self.faults is not None
            else 1.0
        )
        service_us = (
            cost.remote_rpc_us + cost.item_shipped_us * n_items
        ) * factor
        done_us = ready_us + service_us
        self.clock.advance_to(done_us)
        latency = done_us - submit_us
        self.metrics.counter("rpc.completed").inc()
        self.metrics.counter(
            "server.served", labels={"part": req.dst_part}
        ).inc()
        self.metrics.histogram("rpc.latency_us").observe(latency)
        tracer.record_span(
            "rpc.request",
            ready_us,
            done_us,
            part=req.dst_part,
            kind=req.kind,
            vertices=len(req.vertices),
            attempt=req.attempt,
            latency_us=latency,
        )
        self._complete(
            req,
            Response(
                req_id=req.req_id,
                ok=True,
                payload=payload,
                meta=meta,
                latency_us=latency,
                attempts=req.attempt,
            ),
        )
