"""Simulated RPC runtime: the transport under the distributed graph store.

Production GNN platforms (the paper's §3.2 storage layer, DistDGL, GLISP)
treat cross-server traffic as a first-class subsystem: requests are batched
per destination, failures are expected and retried, and everything is
observable. This package brings those three concerns to the cluster
simulation:

* :mod:`repro.runtime.rpc` — request/response envelopes, bounded per-server
  inboxes and a deterministic virtual-clock scheduler;
* :mod:`repro.runtime.batching` — per-destination coalescing of neighbor and
  attribute reads (one ``remote_rpc`` charge per batch, duplicates deduped);
* :mod:`repro.runtime.faults` — seeded drop/timeout/slow-server injection
  plus a capped-exponential-backoff retry policy;
* :mod:`repro.runtime.metrics` — counters, gauges, latency histograms and
  span timers behind one registry (with per-server / per-edge-type labels);
* :mod:`repro.runtime.tracing` — deterministic trace/span infrastructure
  over the whole read path, ledger<->trace correlation and the training
  stage profiler;
* :mod:`repro.runtime.export` — Chrome trace-event JSON (Perfetto) and
  Prometheus text exposition.

:class:`~repro.storage.cluster.DistributedGraphStore` routes its batch read
entry points (``get_neighbors_batch`` / ``get_attrs_batch``) through an
:class:`RpcRuntime`; the samplers reach it via per-hop prefetching.
"""

from repro.runtime.batching import Batch, RequestBatcher
from repro.runtime.export import chrome_trace, prometheus_text, write_chrome_trace
from repro.runtime.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.runtime.health import (
    STATE_HEALTHY,
    STATE_SUSPECT,
    HealthTracker,
)
from repro.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanTimer,
)
from repro.runtime.rpc import (
    KIND_ATTRS,
    KIND_NEIGHBORS,
    Inbox,
    Request,
    Response,
    RpcFuture,
    RpcRuntime,
    VirtualClock,
)
from repro.runtime.tracing import (
    NULL_TRACER,
    TRAIN_STAGES,
    Span,
    StageProfiler,
    Tracer,
)

__all__ = [
    "Batch",
    "RequestBatcher",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "StageProfiler",
    "TRAIN_STAGES",
    "chrome_trace",
    "prometheus_text",
    "write_chrome_trace",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "HealthTracker",
    "STATE_HEALTHY",
    "STATE_SUSPECT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTimer",
    "Inbox",
    "Request",
    "Response",
    "RpcFuture",
    "RpcRuntime",
    "VirtualClock",
    "KIND_NEIGHBORS",
    "KIND_ATTRS",
]
