"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

Two standard observability surfaces over the runtime's tracing and metrics:

* :func:`chrome_trace` — converts a :class:`~repro.runtime.tracing.Tracer`'s
  spans into the Chrome trace-event format (``{"traceEvents": [...]}`` with
  ``ph: "X"`` complete events and ``ph: "i"`` instants), loadable directly
  in Perfetto / ``chrome://tracing``. Timestamps are already microseconds —
  the trace-event native unit — so spans render at simulated-time scale.
* :func:`prometheus_text` — renders a
  :class:`~repro.runtime.metrics.MetricsRegistry` in the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` + samples). Counters map to
  ``counter``, gauges to ``gauge`` (plus a ``_high_water`` companion),
  histograms to ``summary`` with exact 0.5/0.95/0.99 quantiles. Labeled
  metrics (per-server, per-edge-type) render as label sets on one family.

Both formats are validated in CI by ``tests/format_checkers.py``.
"""

from __future__ import annotations

import json
import re

from repro.runtime.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.runtime.tracing import Tracer

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles exposed per histogram in the Prometheus summary rendering.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def _sanitize(name: str) -> str:
    """A metric name valid under the Prometheus data model."""
    name = _NAME_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _escape_label_value(value: object) -> str:
    """A label value escaped per the text exposition format 0.0.4.

    Backslash, double-quote and line feed are the three characters the
    spec requires escaping inside quoted label values; everything else
    passes through verbatim. Backslash must go first or it would
    double-escape the other two.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(labels: "tuple[tuple[str, str], ...] | None", extra: "dict | None" = None) -> str:
    pairs = list(labels or ())
    if extra:
        pairs.extend(extra.items())
    if not pairs:
        return ""
    body = ",".join(
        f'{_sanitize(k)}="{_escape_label_value(v)}"' for k, v in pairs
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    """Float formatting with exact ints kept integral."""
    f = float(value)
    return repr(int(f)) if f == int(f) else repr(f)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    families: "dict[str, tuple[str, list]]" = {}

    def add(metric: "Counter | Gauge | Histogram", kind: str) -> None:
        base = _sanitize(metric.name)
        families.setdefault(base, (kind, []))[1].append(metric)

    for metric in registry.counters():
        add(metric, "counter")
    for metric in registry.gauges():
        add(metric, "gauge")
    for metric in registry.histograms():
        add(metric, "summary")

    if not families:
        return ""
    lines: "list[str]" = []
    for base in sorted(families):
        kind, metrics = families[base]
        lines.append(f"# HELP {base} {kind} exported from the repro runtime")
        lines.append(f"# TYPE {base} {kind}")
        if kind == "gauge":
            hw_lines = []
        for m in metrics:
            labels = getattr(m, "labels", None)
            if kind == "counter":
                lines.append(f"{base}{_label_str(labels)} {m.value}")
            elif kind == "gauge":
                lines.append(f"{base}{_label_str(labels)} {_fmt(m.value)}")
                hw_lines.append(
                    f"{base}_high_water{_label_str(labels)} {_fmt(m.high_water)}"
                )
            else:
                values = m.percentiles([q * 100.0 for q in SUMMARY_QUANTILES])
                for q, value in zip(SUMMARY_QUANTILES, values):
                    lines.append(
                        f"{base}{_label_str(labels, {'quantile': repr(q)})} "
                        f"{_fmt(value)}"
                    )
                lines.append(f"{base}_sum{_label_str(labels)} {_fmt(m.total)}")
                lines.append(f"{base}_count{_label_str(labels)} {m.count}")
        if kind == "gauge" and hw_lines:
            lines.append(
                f"# HELP {base}_high_water high-water mark of {base}"
            )
            lines.append(f"# TYPE {base}_high_water gauge")
            lines.extend(hw_lines)
    return "\n".join(lines) + "\n"


def chrome_trace(tracer: Tracer) -> dict:
    """Tracer spans as a Chrome trace-event JSON object (Perfetto-ready).

    Each trace renders as its own ``tid`` row; span attributes, ids and
    ledger-correlation events travel in ``args`` so the Perfetto UI shows
    the full cross-reference on click.
    """
    tid_of: "dict[str, int]" = {}
    events: "list[dict]" = []
    for trace_id in tracer.traces():
        tid_of[trace_id] = len(tid_of)
    for sp in tracer.spans:
        tid = tid_of[sp.trace_id]
        end_us = sp.end_us if sp.end_us is not None else sp.start_us
        args = {
            "trace_id": sp.trace_id,
            "span_id": sp.span_id,
            "parent_id": sp.parent_id,
        }
        args.update({str(k): v for k, v in sp.attrs.items()})
        events.append(
            {
                "name": sp.name,
                "cat": sp.name.split(".", 1)[0],
                "ph": "X",
                "ts": sp.start_us,
                "dur": end_us - sp.start_us,
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
        for t_us, ev_name, value in sp.events:
            events.append(
                {
                    "name": ev_name,
                    "cat": "event",
                    "ph": "i",
                    "ts": t_us,
                    "pid": 0,
                    "tid": tid,
                    "s": "t",
                    "args": {"span_id": sp.span_id, "value": value},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.runtime.export",
            "seed": tracer.seed,
            "n_traces": len(tid_of),
            "n_ledger_rows": len(tracer.ledger_rows),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the payload."""
    payload = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1)
    return payload
