"""Request batching and coalescing for cross-server reads.

The unbatched read path issues one RPC per vertex — exactly what production
graph stores avoid. The batcher turns a stream of ``(vertex, owner)`` reads
into one request per destination server: repeated vertex ids coalesce into a
single slot (first-seen order is preserved, so replays are deterministic)
and oversized groups split at ``max_batch_size``. The cost ledger then
charges one ``remote_rpc`` per batch plus per-item shipping instead of one
round trip per vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RuntimeConfigError


@dataclass(frozen=True)
class Batch:
    """One planned request: a deduplicated vertex batch for one server."""

    dst_part: int
    kind: str
    vertices: "tuple[int, ...]"

    def __len__(self) -> int:
        return len(self.vertices)


class RequestBatcher:
    """Groups outstanding reads by destination server and deduplicates them.

    ``max_batch_size == 0`` means unbounded batches (one request per
    destination); a positive value splits each destination's batch into
    chunks, modelling a bounded RPC payload.
    """

    def __init__(self, max_batch_size: int = 0) -> None:
        if max_batch_size < 0:
            raise RuntimeConfigError(
                f"max_batch_size must be >= 0 (0 = unbounded), got {max_batch_size}"
            )
        self.max_batch_size = max_batch_size
        self.coalesced_total = 0  # reads saved by dedup, cumulative

    def plan(
        self, kind: str, reads: "list[tuple[int, int]]"
    ) -> "list[Batch]":
        """Plan batches for ``reads`` — a list of ``(vertex, owner)`` pairs.

        Returns batches ordered by first appearance of each destination,
        each batch's vertices in first-seen order with duplicates removed.
        """
        by_dest: "dict[int, list[int]]" = {}
        seen: "dict[int, set[int]]" = {}
        coalesced = 0
        for vertex, owner in reads:
            vertex = int(vertex)
            dest_seen = seen.setdefault(owner, set())
            if vertex in dest_seen:
                coalesced += 1
                continue
            dest_seen.add(vertex)
            by_dest.setdefault(owner, []).append(vertex)
        self.coalesced_total += coalesced

        batches: "list[Batch]" = []
        for owner, vertices in by_dest.items():
            if self.max_batch_size:
                for i in range(0, len(vertices), self.max_batch_size):
                    chunk = vertices[i : i + self.max_batch_size]
                    batches.append(Batch(owner, kind, tuple(chunk)))
            else:
                batches.append(Batch(owner, kind, tuple(vertices)))
        return batches

    def plan_grouped(
        self, kind: str, vertices: np.ndarray, owners: np.ndarray
    ) -> "list[Batch]":
        """Array-native :meth:`plan` for already-deduplicated reads.

        ``vertices``/``owners`` are aligned arrays with no repeated vertex
        (the store's read path dedups its batch up front, so re-checking
        per vertex here would be wasted work). Output is identical to
        :meth:`plan` on the equivalent ``(vertex, owner)`` list:
        destinations ordered by first appearance, each destination's
        vertices in input order, oversized groups split at
        ``max_batch_size``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        owners = np.asarray(owners, dtype=np.int64)
        if vertices.size == 0:
            return []
        dests, first_idx = np.unique(owners, return_index=True)
        dests = dests[np.argsort(first_idx, kind="stable")]
        batches: "list[Batch]" = []
        for dest in dests.tolist():
            group = tuple(vertices[owners == dest].tolist())
            if self.max_batch_size:
                for i in range(0, len(group), self.max_batch_size):
                    batches.append(
                        Batch(dest, kind, group[i : i + self.max_batch_size])
                    )
            else:
                batches.append(Batch(dest, kind, group))
        return batches
