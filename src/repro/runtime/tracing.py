"""Deterministic request tracing: spans, ledger correlation, stage profiling.

Production GNN platforms answer "where did this sampling request spend its
time?" with distributed tracing; the AliGraph paper's §5 cost breakdown
(storage vs cache vs RPC vs operators) is exactly a span tree aggregated
over many requests. This module gives the simulation the same substrate:

* :class:`Span` — one timed operation with parent/child links, static
  attributes and timestamped events;
* :class:`Tracer` — seeded, virtual-clock span factory. Span and trace ids
  come from ``(seed, counter)``, timestamps from the runtime's
  :class:`~repro.runtime.rpc.VirtualClock`, so two runs with the same seed
  produce **bit-identical traces**. Spans cover the whole read path —
  ``pipeline.sample`` → ``store.resolve_read`` → ``batch.plan`` →
  ``rpc.execute`` → per-request ``rpc.request`` — with cache hit/miss,
  failover, suspect-route, retry and degraded-read activity stamped on via
  the cost-ledger hook (see :meth:`Tracer.bind_ledger`);
* :class:`StageProfiler` — buckets each training step of the Algorithm-1
  framework into sample / materialize / aggregate / combine / backward /
  optimizer stages (span + histogram per stage).

Tracing is **opt-in and pay-for-what-you-use**: the shared
:data:`NULL_TRACER` answers every call with no-ops, so the instrumented
hot paths cost one attribute check when tracing is off
(``benchmarks/bench_trace_overhead.py`` holds the line at <2%).

Exporters (Chrome trace-event JSON for Perfetto, Prometheus text
exposition) live in :mod:`repro.runtime.export`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.runtime.metrics import MetricsRegistry
from repro.utils.tables import format_table

#: Canonical training-step stages bucketed by :class:`StageProfiler`.
TRAIN_STAGES = (
    "sample",
    "materialize",
    "aggregate",
    "combine",
    "backward",
    "optimizer",
)


@dataclass
class Span:
    """One timed operation inside a trace.

    ``attrs`` are static key/values set at open (or via :meth:`annotate`);
    ``events`` are timestamped ``[t_us, name, value]`` rows — ledger events
    recorded while the span is active land here as ``ledger:<event>``.
    """

    trace_id: str
    span_id: str
    parent_id: "str | None"
    name: str
    start_us: float
    end_us: "float | None" = None
    attrs: dict = field(default_factory=dict)
    events: "list[list]" = field(default_factory=list)
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    @property
    def duration_us(self) -> float:
        """Span duration (0.0 while still open)."""
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def annotate(self, **attrs: object) -> "Span":
        """Attach static attributes to this span (returns self)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, value: object = 1) -> None:
        """Record a timestamped event on this span."""
        t = self._tracer._now_us() if self._tracer is not None else self.start_us
        self.events.append([t, name, value])

    def to_dict(self) -> dict:
        """JSON-ready representation (tracer back-reference dropped)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "attrs": dict(self.attrs),
            "events": [list(ev) for ev in self.events],
        }

    # Context-manager protocol: entering pushes the span on its tracer's
    # stack, exiting closes it. Spans are minted by Tracer.span().
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        if self._tracer is not None:
            self._tracer._close(self)


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def annotate(self, **attrs: object) -> "_NullSpan":
        return self

    def event(self, name: str, value: object = 1) -> None:
        return None


#: The singleton no-op span every disabled tracer hands out.
NULL_SPAN = _NullSpan()


class Tracer:
    """Seeded, deterministic span factory shared by a whole read path.

    One tracer instance is threaded through the pipeline, the store and
    the RPC runtime; its span stack links nested operations into one
    trace (a span opened with an empty stack starts a new trace). With a
    virtual ``clock`` (anything exposing ``now_us``) timestamps are
    simulated microseconds and traces replay bit-identically at a fixed
    seed; without one, wall-clock microseconds are the explicit fallback.
    """

    def __init__(
        self,
        clock: "object | None" = None,
        seed: int = 0,
        enabled: bool = True,
        max_spans: int = 1_000_000,
    ) -> None:
        self.clock = clock
        self.seed = int(seed)
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: "list[Span]" = []
        #: ``[t_us, trace_id, span_id, event, times]`` rows stamped by the
        #: cost-ledger hook — the ledger<->trace correlation table.
        self.ledger_rows: "list[list]" = []
        self._stack: "list[Span]" = []
        self._next_trace = 0
        self._next_span = 0

    # ------------------------------------------------------------------ #
    # Time and ids
    # ------------------------------------------------------------------ #
    def _now_us(self) -> float:
        if self.clock is not None:
            return float(self.clock.now_us)
        return time.perf_counter() * 1e6

    def _trace_id(self) -> str:
        self._next_trace += 1
        return f"{self.seed & 0xFFFF:04x}t{self._next_trace:08x}"

    def _span_id(self) -> str:
        self._next_span += 1
        return f"{self.seed & 0xFFFF:04x}s{self._next_span:010x}"

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: object) -> "Span | _NullSpan":
        """Open a span (use as a context manager).

        The span becomes a child of the innermost open span; with an empty
        stack it roots a fresh trace.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            trace_id=parent.trace_id if parent else self._trace_id(),
            span_id=self._span_id(),
            parent_id=parent.span_id if parent else None,
            name=name,
            start_us=self._now_us(),
            attrs=attrs,
            _tracer=self,
        )
        self._admit(sp)
        self._stack.append(sp)
        return sp

    def _close(self, sp: Span) -> None:
        sp.end_us = self._now_us()
        # Close any children left open by an exception unwinding past them.
        while self._stack and self._stack[-1] is not sp:
            dangling = self._stack.pop()
            dangling.end_us = sp.end_us
        if self._stack:
            self._stack.pop()

    def record_span(
        self,
        name: str,
        start_us: float,
        end_us: float,
        **attrs: object,
    ) -> "Span | None":
        """Record an already-timed span as a child of the current span.

        The RPC event loop interleaves requests in virtual time, so their
        spans are recorded with explicit timestamps rather than nested
        ``with`` blocks.
        """
        if not self.enabled:
            return None
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            trace_id=parent.trace_id if parent else self._trace_id(),
            span_id=self._span_id(),
            parent_id=parent.span_id if parent else None,
            name=name,
            start_us=float(start_us),
            end_us=float(end_us),
            attrs=attrs,
            _tracer=self,
        )
        self._admit(sp)
        return sp

    def _admit(self, sp: Span) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(sp)

    def current(self) -> "Span | None":
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def event(self, name: str, value: object = 1) -> None:
        """Timestamped event on the current span (no-op without one)."""
        if self.enabled and self._stack:
            self._stack[-1].event(name, value)

    # ------------------------------------------------------------------ #
    # Ledger correlation
    # ------------------------------------------------------------------ #
    def bind_ledger(self, accumulator: "object") -> None:
        """Stamp this tracer's ids onto ``accumulator``'s recorded events.

        Every :meth:`~repro.utils.timer.CostAccumulator.record` call made
        while a span is open lands both on the span (as a ``ledger:<event>``
        event) and in :attr:`ledger_rows` — the cross-reference between the
        cost ledger's Figure 8–9 accounting and the trace.
        """
        if self.enabled:
            accumulator.trace_hook = self.on_ledger_event

    def on_ledger_event(self, event: str, times: int) -> None:
        """Ledger hook target; correlates one recorded event with a span."""
        if not self._stack:
            return
        sp = self._stack[-1]
        t = self._now_us()
        sp.events.append([t, f"ledger:{event}", times])
        self.ledger_rows.append([t, sp.trace_id, sp.span_id, event, times])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def traces(self) -> "list[str]":
        """Trace ids in first-span order."""
        seen: "dict[str, None]" = {}
        for sp in self.spans:
            seen.setdefault(sp.trace_id, None)
        return list(seen)

    def trace_spans(self, trace_id: str) -> "list[Span]":
        """All spans of one trace, in open order."""
        return [sp for sp in self.spans if sp.trace_id == trace_id]

    def render_tree(self, trace_id: "str | None" = None) -> str:
        """Plain-text span tree of one trace (the first by default)."""
        traces = self.traces()
        if not traces:
            return "(no traces recorded)"
        trace_id = trace_id or traces[0]
        spans = self.trace_spans(trace_id)
        children: "dict[str | None, list[Span]]" = {}
        for sp in spans:
            children.setdefault(sp.parent_id, []).append(sp)
        lines = [f"trace {trace_id} ({len(spans)} spans)"]

        def walk(parent_id: "str | None", depth: int) -> None:
            for sp in children.get(parent_id, []):
                attrs = " ".join(f"{k}={v}" for k, v in sp.attrs.items())
                ledger = sum(1 for ev in sp.events if ev[1].startswith("ledger:"))
                suffix = f" [{attrs}]" if attrs else ""
                if ledger:
                    suffix += f" ({ledger} ledger events)"
                lines.append(
                    f"{'  ' * depth}- {sp.name} "
                    f"@{sp.start_us:.1f}us +{sp.duration_us:.1f}us{suffix}"
                )
                walk(sp.span_id, depth + 1)

        walk(None, 1)
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all spans, rows and id counters (replays start fresh)."""
        self.spans.clear()
        self.ledger_rows.clear()
        self._stack.clear()
        self._next_trace = 0
        self._next_span = 0


#: Shared disabled tracer: the default wired into every runtime. All of
#: its methods are no-ops (``enabled`` is False), so untraced hot paths
#: pay only the call into them.
NULL_TRACER = Tracer(enabled=False)


class _CompoundContext:
    """Enters several context managers as one (exit in reverse order)."""

    __slots__ = ("_ctxs",)

    def __init__(self, *ctxs: object) -> None:
        self._ctxs = ctxs

    def __enter__(self) -> "_CompoundContext":
        for ctx in self._ctxs:
            ctx.__enter__()
        return self

    def __exit__(self, *exc: object) -> None:
        for ctx in reversed(self._ctxs):
            ctx.__exit__(*exc)


class StageProfiler:
    """Buckets training steps into the canonical Algorithm-1 stages.

    Each stage runs under a span (``train.<stage>``) and a histogram
    (``train.stage.<stage>_us``); :meth:`step` wraps one optimizer step
    (``train.step_us`` + the ``train.steps`` counter). Attach one to a
    :class:`~repro.algorithms.framework.GNNFramework` via its ``profiler``
    argument; :meth:`render` then answers "which stage dominates a step".

    Training stages do real computation, so the default is wall-clock
    timing; pass ``clock`` (or bind one on ``metrics``) for deterministic
    simulated timings in tests.
    """

    def __init__(
        self,
        metrics: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
        clock: "object | None" = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock

    def stage(self, name: str) -> _CompoundContext:
        """Context manager timing one stage of the current step."""
        return _CompoundContext(
            self.tracer.span(f"train.{name}"),
            self.metrics.timer(f"train.stage.{name}_us", clock=self._clock),
        )

    def step(self) -> _CompoundContext:
        """Context manager wrapping one whole training step."""
        self.metrics.counter("train.steps").inc()
        return _CompoundContext(
            self.tracer.span("train.step"),
            self.metrics.timer("train.step_us", clock=self._clock),
        )

    def stage_totals(self) -> "dict[str, float]":
        """Total microseconds per stage (stages never hit report 0.0)."""
        totals: "dict[str, float]" = {}
        for name in TRAIN_STAGES:
            totals[name] = self.metrics.histogram(f"train.stage.{name}_us").total
        return totals

    def render(self) -> str:
        """Per-stage table: calls, total ms and share of accounted time."""
        totals = self.stage_totals()
        accounted = sum(totals.values()) or 1.0
        rows = []
        for name in TRAIN_STAGES:
            h = self.metrics.histogram(f"train.stage.{name}_us")
            rows.append(
                [
                    name,
                    h.count,
                    round(totals[name] / 1000.0, 3),
                    f"{totals[name] / accounted:.1%}",
                ]
            )
        steps = self.metrics.counter("train.steps").value
        rows.append(
            [
                "(step total)",
                steps,
                round(self.metrics.histogram("train.step_us").total / 1000.0, 3),
                "",
            ]
        )
        return format_table(
            ["stage", "calls", "total_ms", "share"],
            rows,
            title="training stage profile",
        )
