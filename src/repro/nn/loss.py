"""Loss functions.

Covers every objective the algorithm layer trains with: logistic link loss,
multi-class cross-entropy, skip-gram with negative sampling (Eq. 4's
approximation, shared by DeepWalk/Node2Vec/GATNE/Mixture GNN), squared
error for the autoencoder baselines and the Gaussian KL for VAEs
(Mixture GNN's β-VAE competitor and the Evolving/Bayesian GNN machinery).
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy on raw logits (numerically stable)."""
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != logits.shape:
        raise OperatorError(
            f"target shape {targets.shape} != logits shape {logits.shape}"
        )
    # BCE(x, y) = softplus(x) - x*y = -[y*logsig(x) + (1-y)*logsig(-x)]
    pos = F.log_sigmoid(logits)
    neg = F.log_sigmoid(-logits)
    per_elem = -(pos * targets + neg * (1.0 - targets))
    return per_elem.mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean categorical cross-entropy of ``(n, k)`` logits vs int labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise OperatorError("cross_entropy expects (n, k) logits and (n,) labels")
    logp = F.log_softmax(logits, axis=-1)
    n = labels.size
    rows = np.arange(n)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        full = np.zeros_like(logp.data)
        full[rows, labels] = g
        return [(logp, full)]

    # Direct (row, label) indexing: O(n) forward instead of a dense (n, k)
    # one-hot product, with the same scatter backward.
    picked = Tensor(logp.data[rows, labels], _parents=(logp,), _backward=backward)
    return -picked.sum() * (1.0 / n)


def mse(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    target = np.asarray(target, dtype=np.float64)
    diff = pred - Tensor(target)
    return (diff * diff).mean()


def skipgram_negative_loss(
    center: Tensor, context: Tensor, negatives: Tensor
) -> Tensor:
    """Skip-gram with negative sampling.

    ``center``/``context`` are ``(b, d)``; ``negatives`` is ``(b, k, d)``
    flattened to ``(b*k, d)`` by the caller or provided as ``(b*k, d)`` with
    ``k`` inferred. Loss::

        -log σ(c·u) - Σ_k log σ(-c·n_k)
    """
    if center.shape != context.shape:
        raise OperatorError("center and context must have matching shapes")
    b, d = center.shape
    if negatives.ndim != 2 or negatives.shape[1] != d or negatives.shape[0] % b:
        raise OperatorError(
            f"negatives shape {negatives.shape} incompatible with centers {center.shape}"
        )
    k = negatives.shape[0] // b
    pos_score = (center * context).sum(axis=1)  # (b,)
    pos_loss = -F.log_sigmoid(pos_score).sum()
    # Tile centers against their negatives.
    tiled = center.gather_rows(np.repeat(np.arange(b), k))  # (b*k, d)
    neg_score = (tiled * negatives).sum(axis=1)  # (b*k,)
    neg_loss = -F.log_sigmoid(-neg_score).sum()
    return (pos_loss + neg_loss) * (1.0 / b)


def gaussian_kl(mu: Tensor, logvar: Tensor) -> Tensor:
    """KL( N(mu, exp(logvar)) || N(0, 1) ), mean over the batch."""
    if mu.shape != logvar.shape:
        raise OperatorError("mu and logvar must have matching shapes")
    term = (mu * mu) + F.exp(logvar) - logvar - 1.0
    return term.sum() * (0.5 / mu.shape[0])
