"""Recurrent cells: GRU and LSTM.

Used three ways in the algorithm layer: the LSTM AGGREGATE operator
(GraphSAGE-LSTM), the GRU COMBINE operator, and the RNN half of the
Evolving GNN's dynamics predictor.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dense, Module
from repro.nn.tensor import Tensor


class GRUCell(Module):
    """Gated recurrent unit: ``h' = (1-z)*h + z*h_tilde``."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        self.hidden_dim = hidden_dim
        self.z_gate = Dense(input_dim + hidden_dim, hidden_dim, rng, "sigmoid")
        self.r_gate = Dense(input_dim + hidden_dim, hidden_dim, rng, "sigmoid")
        self.candidate = Dense(input_dim + hidden_dim, hidden_dim, rng, "tanh")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        xh = F.concat([x, h], axis=-1)
        z = self.z_gate(xh)
        r = self.r_gate(xh)
        h_tilde = self.candidate(F.concat([x, r * h], axis=-1))
        one = Tensor(np.ones_like(z.data))
        return (one - z) * h + z * h_tilde

    def init_state(self, batch: int) -> Tensor:
        """All-zero initial hidden state."""
        return Tensor(np.zeros((batch, self.hidden_dim)))


class LSTMCell(Module):
    """Long short-term memory cell returning ``(h', c')``."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        self.hidden_dim = hidden_dim
        self.f_gate = Dense(input_dim + hidden_dim, hidden_dim, rng, "sigmoid")
        self.i_gate = Dense(input_dim + hidden_dim, hidden_dim, rng, "sigmoid")
        self.o_gate = Dense(input_dim + hidden_dim, hidden_dim, rng, "sigmoid")
        self.g_gate = Dense(input_dim + hidden_dim, hidden_dim, rng, "tanh")

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> "tuple[Tensor, Tensor]":
        xh = F.concat([x, h], axis=-1)
        f = self.f_gate(xh)
        i = self.i_gate(xh)
        o = self.o_gate(xh)
        g = self.g_gate(xh)
        c_new = f * c + i * g
        h_new = o * F.tanh(c_new)
        return h_new, c_new

    def init_state(self, batch: int) -> "tuple[Tensor, Tensor]":
        """All-zero initial (h, c)."""
        zeros = np.zeros((batch, self.hidden_dim))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


def lstm_over_sequence(
    cell: LSTMCell, steps: "list[Tensor]"
) -> Tensor:
    """Run ``cell`` over a list of ``(batch, d)`` steps; return final h.

    The order-invariance trick GraphSAGE uses (random neighbor order) is the
    caller's responsibility.
    """
    h, c = cell.init_state(steps[0].shape[0])
    for x in steps:
        h, c = cell(x, h, c)
    return h
