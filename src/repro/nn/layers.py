"""Layers: parameter containers and the building blocks of the models.

:class:`Module` gives recursive parameter collection; :class:`Dense`,
:class:`Embedding`, :class:`Dropout`, :class:`LayerNorm` and
:class:`Sequential` are the blocks every GNN in the algorithm layer is
assembled from.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError
from repro.nn import functional as F
from repro.nn.init import embedding_init, he_uniform, xavier_uniform
from repro.nn.tensor import Tensor


class Module:
    """Base class with recursive parameter discovery."""

    def parameters(self) -> "list[Tensor]":
        """All trainable tensors of this module and its submodules."""
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            for p in _collect(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.data.size for p in self.parameters())

    def __call__(self, *args: object, **kwargs: object) -> Tensor:
        return self.forward(*args, **kwargs)

    def forward(self, *args: object, **kwargs: object) -> Tensor:
        raise NotImplementedError


def _collect(value: object) -> "list[Tensor]":
    if isinstance(value, Tensor):
        return [value] if value.requires_grad else []
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: list[Tensor] = []
        for item in value:
            out.extend(_collect(item))
        return out
    if isinstance(value, dict):
        out = []
        for item in value.values():
            out.extend(_collect(item))
        return out
    return []


_ACTIVATIONS = {
    "linear": lambda x: x,
    "relu": F.relu,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "leaky_relu": F.leaky_relu,
}


class Dense(Module):
    """Fully connected layer ``y = act(x @ W + b)``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        activation: str = "linear",
        bias: bool = True,
    ) -> None:
        if activation not in _ACTIVATIONS:
            raise OperatorError(f"unknown activation {activation!r}")
        init = he_uniform if activation in ("relu", "leaky_relu") else xavier_uniform
        self.weight = Tensor(init((in_dim, out_dim), rng), requires_grad=True, name="W")
        self.bias = (
            Tensor(np.zeros(out_dim), requires_grad=True, name="b") if bias else None
        )
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return _ACTIVATIONS[self.activation](out)


class Embedding(Module):
    """Lookup table of ``n`` rows by ``dim`` columns.

    With ``sparse=True`` lookups accumulate a row-sparse gradient
    (``table.sparse_grad``) instead of a dense O(n x dim) array; pair with
    :class:`~repro.nn.optim.SparseAdam` / :class:`~repro.nn.optim.SparseAdagrad`
    so optimizer steps touch only the rows of the batch.
    """

    def __init__(
        self,
        n: int,
        dim: int,
        rng: np.random.Generator,
        scale: float | None = None,
        sparse: bool = False,
    ) -> None:
        self.table = Tensor(
            embedding_init((n, dim), rng, scale=scale), requires_grad=True, name="E"
        )
        self.table.accumulates_sparse = sparse

    @property
    def n(self) -> int:
        """Number of rows."""
        return self.table.shape[0]

    @property
    def dim(self) -> int:
        """Embedding width."""
        return self.table.shape[1]

    def forward(self, index: np.ndarray) -> Tensor:
        return self.table.gather_rows(index)


class Dropout(Module):
    """Inverted dropout with its own RNG stream."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rate = rate
        self._rng = rng
        self.training = True

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gamma = Tensor(np.ones(dim), requires_grad=True, name="gamma")
        self.beta = Tensor(np.zeros(dim), requires_grad=True, name="beta")
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * ((var + self.eps) ** -0.5)
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
