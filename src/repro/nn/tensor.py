"""Reverse-mode autograd tensor.

A :class:`Tensor` wraps a float64 numpy array plus the closure needed to
backpropagate through the op that produced it. ``backward()`` runs a
topological sort and accumulates gradients into every ``requires_grad``
leaf. Broadcasting is supported on elementwise ops; gradients are
un-broadcast (summed) back to the operand shapes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import OperatorError


class SparseGrad:
    """Row-sparse gradient of a 1-D/2-D leaf: ``(ids, rows)`` entries.

    Embedding lookups touch a few hundred rows of a table with (potentially)
    millions; materializing the dense scatter makes every backward pass —
    and every optimizer step walking it — O(table) instead of O(batch).
    ``gather_rows`` appends one ``(index, grad_rows)`` entry per lookup when
    the leaf opts in (:attr:`Tensor.accumulates_sparse`); :meth:`coalesce`
    merges them into unique ids with summed rows (scatter-add semantics,
    identical to the dense accumulation it replaces).
    """

    __slots__ = ("shape", "_entries")

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.shape = shape
        self._entries: "list[tuple[np.ndarray, np.ndarray]]" = []

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, ids: np.ndarray, rows: np.ndarray) -> None:
        """Record one lookup's contribution (ids may repeat)."""
        self._entries.append(
            (np.asarray(ids, dtype=np.int64), np.asarray(rows, dtype=np.float64))
        )

    def coalesce(self) -> "tuple[np.ndarray, np.ndarray]":
        """Merge all entries into ``(unique_ids, summed_rows)``.

        Unique ids come out sorted; repeated ids (within or across entries)
        have their gradient rows summed, **bit-identically** to the dense
        accumulation this replaces: each entry's repeats are reduced by the
        same bincount the dense scatter uses, and entry partial sums are
        then added in entry order — the exact grouping of ``grad +=`` over
        per-lookup dense scatters. Summing one flat concatenation instead
        would regroup the additions and drift in the last ulp.
        """
        if not self._entries:
            raise OperatorError("coalesce() on an empty sparse gradient")
        uniq = np.unique(np.concatenate([e[0] for e in self._entries]))
        first_rows = self._entries[0][1]
        d = first_rows.shape[1] if first_rows.ndim == 2 else 0
        summed = np.zeros((uniq.size, d) if d else uniq.size)
        for ids, rows in self._entries:
            inverse = np.searchsorted(uniq, ids)
            if d:
                flat = (inverse[:, None] * d + np.arange(d)).ravel()
                summed += np.bincount(
                    flat, weights=rows.ravel(), minlength=uniq.size * d
                ).reshape(uniq.size, d)
            else:
                summed += np.bincount(
                    inverse, weights=rows, minlength=uniq.size
                )
        return uniq, summed

    def to_dense(self) -> np.ndarray:
        """The equivalent dense gradient (tests / dense fallbacks only)."""
        full = np.zeros(self.shape)
        if self._entries:
            ids, rows = self.coalesce()
            full[ids] = rows
        return full


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff."""

    __slots__ = (
        "data",
        "grad",
        "sparse_grad",
        "accumulates_sparse",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
    )
    __array_priority__ = 100  # our operators win over numpy's

    def __init__(
        self,
        data: "np.ndarray | float | list",
        requires_grad: bool = False,
        _parents: "tuple[Tensor, ...]" = (),
        _backward: "Callable[[np.ndarray], None] | None" = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        #: Row-sparse gradient accumulated by ``gather_rows`` when
        #: :attr:`accumulates_sparse` is set on this leaf (embedding tables).
        self.sparse_grad: SparseGrad | None = None
        self.accumulates_sparse = False
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", grad" if self.requires_grad else ""
        label = f" {self.name!r}" if self.name else ""
        return f"Tensor{label}(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        """The scalar value (raises for non-scalars)."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The raw array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A view on the same data, cut out of the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------ #
    # Autograd machinery
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Clear this tensor's gradient (dense and sparse)."""
        self.grad = None
        self.sparse_grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise OperatorError(
                    "backward() without an explicit gradient needs a scalar"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise OperatorError(
                    f"gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )
        # Topological order (children before parents).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is not None:
                for parent, pgrad in node._backward(node_grad):
                    if pgrad is None:
                        continue
                    pid = id(parent)
                    if pid in grads:
                        grads[pid] = grads[pid] + pgrad
                    else:
                        grads[pid] = pgrad

    @staticmethod
    def _coerce(other: "Tensor | np.ndarray | float") -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic (broadcasting)
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        other = Tensor._coerce(other)
        out = Tensor(
            self.data + other.data,
            _parents=(self, other),
            _backward=lambda g: [
                (self, _unbroadcast(g, self.shape)),
                (other, _unbroadcast(g, other.shape)),
            ],
        )
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor(
            -self.data,
            _parents=(self,),
            _backward=lambda g: [(self, -g)],
        )

    def __sub__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        other = Tensor._coerce(other)
        out = Tensor(
            self.data * other.data,
            _parents=(self, other),
            _backward=lambda g: [
                (self, _unbroadcast(g * other.data, self.shape)),
                (other, _unbroadcast(g * self.data, other.shape)),
            ],
        )
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        other = Tensor._coerce(other)
        out = Tensor(
            self.data / other.data,
            _parents=(self, other),
            _backward=lambda g: [
                (self, _unbroadcast(g / other.data, self.shape)),
                (
                    other,
                    _unbroadcast(-g * self.data / (other.data**2), other.shape),
                ),
            ],
        )
        return out

    def __rtruediv__(self, other: "Tensor | np.ndarray | float") -> "Tensor":
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise OperatorError("only scalar exponents are supported")
        out = Tensor(
            self.data**exponent,
            _parents=(self,),
            _backward=lambda g: [
                (self, g * exponent * self.data ** (exponent - 1))
            ],
        )
        return out

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def __matmul__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other = Tensor._coerce(other)
        if self.ndim < 1 or other.ndim < 1:
            raise OperatorError("matmul needs at least 1-D operands")
        out = Tensor(
            self.data @ other.data,
            _parents=(self, other),
            _backward=lambda g: Tensor._matmul_backward(self, other, g),
        )
        return out

    @staticmethod
    def _matmul_backward(
        a: "Tensor", b: "Tensor", g: np.ndarray
    ) -> "list[tuple[Tensor, np.ndarray]]":
        ad, bd = a.data, b.data
        if ad.ndim == 2 and bd.ndim == 2:
            return [(a, g @ bd.T), (b, ad.T @ g)]
        if ad.ndim == 1 and bd.ndim == 2:
            return [(a, g @ bd.T), (b, np.outer(ad, g))]
        if ad.ndim == 2 and bd.ndim == 1:
            return [(a, np.outer(g, bd)), (b, ad.T @ g)]
        if ad.ndim == 1 and bd.ndim == 1:
            return [(a, g * bd), (b, g * ad)]
        raise OperatorError(
            f"unsupported matmul operand ranks {ad.ndim} and {bd.ndim}"
        )

    @property
    def T(self) -> "Tensor":
        """2-D transpose."""
        if self.ndim != 2:
            raise OperatorError("T is defined for 2-D tensors only")
        return Tensor(
            self.data.T,
            _parents=(self,),
            _backward=lambda g: [(self, g.T)],
        )

    # ------------------------------------------------------------------ #
    # Reductions and shaping
    # ------------------------------------------------------------------ #
    def sum(self, axis: "int | None" = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
            if axis is None:
                return [(self, np.broadcast_to(g, self.shape).copy())]
            gg = g if keepdims else np.expand_dims(g, axis)
            return [(self, np.broadcast_to(gg, self.shape).copy())]

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def mean(self, axis: "int | None" = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        """Reshaped view (autograd-aware)."""
        out = Tensor(
            self.data.reshape(*shape),
            _parents=(self,),
            _backward=lambda g: [(self, g.reshape(self.shape))],
        )
        return out

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Row lookup ``out[i] = self[index[i]]`` with scatter-add backward.

        This is the embedding-lookup primitive: gradients of repeated rows
        accumulate. When this tensor is a leaf with
        :attr:`accumulates_sparse` set, the backward pass appends an
        ``(index, grad_rows)`` entry to :attr:`sparse_grad` instead of
        materializing the dense O(rows x dim) scatter — the sparse
        optimizers consume it directly.
        """
        index = np.asarray(index, dtype=np.int64)

        def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray | None]]":
            if self.accumulates_sparse and self.requires_grad:
                if self.sparse_grad is None:
                    self.sparse_grad = SparseGrad(self.data.shape)
                self.sparse_grad.append(index, g)
                return [(self, None)]
            # Scatter-add via bincount: ~10x faster than np.add.at for the
            # embedding-table gradients that dominate training steps.
            n, d = self.data.shape if self.data.ndim == 2 else (self.data.shape[0], 1)
            if self.data.ndim == 2:
                flat = (index[:, None] * d + np.arange(d)).ravel()
                full = np.bincount(
                    flat, weights=g.ravel(), minlength=n * d
                ).reshape(n, d)
            else:
                full = np.bincount(index, weights=g, minlength=n)
            return [(self, full)]

        return Tensor(self.data[index], _parents=(self,), _backward=backward)

    def scatter_rows(self, index: np.ndarray, rows: "Tensor") -> "Tensor":
        """Out-of-place row overwrite: ``out = self; out[index] = rows``.

        ``index`` must hold *unique* row ids (duplicate targets would make
        the overwrite order-dependent). The complement rows pass ``self``
        through untouched, so the backward splits the upstream gradient:
        ``rows`` receives ``g[index]``, ``self`` receives ``g`` with the
        overwritten rows zeroed. This is the state-merge primitive of the
        ragged LSTM aggregator (only still-active segments advance).
        """
        index = np.asarray(index, dtype=np.int64)
        if index.size != np.unique(index).size:
            raise OperatorError("scatter_rows needs unique row indices")
        rows = Tensor._coerce(rows)
        if rows.shape != (index.size,) + self.shape[1:]:
            raise OperatorError(
                f"scatter_rows got {rows.shape} rows for {index.size} indices "
                f"of a {self.shape} tensor"
            )
        data = self.data.copy()
        data[index] = rows.data

        def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
            keep = g.copy()
            keep[index] = 0.0
            return [(self, keep), (rows, g[index])]

        return Tensor(data, _parents=(self, rows), _backward=backward)

    def slice_rows(self, start: int, stop: int) -> "Tensor":
        """Contiguous row slice with zero-padded backward."""

        def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
            full = np.zeros_like(self.data)
            full[start:stop] = g
            return [(self, full)]

        return Tensor(self.data[start:stop], _parents=(self,), _backward=backward)
