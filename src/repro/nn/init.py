"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform init for tanh/sigmoid/linear layers."""
    fan_in = shape[0] if len(shape) >= 1 else 1
    fan_out = shape[1] if len(shape) >= 2 else shape[0]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init for ReLU layers."""
    fan_in = shape[0] if len(shape) >= 1 else 1
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def embedding_init(
    shape: tuple[int, ...], rng: np.random.Generator, scale: float | None = None
) -> np.ndarray:
    """Small-uniform init for embedding tables (word2vec convention)."""
    if scale is None:
        scale = 0.5 / shape[-1]
    return rng.uniform(-scale, scale, size=shape)
