"""Self-attention (Lin et al. 2017), as used by GATNE's edge-type mixing.

GATNE computes per-edge-type coefficients over a vertex's ``t`` meta-specific
embeddings with the structured self-attention of [36]::

    a = softmax(w2 @ tanh(W1 @ G^T))          (one attention head)

where ``G`` is the ``(t, d)`` stack of meta-specific embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.init import xavier_uniform
from repro.nn.layers import Module
from repro.nn.tensor import Tensor


class SelfAttention(Module):
    """Single-head structured self-attention producing mixing weights.

    ``forward`` takes a ``(t, d)`` matrix of embeddings and returns a
    ``(t,)`` weight vector summing to 1.
    """

    def __init__(self, dim: int, attn_dim: int, rng: np.random.Generator) -> None:
        self.w1 = Tensor(
            xavier_uniform((dim, attn_dim), rng), requires_grad=True, name="attn_W1"
        )
        self.w2 = Tensor(
            xavier_uniform((attn_dim,), rng), requires_grad=True, name="attn_w2"
        )

    def forward(self, embeddings: Tensor) -> Tensor:
        hidden = F.tanh(embeddings @ self.w1)  # (t, attn_dim)
        scores = hidden @ self.w2  # (t,)
        return F.softmax(scores, axis=-1)

    def mix(self, embeddings: Tensor) -> Tensor:
        """Attention-weighted sum of the rows: ``(t, d) -> (d,)``."""
        weights = self.forward(embeddings)  # (t,)
        return weights @ embeddings
