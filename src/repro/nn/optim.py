"""Optimizers: SGD (with momentum), Adam, Adagrad — plus the row-sparse
:class:`SparseAdam` / :class:`SparseAdagrad` used by embedding training.

The dense optimizers walk every parameter element per step, which is fine
for model weights but O(table) for embedding tables whose minibatch touches
a few hundred rows. The sparse pair consumes the ``(ids, grad_rows)``
gradients accumulated by :meth:`~repro.nn.tensor.Tensor.gather_rows` on
``accumulates_sparse`` leaves and updates **only the touched rows**, with
per-row step counters for bias correction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn.tensor import Tensor


def _rowwise(values: np.ndarray, ndim: int) -> np.ndarray:
    """Shape per-row scalars for broadcasting against ``ndim``-D rows."""
    return values.reshape((-1,) + (1,) * (ndim - 1))


def _bias_correction(beta: float, counts: np.ndarray) -> np.ndarray:
    """``1 - beta**t`` per row, via Python-scalar pow per unique count.

    numpy's vectorized pow rounds differently from libm's in the last ulp,
    which would break the bit-for-bit match with dense :class:`Adam`'s
    ``beta ** self._t``. A minibatch's rows share at most a handful of
    distinct step counts, so scalar pow per unique count costs nothing.
    """
    counts = np.asarray(counts)
    out = np.empty(counts.shape, dtype=np.float64)
    for c in np.unique(counts):
        out[counts == c] = 1.0 - beta ** int(c)
    return out


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: "list[Tensor]", lr: float) -> None:
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        if not params:
            raise TrainingError("optimizer got an empty parameter list")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla / momentum SGD."""

    def __init__(
        self, params: "list[Tensor]", lr: float = 0.1, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction.

    .. note:: **Dense-vs-sparse semantics.** Once a row of ``_m`` is
       non-zero, this dense update keeps moving that row *every* step even
       when its gradient is exactly zero (the momentum term decays through
       ``m *= beta1`` but stays non-zero, and the bias-corrected update is
       applied to the whole table). For an embedding table where each
       minibatch touches a tiny fraction of rows, that means stale momentum
       drags every untouched user's embedding on every step — and the step
       itself costs O(table), not O(batch). :class:`SparseAdam` implements
       the per-row semantics (untouched rows are bit-identical across a
       step; momentum decay is applied lazily, only when a row is next
       touched) and is what embedding training should use.
    """

    def __init__(
        self,
        params: "list[Tensor]",
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (p.grad**2)
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


class Adagrad(Optimizer):
    """Adagrad — the classic choice for sparse embedding tables."""

    def __init__(
        self, params: "list[Tensor]", lr: float = 0.1, eps: float = 1e-8
    ) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for p, acc in zip(self.params, self._accum):
            if p.grad is None:
                continue
            acc += p.grad**2
            p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)


def _touched(p: Tensor) -> "tuple[np.ndarray | None, np.ndarray] | None":
    """The rows a parameter's gradient touches this step.

    Returns ``(ids, grad_rows)`` — ``ids is None`` meaning *all* rows (a
    dense gradient, e.g. a Dense layer riding in the same parameter list) —
    or None when the parameter has no gradient at all. A sparse gradient
    wins when both are present (a table that was only gathered never has a
    dense gradient; mixing the two on one leaf is not supported).
    """
    if p.sparse_grad is not None and len(p.sparse_grad):
        ids, rows = p.sparse_grad.coalesce()
        return ids, rows
    if p.grad is not None:
        return None, p.grad
    return None


class SparseAdam(Optimizer):
    """Adam that updates only the rows touched by the batch.

    Maintains the same first/second-moment state as :class:`Adam` but keyed
    per row: each row has its own step counter ``t`` (incremented only when
    the row is touched) driving its bias correction, and momentum decay is
    **lazy** — a row skipped for ``k`` steps keeps its moments frozen and
    decays them once on its next touch, rather than being dragged ``k``
    times by stale momentum as the dense update does. Untouched rows are
    bit-identical across a step. For rows touched on every step the update
    is bit-identical to dense :class:`Adam` (same operation order).

    Parameters with plain dense gradients are updated over all rows (their
    per-row counters advance together), so one optimizer can own a mixed
    embedding + dense parameter list.
    """

    def __init__(
        self,
        params: "list[Tensor]",
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = [np.zeros(p.data.shape[0] if p.data.ndim else 1, dtype=np.int64)
                   for p in params]

    def step(self) -> None:
        for p, m, v, t in zip(self.params, self._m, self._v, self._t):
            grad = _touched(p)
            if grad is None:
                continue
            ids, g = grad
            if ids is None:
                ids = slice(None)
            t[ids] += 1
            b1t = _rowwise(_bias_correction(self.beta1, t[ids]), g.ndim)
            b2t = _rowwise(_bias_correction(self.beta2, t[ids]), g.ndim)
            m_rows = self.beta1 * m[ids] + (1.0 - self.beta1) * g
            v_rows = self.beta2 * v[ids] + (1.0 - self.beta2) * (g**2)
            m[ids] = m_rows
            v[ids] = v_rows
            p.data[ids] -= self.lr * (m_rows / b1t) / (
                np.sqrt(v_rows / b2t) + self.eps
            )


class SparseAdagrad(Optimizer):
    """Adagrad that updates only the rows touched by the batch.

    Adagrad has no momentum, so its touched-row math is bit-identical to
    dense :class:`Adagrad` across *any* step sequence — the accumulator of
    an untouched row gains exactly zero either way. What the sparse form
    fixes is cost: the step is O(touched rows), not O(table).
    """

    def __init__(
        self, params: "list[Tensor]", lr: float = 0.1, eps: float = 1e-8
    ) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for p, acc in zip(self.params, self._accum):
            grad = _touched(p)
            if grad is None:
                continue
            ids, g = grad
            if ids is None:
                ids = slice(None)
            acc_rows = acc[ids] + g**2
            acc[ids] = acc_rows
            p.data[ids] -= self.lr * g / (np.sqrt(acc_rows) + self.eps)
