"""Optimizers: SGD (with momentum), Adam, Adagrad."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: "list[Tensor]", lr: float) -> None:
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        if not params:
            raise TrainingError("optimizer got an empty parameter list")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla / momentum SGD."""

    def __init__(
        self, params: "list[Tensor]", lr: float = 0.1, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        params: "list[Tensor]",
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (p.grad**2)
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


class Adagrad(Optimizer):
    """Adagrad — the classic choice for sparse embedding tables."""

    def __init__(
        self, params: "list[Tensor]", lr: float = 0.1, eps: float = 1e-8
    ) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for p, acc in zip(self.params, self._accum):
            if p.grad is None:
                continue
            acc += p.grad**2
            p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)
