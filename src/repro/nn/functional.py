"""Differentiable functions over :class:`~repro.nn.tensor.Tensor`.

Activations, row-wise softmax/log-softmax, concatenation/stacking, dropout,
L2 row normalization (Algorithm 1 line 7's embedding normalization) and
numerically stable log-sigmoid for the skip-gram losses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError
from repro.nn.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Elementwise max(x, 0)."""
    mask = x.data > 0
    return Tensor(
        x.data * mask,
        _parents=(x,),
        _backward=lambda g: [(x, g * mask)],
    )


def leaky_relu(x: Tensor, slope: float = 0.01) -> Tensor:
    """Leaky ReLU with negative-side ``slope``."""
    mask = x.data > 0
    factor = np.where(mask, 1.0, slope)
    return Tensor(
        x.data * factor,
        _parents=(x,),
        _backward=lambda g: [(x, g * factor)],
    )


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid (numerically stable)."""
    s = _sigmoid_np(x.data)
    return Tensor(
        s,
        _parents=(x,),
        _backward=lambda g: [(x, g * s * (1.0 - s))],
    )


def _sigmoid_np(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    t = np.tanh(x.data)
    return Tensor(
        t,
        _parents=(x,),
        _backward=lambda g: [(x, g * (1.0 - t * t))],
    )


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    e = np.exp(x.data)
    return Tensor(e, _parents=(x,), _backward=lambda g: [(x, g * e)])


def log(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Elementwise natural log with an epsilon floor."""
    safe = np.maximum(x.data, eps)
    return Tensor(
        np.log(safe),
        _parents=(x,),
        _backward=lambda g: [(x, g / safe)],
    )


def log_sigmoid(x: Tensor) -> Tensor:
    """Numerically stable log(sigmoid(x)) = -softplus(-x)."""
    out = -np.logaddexp(0.0, -x.data)
    s = _sigmoid_np(x.data)
    return Tensor(
        out,
        _parents=(x,),
        _backward=lambda g: [(x, g * (1.0 - s))],
    )


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    s = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        dot = (g * s).sum(axis=axis, keepdims=True)
        return [(x, s * (g - dot))]

    return Tensor(s, _parents=(x,), _backward=backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsum
    s = np.exp(out)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [(x, g - s * g.sum(axis=axis, keepdims=True))]

    return Tensor(out, _parents=(x,), _backward=backward)


def concat(tensors: "list[Tensor]", axis: int = -1) -> Tensor:
    """Concatenate along ``axis`` with split backward."""
    if not tensors:
        raise OperatorError("concat needs at least one tensor")
    datas = [t.data for t in tensors]
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        grads = []
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            idx = [slice(None)] * g.ndim
            idx[axis if axis >= 0 else g.ndim + axis] = slice(lo, hi)
            grads.append((t, g[tuple(idx)]))
        return grads

    return Tensor(
        np.concatenate(datas, axis=axis), _parents=tuple(tensors), _backward=backward
    )


def stack(tensors: "list[Tensor]", axis: int = 0) -> Tensor:
    """Stack along a new ``axis``."""
    if not tensors:
        raise OperatorError("stack needs at least one tensor")

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [
            (t, np.take(g, i, axis=axis)) for i, t in enumerate(tensors)
        ]

    return Tensor(
        np.stack([t.data for t in tensors], axis=axis),
        _parents=tuple(tensors),
        _backward=backward,
    )


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: identity at eval time."""
    if not 0.0 <= rate < 1.0:
        raise OperatorError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return Tensor(
        x.data * keep,
        _parents=(x,),
        _backward=lambda g: [(x, g * keep)],
    )


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Row-wise L2 normalization (Algorithm 1's per-hop normalize step)."""
    norm = np.sqrt((x.data**2).sum(axis=axis, keepdims=True)) + eps
    out = x.data / norm

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        dot = (g * out).sum(axis=axis, keepdims=True)
        return [(x, (g - out * dot) / norm)]

    return Tensor(out, _parents=(x,), _backward=backward)


def sparse_matmul(matrix: "object", x: Tensor) -> Tensor:
    """``A @ x`` for a fixed (non-trainable) scipy sparse ``A``.

    The GCN family propagates through a constant normalized adjacency; only
    ``x`` receives gradients: ``dL/dx = A^T @ g``.
    """
    out = matrix @ x.data

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [(x, matrix.T @ g)]

    return Tensor(np.asarray(out), _parents=(x,), _backward=backward)


def mean_rows_segmented(x: Tensor, segment_size: int) -> Tensor:
    """Mean over fixed-size row segments: ``(B*s, d) -> (B, d)``.

    The shape transformation at the heart of AGGREGATE: hop-k context rows
    grouped per target vertex and averaged.
    """
    n, d = x.shape
    if n % segment_size != 0:
        raise OperatorError(
            f"row count {n} not divisible by segment size {segment_size}"
        )
    batch = n // segment_size
    out = x.data.reshape(batch, segment_size, d).mean(axis=1)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        expanded = np.repeat(g / segment_size, segment_size, axis=0)
        return [(x, expanded)]

    return Tensor(out, _parents=(x,), _backward=backward)


def sum_rows_segmented(x: Tensor, segment_size: int) -> Tensor:
    """Sum over fixed-size row segments: ``(B*s, d) -> (B, d)``.

    The un-normalized AGGREGATE: one reduction kernel, no round trip
    through a mean (summing as ``mean * s`` costs a second elementwise
    pass and a divide/multiply of avoidable float error).
    """
    n, d = x.shape
    if n % segment_size != 0:
        raise OperatorError(
            f"row count {n} not divisible by segment size {segment_size}"
        )
    batch = n // segment_size
    out = x.data.reshape(batch, segment_size, d).sum(axis=1)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [(x, np.repeat(g, segment_size, axis=0))]

    return Tensor(out, _parents=(x,), _backward=backward)


def max_rows_segmented(x: Tensor, segment_size: int) -> Tensor:
    """Max over fixed-size row segments (max-pooling AGGREGATE)."""
    n, d = x.shape
    if n % segment_size != 0:
        raise OperatorError(
            f"row count {n} not divisible by segment size {segment_size}"
        )
    batch = n // segment_size
    reshaped = x.data.reshape(batch, segment_size, d)
    argmax = reshaped.argmax(axis=1)  # (batch, d)
    out = np.take_along_axis(reshaped, argmax[:, None, :], axis=1)[:, 0, :]

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        full = np.zeros_like(reshaped)
        np.put_along_axis(full, argmax[:, None, :], g[:, None, :], axis=1)
        return [(x, full.reshape(n, d))]

    return Tensor(out, _parents=(x,), _backward=backward)
