"""Differentiable functions over :class:`~repro.nn.tensor.Tensor`.

Activations, row-wise softmax/log-softmax, concatenation/stacking, dropout,
L2 row normalization (Algorithm 1 line 7's embedding normalization),
numerically stable log-sigmoid for the skip-gram losses, and the segment
kernels of the AGGREGATE step — fixed-size (``*_rows_segmented``) and
ragged CSR-style (``segment_*`` over an offsets array).

The ragged kernels mirror the batched/reference pattern of
``sampling/kernels.py``: the default ``batched`` backend is one
``np.add.reduceat``-style sweep over the concatenated rows; the
``reference`` backend loops segments with plain numpy reductions and is the
equivalence oracle the tests compare against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError
from repro.nn.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    """Elementwise max(x, 0)."""
    mask = x.data > 0
    return Tensor(
        x.data * mask,
        _parents=(x,),
        _backward=lambda g: [(x, g * mask)],
    )


def leaky_relu(x: Tensor, slope: float = 0.01) -> Tensor:
    """Leaky ReLU with negative-side ``slope``."""
    mask = x.data > 0
    factor = np.where(mask, 1.0, slope)
    return Tensor(
        x.data * factor,
        _parents=(x,),
        _backward=lambda g: [(x, g * factor)],
    )


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid (numerically stable)."""
    s = _sigmoid_np(x.data)
    return Tensor(
        s,
        _parents=(x,),
        _backward=lambda g: [(x, g * s * (1.0 - s))],
    )


def _sigmoid_np(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    t = np.tanh(x.data)
    return Tensor(
        t,
        _parents=(x,),
        _backward=lambda g: [(x, g * (1.0 - t * t))],
    )


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    e = np.exp(x.data)
    return Tensor(e, _parents=(x,), _backward=lambda g: [(x, g * e)])


def log(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Elementwise natural log with an epsilon floor."""
    safe = np.maximum(x.data, eps)
    return Tensor(
        np.log(safe),
        _parents=(x,),
        _backward=lambda g: [(x, g / safe)],
    )


def log_sigmoid(x: Tensor) -> Tensor:
    """Numerically stable log(sigmoid(x)) = -softplus(-x)."""
    out = -np.logaddexp(0.0, -x.data)
    s = _sigmoid_np(x.data)
    return Tensor(
        out,
        _parents=(x,),
        _backward=lambda g: [(x, g * (1.0 - s))],
    )


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    s = e / e.sum(axis=axis, keepdims=True)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        dot = (g * s).sum(axis=axis, keepdims=True)
        return [(x, s * (g - dot))]

    return Tensor(s, _parents=(x,), _backward=backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsum
    s = np.exp(out)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [(x, g - s * g.sum(axis=axis, keepdims=True))]

    return Tensor(out, _parents=(x,), _backward=backward)


def concat(tensors: "list[Tensor]", axis: int = -1) -> Tensor:
    """Concatenate along ``axis`` with split backward."""
    if not tensors:
        raise OperatorError("concat needs at least one tensor")
    datas = [t.data for t in tensors]
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        grads = []
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            idx = [slice(None)] * g.ndim
            idx[axis if axis >= 0 else g.ndim + axis] = slice(lo, hi)
            grads.append((t, g[tuple(idx)]))
        return grads

    return Tensor(
        np.concatenate(datas, axis=axis), _parents=tuple(tensors), _backward=backward
    )


def stack(tensors: "list[Tensor]", axis: int = 0) -> Tensor:
    """Stack along a new ``axis``."""
    if not tensors:
        raise OperatorError("stack needs at least one tensor")

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [
            (t, np.take(g, i, axis=axis)) for i, t in enumerate(tensors)
        ]

    return Tensor(
        np.stack([t.data for t in tensors], axis=axis),
        _parents=tuple(tensors),
        _backward=backward,
    )


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: identity at eval time."""
    if not 0.0 <= rate < 1.0:
        raise OperatorError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return Tensor(
        x.data * keep,
        _parents=(x,),
        _backward=lambda g: [(x, g * keep)],
    )


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Row-wise L2 normalization (Algorithm 1's per-hop normalize step)."""
    norm = np.sqrt((x.data**2).sum(axis=axis, keepdims=True)) + eps
    out = x.data / norm

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        dot = (g * out).sum(axis=axis, keepdims=True)
        return [(x, (g - out * dot) / norm)]

    return Tensor(out, _parents=(x,), _backward=backward)


def sparse_matmul(matrix: "object", x: Tensor) -> Tensor:
    """``A @ x`` for a fixed (non-trainable) scipy sparse ``A``.

    The GCN family propagates through a constant normalized adjacency; only
    ``x`` receives gradients: ``dL/dx = A^T @ g``.
    """
    out = matrix @ x.data

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [(x, matrix.T @ g)]

    return Tensor(np.asarray(out), _parents=(x,), _backward=backward)


def mean_rows_segmented(x: Tensor, segment_size: int) -> Tensor:
    """Mean over fixed-size row segments: ``(B*s, d) -> (B, d)``.

    The shape transformation at the heart of AGGREGATE: hop-k context rows
    grouped per target vertex and averaged.
    """
    n, d = x.shape
    if n % segment_size != 0:
        raise OperatorError(
            f"row count {n} not divisible by segment size {segment_size}"
        )
    batch = n // segment_size
    out = x.data.reshape(batch, segment_size, d).mean(axis=1)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        expanded = np.repeat(g / segment_size, segment_size, axis=0)
        return [(x, expanded)]

    return Tensor(out, _parents=(x,), _backward=backward)


def sum_rows_segmented(x: Tensor, segment_size: int) -> Tensor:
    """Sum over fixed-size row segments: ``(B*s, d) -> (B, d)``.

    The un-normalized AGGREGATE: one reduction kernel, no round trip
    through a mean (summing as ``mean * s`` costs a second elementwise
    pass and a divide/multiply of avoidable float error).
    """
    n, d = x.shape
    if n % segment_size != 0:
        raise OperatorError(
            f"row count {n} not divisible by segment size {segment_size}"
        )
    batch = n // segment_size
    out = x.data.reshape(batch, segment_size, d).sum(axis=1)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [(x, np.repeat(g, segment_size, axis=0))]

    return Tensor(out, _parents=(x,), _backward=backward)


def max_rows_segmented(x: Tensor, segment_size: int) -> Tensor:
    """Max over fixed-size row segments (max-pooling AGGREGATE)."""
    n, d = x.shape
    if n % segment_size != 0:
        raise OperatorError(
            f"row count {n} not divisible by segment size {segment_size}"
        )
    batch = n // segment_size
    reshaped = x.data.reshape(batch, segment_size, d)
    argmax = reshaped.argmax(axis=1)  # (batch, d)
    out = np.take_along_axis(reshaped, argmax[:, None, :], axis=1)[:, 0, :]

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        full = np.zeros_like(reshaped)
        np.put_along_axis(full, argmax[:, None, :], g[:, None, :], axis=1)
        return [(x, full.reshape(n, d))]

    return Tensor(out, _parents=(x,), _backward=backward)


# ---------------------------------------------------------------------- #
# Ragged (CSR-style) segment kernels
# ---------------------------------------------------------------------- #
SEGMENT_BACKENDS = ("batched", "reference")


def _check_offsets(offsets: np.ndarray, n_rows: int) -> "tuple[np.ndarray, np.ndarray]":
    """Validate a CSR offsets array against ``n_rows``; return (offsets, sizes)."""
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size < 1:
        raise OperatorError("segment offsets must be a non-empty 1-D array")
    if offsets[0] != 0 or np.any(np.diff(offsets) < 0):
        raise OperatorError("segment offsets must be monotone from 0")
    if offsets[-1] != n_rows:
        raise OperatorError(
            f"segment offsets cover {offsets[-1]} rows, tensor has {n_rows}"
        )
    return offsets, np.diff(offsets)


def _check_segment_input(x: Tensor, backend: str) -> None:
    if backend not in SEGMENT_BACKENDS:
        raise OperatorError(
            f"unknown segment backend {backend!r}; expected one of {SEGMENT_BACKENDS}"
        )
    if x.ndim != 2:
        raise OperatorError(f"segment kernels need (n, d) input, got shape {x.shape}")


def _reduceat(
    ufunc: np.ufunc, data: np.ndarray, offsets: np.ndarray, fill: float = 0.0
) -> np.ndarray:
    """Per-segment ``ufunc`` reduction; empty segments come out as ``fill``.

    ``np.add.reduceat`` has two sharp edges this wrapper files off: an
    index pair with ``start == end`` returns ``data[start]`` instead of the
    identity, and a start equal to ``len(data)`` (trailing empty segments)
    is out of range. Reducing only at the non-empty starts is exact —
    consecutive non-empty starts are separated precisely by one segment's
    rows, because the empty segments between them are zero-width.
    """
    sizes = np.diff(offsets)
    out = np.full((sizes.size,) + data.shape[1:], fill, dtype=np.float64)
    nonempty = sizes > 0
    if nonempty.any():
        out[nonempty] = ufunc.reduceat(data, offsets[:-1][nonempty], axis=0)
    return out


def segment_sum_np(x: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Numpy-level ragged segment sum (no autograd): ``(n, d) -> (B, d)``.

    Shared by the autograd wrapper below and the offline SpMM precompute
    (SIGN): with ``x = features[csr.indices]`` and ``offsets = csr.indptr``
    this is one sparse-matrix row reduction.
    """
    return _reduceat(np.add, np.asarray(x, dtype=np.float64), offsets)


def segment_mean_np(x: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Numpy-level ragged segment mean; empty segments yield zero rows."""
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.diff(offsets)
    return segment_sum_np(x, offsets) / np.maximum(sizes, 1)[:, None]


def segment_sum(x: Tensor, offsets: np.ndarray, backend: str = "batched") -> Tensor:
    """Ragged segment sum: rows ``offsets[i]:offsets[i+1]`` sum to row ``i``.

    The un-padded AGGREGATE kernel: neighbor states concatenated in CSR
    order reduce per target vertex whatever each vertex's degree is. Empty
    segments produce zero rows (a vertex with no neighbors aggregates
    nothing).
    """
    _check_segment_input(x, backend)
    offsets, sizes = _check_offsets(offsets, x.shape[0])
    if backend == "reference":
        out = np.stack(
            [x.data[lo:hi].sum(axis=0) for lo, hi in zip(offsets[:-1], offsets[1:])]
        ) if sizes.size else np.zeros((0, x.shape[1]))
    else:
        out = segment_sum_np(x.data, offsets)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [(x, np.repeat(g, sizes, axis=0))]

    return Tensor(out, _parents=(x,), _backward=backward)


def segment_mean(x: Tensor, offsets: np.ndarray, backend: str = "batched") -> Tensor:
    """Ragged segment mean; empty segments yield zero rows."""
    _check_segment_input(x, backend)
    offsets, sizes = _check_offsets(offsets, x.shape[0])
    counts = np.maximum(sizes, 1).astype(np.float64)
    if backend == "reference":
        out = np.stack(
            [
                x.data[lo:hi].mean(axis=0) if hi > lo else np.zeros(x.shape[1])
                for lo, hi in zip(offsets[:-1], offsets[1:])
            ]
        ) if sizes.size else np.zeros((0, x.shape[1]))
    else:
        out = segment_sum_np(x.data, offsets) / counts[:, None]

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        return [(x, np.repeat(g / counts[:, None], sizes, axis=0))]

    return Tensor(out, _parents=(x,), _backward=backward)


def segment_max(x: Tensor, offsets: np.ndarray, backend: str = "batched") -> Tensor:
    """Ragged segment max; empty segments yield zero rows.

    Gradients flow to the *first* maximal row per (segment, column) —
    ``np.argmax`` semantics, matching :func:`max_rows_segmented`.
    """
    _check_segment_input(x, backend)
    offsets, sizes = _check_offsets(offsets, x.shape[0])
    n, d = x.shape
    seg_ids = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
    if backend == "reference":
        out = np.stack(
            [
                x.data[lo:hi].max(axis=0) if hi > lo else np.zeros(d)
                for lo, hi in zip(offsets[:-1], offsets[1:])
            ]
        ) if sizes.size else np.zeros((0, d))
    else:
        out = _reduceat(np.maximum, x.data, offsets, fill=-np.inf)
        out[sizes == 0] = 0.0
    # First maximal position per (segment, column), for the backward scatter.
    pos = np.arange(n, dtype=np.int64) - offsets[seg_ids]
    hit = x.data == out[seg_ids]
    candidate = np.where(hit, pos[:, None], n)
    first = _reduceat(np.minimum, candidate, offsets, fill=n).astype(np.int64)

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        full = np.zeros_like(x.data)
        nz = sizes > 0
        if nz.any():
            rows = (offsets[:-1][nz][:, None] + first[nz]).ravel()
            cols = np.tile(np.arange(d, dtype=np.int64), int(nz.sum()))
            np.add.at(full, (rows, cols), g[nz].ravel())
        return [(x, full)]

    return Tensor(out, _parents=(x,), _backward=backward)


def segment_softmax(x: Tensor, offsets: np.ndarray, backend: str = "batched") -> Tensor:
    """Within-segment softmax along the rows: output has ``x``'s shape.

    Each column is normalized independently inside its segment — the
    attention-weight kernel for ragged neighbor lists (scores shaped
    ``(n, 1)`` normalize per target vertex). Empty segments contribute no
    rows; single-row segments come out as 1.
    """
    _check_segment_input(x, backend)
    offsets, sizes = _check_offsets(offsets, x.shape[0])
    seg_ids = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
    if backend == "reference":
        s = np.empty_like(x.data)
        for b, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
            if hi == lo:
                continue
            shifted = x.data[lo:hi] - x.data[lo:hi].max(axis=0, keepdims=True)
            e = np.exp(shifted)
            s[lo:hi] = e / e.sum(axis=0, keepdims=True)
    else:
        mx = _reduceat(np.maximum, x.data, offsets, fill=0.0)
        e = np.exp(x.data - mx[seg_ids])
        denom = _reduceat(np.add, e, offsets, fill=1.0)
        s = e / denom[seg_ids]

    def backward(g: np.ndarray) -> "list[tuple[Tensor, np.ndarray]]":
        dot = _reduceat(np.add, g * s, offsets)
        return [(x, s * (g - dot[seg_ids]))]

    return Tensor(s, _parents=(x,), _backward=backward)
