"""Numerical gradient checking for the autograd engine.

Central-difference verification used by the test suite on every op and
layer: build a scalar loss from tensors, compare ``backward()`` gradients to
finite differences.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(
    fn: Callable[[], Tensor], param: Tensor, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of the scalar ``fn()`` w.r.t. ``param``."""
    grad = np.zeros_like(param.data)
    flat = param.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn().item()
        flat[i] = original - eps
        down = fn().item()
        flat[i] = original
        grad_flat[i] = (up - down) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    params: "list[Tensor]",
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> "list[float]":
    """Assert analytic gradients of ``fn`` match finite differences.

    Returns the max absolute error per parameter; raises AssertionError on
    any mismatch (so pytest failure messages carry the exact deltas).
    """
    for p in params:
        p.zero_grad()
    loss = fn()
    loss.backward()
    errors = []
    for p in params:
        assert p.grad is not None, f"no gradient reached parameter {p!r}"
        numeric = numerical_gradient(fn, p, eps=eps)
        err = float(np.max(np.abs(p.grad - numeric)))
        errors.append(err)
        np.testing.assert_allclose(
            p.grad, numeric, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for {p!r}",
        )
    return errors
