"""Minimal reverse-mode autograd NN engine on numpy.

The paper trains its models on TensorFlow atop the AliGraph runtime; this
package is the from-scratch substitute: a :class:`Tensor` with reverse-mode
autodiff, the layers the in-house models need (dense, embedding, GRU/LSTM,
self-attention), losses (BCE, CE, skip-gram with negative sampling, VAE
ELBO) and optimizers (SGD/Adam/Adagrad). Everything is float64 numpy —
small-graph scale, gradient-checkable, deterministic.
"""

from repro.nn import functional
from repro.nn.init import he_uniform, xavier_uniform
from repro.nn.layers import Dense, Dropout, Embedding, LayerNorm, Module, Sequential
from repro.nn.loss import (
    bce_with_logits,
    cross_entropy,
    gaussian_kl,
    mse,
    skipgram_negative_loss,
)
from repro.nn.optim import SGD, Adagrad, Adam, SparseAdagrad, SparseAdam
from repro.nn.rnn import GRUCell, LSTMCell
from repro.nn.tensor import SparseGrad, Tensor

__all__ = [
    "Tensor",
    "functional",
    "Module",
    "Dense",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "GRUCell",
    "LSTMCell",
    "SGD",
    "Adam",
    "Adagrad",
    "SparseAdam",
    "SparseAdagrad",
    "SparseGrad",
    "xavier_uniform",
    "he_uniform",
    "bce_with_logits",
    "cross_entropy",
    "mse",
    "skipgram_negative_loss",
    "gaussian_kl",
]
