"""Critical-path analytics over the tracer's span forest.

A trace answers "what happened"; operators need "what should I make
faster". For every trace this module extracts the **critical path** — the
root-to-leaf chain found by always descending into the longest child — and
attributes each span's *self time* (duration minus the interval-union of
its children, clipped to the span) to one of a few canonical segments:

==============  ======================================================
segment         span names
==============  ======================================================
sample          ``pipeline.*``, ``train.sample``, ``serve.request``
materialize     ``store.resolve_read``, ``train.materialize``
rpc             ``rpc.request``, ``rpc.attempt``, ``batch.plan``
queue           ``rpc.execute`` self time (submit→drain slack)
aggregate       ``train.aggregate`` / ``train.combine``
other           everything else (``train.backward``, custom spans, ...)
==============  ======================================================

:func:`analyze` aggregates across all traces and answers the §5-style
question "where does p99 live": total and tail-only segment shares, with
the tail defined by the nearest-rank p99 of root-span durations — the same
percentile convention as ``Histogram.percentiles``. All outputs are plain
dicts with sorted/stable ordering, bit-identical across same-seed runs.
"""

from __future__ import annotations

import math

from repro.runtime.tracing import Span, Tracer

#: Canonical segments, in report order.
SEGMENTS = ("sample", "materialize", "rpc", "queue", "aggregate", "other")

_PREFIX_SEGMENTS = (
    ("pipeline.", "sample"),
    ("serve.", "sample"),
    ("store.", "materialize"),
    ("batch.", "rpc"),
    ("rpc.execute", "queue"),
    ("rpc.", "rpc"),
    ("train.sample", "sample"),
    ("train.materialize", "materialize"),
    ("train.aggregate", "aggregate"),
    ("train.combine", "aggregate"),
    ("emb.", "rpc"),
)


def classify_span(name: str) -> str:
    """Map a span name onto its canonical segment (first prefix wins)."""
    for prefix, segment in _PREFIX_SEGMENTS:
        if name.startswith(prefix):
            return segment
    return "other"


def _interval_union_us(intervals: "list[tuple[float, float]]") -> float:
    """Total length covered by possibly-overlapping ``(start, end)`` pairs."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_s, cur_e = intervals[0]
    for s, e in intervals[1:]:
        if s > cur_e:
            total += cur_e - cur_s
            cur_s, cur_e = s, e
        else:
            cur_e = max(cur_e, e)
    return total + (cur_e - cur_s)


class _TraceIndex:
    """Children-by-parent index over one trace's spans."""

    def __init__(self, spans: "list[Span]") -> None:
        self.spans = spans
        self.children: "dict[str | None, list[Span]]" = {}
        for sp in spans:
            self.children.setdefault(sp.parent_id, []).append(sp)

    def roots(self) -> "list[Span]":
        return self.children.get(None, [])

    def self_time_us(self, sp: Span) -> float:
        """Span duration not covered by its children, clipped to the span."""
        if sp.end_us is None:
            return 0.0
        covered = _interval_union_us(
            [
                (max(c.start_us, sp.start_us), min(c.end_us, sp.end_us))
                for c in self.children.get(sp.span_id, [])
                if c.end_us is not None and c.end_us > sp.start_us
                and c.start_us < sp.end_us
            ]
        )
        return max(0.0, sp.duration_us - covered)


def critical_path(tracer: Tracer, trace_id: str) -> "list[dict]":
    """Root-to-leaf chain of one trace, always taking the longest child.

    Ties break on earliest start then span id, so the path is a pure
    function of the trace. Each row carries the span name, segment, total
    duration and self time.
    """
    index = _TraceIndex(tracer.trace_spans(trace_id))
    roots = index.roots()
    if not roots:
        return []
    path: "list[dict]" = []
    sp = max(roots, key=lambda s: (s.duration_us, -s.start_us, s.span_id))
    while sp is not None:
        path.append(
            {
                "span": sp.name,
                "segment": classify_span(sp.name),
                "duration_us": round(sp.duration_us, 3),
                "self_us": round(index.self_time_us(sp), 3),
            }
        )
        kids = index.children.get(sp.span_id, [])
        sp = (
            max(kids, key=lambda s: (s.duration_us, -s.start_us, s.span_id))
            if kids
            else None
        )
    return path


def _segment_totals(index: _TraceIndex) -> "dict[str, float]":
    totals = {seg: 0.0 for seg in SEGMENTS}
    for sp in index.spans:
        totals[classify_span(sp.name)] += index.self_time_us(sp)
    return totals


def analyze(tracer: Tracer, tail_pct: float = 99.0) -> dict:
    """Aggregate "where does the time (and the tail) live" across traces.

    Per trace the root span's duration is the request latency and each
    span's self time lands in its segment bucket. The tail set is every
    trace whose latency is >= the nearest-rank ``tail_pct`` percentile of
    latencies, so ``segments_tail`` answers "where does p99 live" while
    ``segments_total`` covers the whole run.
    """
    per_trace: "list[dict]" = []
    for trace_id in tracer.traces():
        index = _TraceIndex(tracer.trace_spans(trace_id))
        roots = index.roots()
        if not roots:
            continue
        latency = max(r.duration_us for r in roots)
        per_trace.append(
            {
                "trace_id": trace_id,
                "root": max(
                    roots, key=lambda s: (s.duration_us, -s.start_us, s.span_id)
                ).name,
                "latency_us": round(latency, 3),
                "segments": {
                    seg: round(v, 3) for seg, v in _segment_totals(index).items()
                },
            }
        )
    if not per_trace:
        return {
            "n_traces": 0,
            "tail_pct": float(tail_pct),
            "tail_threshold_us": 0.0,
            "n_tail": 0,
            "latency_us": {"p50": 0.0, "p95": 0.0, "p99": 0.0},
            "segments_total": {seg: 0.0 for seg in SEGMENTS},
            "segments_tail": {seg: 0.0 for seg in SEGMENTS},
            "traces": [],
        }

    latencies = sorted(t["latency_us"] for t in per_trace)
    n = len(latencies)

    def rank(p: float) -> float:
        # Nearest-rank, same convention as Histogram.percentiles.
        return latencies[max(1, math.ceil(p / 100.0 * n)) - 1]

    threshold = rank(float(tail_pct))
    tail = [t for t in per_trace if t["latency_us"] >= threshold]

    def sum_segments(traces: "list[dict]") -> "dict[str, float]":
        totals = {seg: 0.0 for seg in SEGMENTS}
        for t in traces:
            for seg in SEGMENTS:
                totals[seg] += t["segments"][seg]
        return {seg: round(v, 3) for seg, v in totals.items()}

    return {
        "n_traces": n,
        "tail_pct": float(tail_pct),
        "tail_threshold_us": round(threshold, 3),
        "n_tail": len(tail),
        "latency_us": {
            "p50": round(rank(50.0), 3),
            "p95": round(rank(95.0), 3),
            "p99": round(rank(99.0), 3),
        },
        "segments_total": sum_segments(per_trace),
        "segments_tail": sum_segments(tail),
        "traces": per_trace,
    }


def render_analysis(report: dict, max_traces: int = 5) -> str:
    """Human-readable rendering of :func:`analyze` output."""
    lines = ["=== critical-path analysis ==="]
    if report["n_traces"] == 0:
        lines.append("(no traces recorded)")
        return "\n".join(lines)
    lat = report["latency_us"]
    lines.append(
        f"traces: {report['n_traces']}  "
        f"latency p50={lat['p50']:.1f}us p95={lat['p95']:.1f}us "
        f"p99={lat['p99']:.1f}us"
    )
    lines.append(
        f"tail: {report['n_tail']} traces >= "
        f"p{report['tail_pct']:g} ({report['tail_threshold_us']:.1f}us)"
    )
    total_all = sum(report["segments_total"].values()) or 1.0
    total_tail = sum(report["segments_tail"].values()) or 1.0
    lines.append(
        f"--- where does the time live (all vs p{report['tail_pct']:g} tail) ---"
    )
    lines.append(f"{'segment':<12} {'all_us':>12} {'all':>7} {'tail_us':>12} {'tail':>7}")
    for seg in SEGMENTS:
        a = report["segments_total"][seg]
        t = report["segments_tail"][seg]
        lines.append(
            f"{seg:<12} {a:>12.1f} {a / total_all:>6.1%} "
            f"{t:>12.1f} {t / total_tail:>6.1%}"
        )
    slowest = sorted(
        report["traces"], key=lambda t: (-t["latency_us"], t["trace_id"])
    )[:max_traces]
    lines.append(f"--- slowest {len(slowest)} traces ---")
    for t in slowest:
        segs = " ".join(
            f"{seg}={t['segments'][seg]:.0f}"
            for seg in SEGMENTS
            if t["segments"][seg] > 0
        )
        lines.append(
            f"{t['trace_id']}  {t['root']:<18} {t['latency_us']:>10.1f}us  {segs}"
        )
    return "\n".join(lines)


def render_critical_path(tracer: Tracer, trace_id: "str | None" = None) -> str:
    """Render one trace's critical path (the first trace by default)."""
    traces = tracer.traces()
    if not traces:
        return "(no traces recorded)"
    trace_id = trace_id or traces[0]
    path = critical_path(tracer, trace_id)
    lines = [f"critical path of trace {trace_id} ({len(path)} spans)"]
    for depth, row in enumerate(path):
        lines.append(
            f"{'  ' * depth}- {row['span']} [{row['segment']}] "
            f"{row['duration_us']:.1f}us (self {row['self_us']:.1f}us)"
        )
    return "\n".join(lines)
