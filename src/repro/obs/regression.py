"""Benchmark regression gate: fresh smoke runs vs committed baselines.

PRs 4–7 bought concrete numbers — 1.91x modelled makespan, 3.6x cached-class
p99, 299x sparse-optimizer steps — and nothing today notices when a later
change quietly gives them back. This module is the gate: it re-runs each
benchmark in ``--smoke --json`` mode (CI-sized, deterministic under the
virtual clock), loads the committed smoke baseline from
``benchmarks/results/smoke/`` and compares metric by metric under explicit
per-metric tolerance bands.

Only metrics matched by a :class:`MetricRule` are gated — wall-clock
readings (``wall_ms`` and friends) are machine noise and deliberately have
no rule, while simulated-time latencies, modelled makespans and trace
volumes are deterministic and band tightly. A metric present in the
baseline but missing fresh (or vice versa) is a failure: renames must touch
the baseline in the same PR.

Fresh runs are redirected to a scratch directory via the
``REPRO_BENCH_RESULTS_DIR`` override honored by ``benchmarks/_common.py``,
so a gate run never rewrites the committed artifacts it compares against.
``repro bench-compare`` is the CLI face; ``--inject-latency-pct`` inflates
the fresh payload's higher-is-worse metrics, proving end to end that the
bands actually trip (the CI gate runs it with 20%).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Env var (honored by benchmarks/_common.py) redirecting result output.
RESULTS_DIR_ENV = "REPRO_BENCH_RESULTS_DIR"

DIRECTIONS = ("higher_is_worse", "lower_is_worse", "both")


@dataclass(frozen=True)
class MetricRule:
    """One tolerance band: which metrics, how much drift, which way hurts.

    ``pattern`` is a regex searched against the metric key
    ``"<record label>:<measured key>"``. ``rel_tol`` is the allowed
    relative deviation from the baseline; ``abs_tol`` additionally forgives
    small absolute drift on near-zero baselines (a 0→1 shed count is not a
    20000% regression). ``direction`` says which side of the band fails:
    latencies are ``higher_is_worse``, speedups/goodputs are
    ``lower_is_worse``, exact counts are ``both``.
    """

    pattern: str
    rel_tol: float
    direction: str = "higher_is_worse"
    abs_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ReproError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ReproError("tolerances must be >= 0")


@dataclass(frozen=True)
class BenchSpec:
    """One gated benchmark: its id, its script and its tolerance bands."""

    experiment_id: str
    script: str
    rules: "tuple[MetricRule, ...]" = field(default_factory=tuple)


#: The gated suite. Wall-clock metrics carry no rule on purpose; everything
#: banded below is virtual-clock deterministic at a fixed seed.
DEFAULT_SUITE: "tuple[BenchSpec, ...]" = (
    BenchSpec(
        "serving_slo",
        "bench_serving.py",
        (
            MetricRule(r":p(50|95|99)_us$", rel_tol=0.10),
            MetricRule(r":in_deadline_rps$", rel_tol=0.10, direction="lower_is_worse"),
            MetricRule(r":(requests|ok)$", rel_tol=0.05, direction="both", abs_tol=2.0),
            MetricRule(r":(shed|expired)$", rel_tol=0.25, abs_tol=5.0),
        ),
    ),
    BenchSpec(
        "prefetch_overlap",
        "bench_prefetch_overlap.py",
        (
            # Only the modelled per-depth rows are gated: the kernel
            # wall-clock speedup ("materialization cache kernels") is
            # machine noise and deliberately unruled.
            MetricRule(r"^prefetch depth \d+:makespan_ms$", rel_tol=0.10),
            MetricRule(
                r"^prefetch depth \d+:speedup$",
                rel_tol=0.10,
                direction="lower_is_worse",
            ),
            MetricRule(r":(coalesced|reads)$", rel_tol=0.05, direction="both", abs_tol=2.0),
        ),
    ),
    BenchSpec(
        "gnn_minibatch",
        "bench_gnn_minibatch.py",
        (
            # Deterministic at a fixed seed: step counts, block sizes and
            # held-out AUC. The step_ms / stage_ms wall-clock columns (and
            # the speedup ratios derived from them) are deliberately
            # unruled.
            MetricRule(r":steps$", rel_tol=0.0, direction="both"),
            MetricRule(
                r":(input|block)_rows_per_step$",
                rel_tol=0.05,
                direction="both",
                abs_tol=2.0,
            ),
            MetricRule(r":auc$", rel_tol=0.10, direction="lower_is_worse"),
        ),
    ),
    BenchSpec(
        "placement_adaptive",
        "bench_placement.py",
        (
            # Virtual-clock deterministic at the fixed seed: latencies are
            # ledger deltas, counts are controller decisions. The headline
            # "...x" strings and the determinism boolean flatten away.
            MetricRule(r":p(50|95|99)_us$", rel_tol=0.10, abs_tol=1.0),
            MetricRule(r":remote_rpcs$", rel_tol=0.10, abs_tol=5.0),
            MetricRule(
                r":local_share$", rel_tol=0.05, direction="lower_is_worse"
            ),
            MetricRule(
                r"^adaptation:(epochs|promoted|demoted|migrated"
                r"|migrate_items|migration_rpcs)$",
                rel_tol=0.10,
                direction="both",
                abs_tol=2.0,
            ),
            MetricRule(r"^adaptation:max_epoch_items$", rel_tol=0.25, abs_tol=5.0),
        ),
    ),
    BenchSpec(
        "trace_overhead",
        "bench_trace_overhead.py",
        (
            MetricRule(
                r":(spans|ledger_rows|traces)$",
                rel_tol=0.05,
                direction="both",
                abs_tol=2.0,
            ),
        ),
    ),
    BenchSpec(
        "obs_overhead",
        "bench_obs_overhead.py",
        (
            MetricRule(
                r":(reads_recorded|ts_samples|series|spans)$",
                rel_tol=0.05,
                direction="both",
                abs_tol=2.0,
            ),
        ),
    ),
)


# ---------------------------------------------------------------------- #
# Payload flattening and comparison
# ---------------------------------------------------------------------- #
def flatten_payload(payload: dict) -> "dict[str, float]":
    """``{"<label>:<key>": value}`` for every numeric measured value.

    Scalar ``measured`` values flatten under the bare label. Strings
    (``"+1.60%"`` annotations) and booleans are not metrics and are
    dropped.
    """
    flat: "dict[str, float]" = {}
    for rec in payload.get("records", []):
        label = rec.get("label", "?")
        measured = rec.get("measured")
        items = (
            measured.items()
            if isinstance(measured, dict)
            else [("", measured)]
        )
        for key, value in items:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            flat[f"{label}:{key}" if key else label] = float(value)
    return flat


def _match_rule(rules: "tuple[MetricRule, ...]", key: str) -> "MetricRule | None":
    for rule in rules:
        if re.search(rule.pattern, key):
            return rule
    return None


def compare_payloads(baseline: dict, fresh: dict, spec: BenchSpec) -> dict:
    """Band-by-band comparison of one benchmark's fresh run vs baseline.

    Returns ``{experiment_id, ok, rows, n_checked, n_regressions,
    n_missing, n_skipped}``; ``rows`` carry one entry per gated or missing
    metric with the observed relative delta and its verdict. Unmatched
    metrics are counted as skipped, never failed — the rules define the
    contract.
    """
    base = flatten_payload(baseline)
    new = flatten_payload(fresh)
    rows: "list[dict]" = []
    n_skipped = 0
    for key in sorted(set(base) | set(new)):
        rule = _match_rule(spec.rules, key)
        if rule is None:
            n_skipped += 1
            continue
        if key not in base or key not in new:
            rows.append(
                {
                    "metric": key,
                    "status": "missing",
                    "baseline": base.get(key),
                    "fresh": new.get(key),
                    "detail": "metric absent from "
                    + ("fresh run" if key not in new else "baseline"),
                }
            )
            continue
        b, f = base[key], new[key]
        delta = f - b
        rel = delta / abs(b) if b != 0 else (0.0 if delta == 0 else float("inf"))
        worse = (
            delta > 0
            if rule.direction == "higher_is_worse"
            else delta < 0
            if rule.direction == "lower_is_worse"
            else delta != 0
        )
        inside = abs(delta) <= rule.abs_tol or abs(rel) <= rule.rel_tol
        status = "ok" if (inside or not worse) else "regression"
        if not worse and not inside:
            status = "improved"
        rows.append(
            {
                "metric": key,
                "status": status,
                "baseline": b,
                "fresh": f,
                "rel_delta": round(rel, 6) if rel != float("inf") else None,
                "rel_tol": rule.rel_tol,
                "direction": rule.direction,
            }
        )
    n_regressions = sum(r["status"] == "regression" for r in rows)
    n_missing = sum(r["status"] == "missing" for r in rows)
    return {
        "experiment_id": spec.experiment_id,
        "ok": n_regressions == 0 and n_missing == 0,
        "rows": rows,
        "n_checked": len(rows),
        "n_regressions": n_regressions,
        "n_missing": n_missing,
        "n_skipped": n_skipped,
    }


def inject_latency(payload: dict, pct: float, spec: BenchSpec) -> dict:
    """Inflate every ``higher_is_worse``-gated metric by ``pct`` percent.

    The self-test hook behind ``bench-compare --inject-latency-pct``: a
    gate that cannot flag a synthetic 20% latency regression is not a
    gate. Returns a modified copy; the input payload is untouched.
    """
    out = json.loads(json.dumps(payload))
    factor = 1.0 + pct / 100.0
    for rec in out.get("records", []):
        measured = rec.get("measured")
        if not isinstance(measured, dict):
            continue
        for key, value in measured.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            rule = _match_rule(spec.rules, f"{rec.get('label', '?')}:{key}")
            if rule is not None and rule.direction == "higher_is_worse":
                measured[key] = type(value)(value * factor)
    return out


# ---------------------------------------------------------------------- #
# Running benchmarks
# ---------------------------------------------------------------------- #
def run_bench(
    spec: BenchSpec, bench_dir: str, out_dir: str, smoke: bool = True
) -> dict:
    """Run one benchmark script and return its fresh JSON payload.

    The subprocess writes its results into ``out_dir`` (via the
    ``REPRO_BENCH_RESULTS_DIR`` override) so the committed artifacts stay
    untouched; the payload is read back from there.
    """
    script = os.path.join(bench_dir, spec.script)
    if not os.path.exists(script):
        raise ReproError(f"benchmark script not found: {script}")
    os.makedirs(out_dir, exist_ok=True)
    env = dict(os.environ)
    repro_src = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.dirname(repro_src)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, bench_dir, env.get("PYTHONPATH")) if p
    )
    env[RESULTS_DIR_ENV] = out_dir
    cmd = [sys.executable, script] + (["--smoke"] if smoke else [])
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise ReproError(
            f"benchmark {spec.script} exited {proc.returncode}:\n"
            f"{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
        )
    path = os.path.join(out_dir, f"{spec.experiment_id}.json")
    if not os.path.exists(path):
        raise ReproError(
            f"benchmark {spec.script} produced no {spec.experiment_id}.json "
            f"in {out_dir}"
        )
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def load_baseline(baseline_dir: str, experiment_id: str) -> "dict | None":
    path = os.path.join(baseline_dir, f"{experiment_id}.json")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def compare_suite(
    bench_dir: str,
    baseline_dir: str,
    out_dir: str,
    specs: "tuple[BenchSpec, ...]" = DEFAULT_SUITE,
    smoke: bool = True,
    inject_latency_pct: float = 0.0,
    only: "list[str] | None" = None,
) -> dict:
    """Run the gated suite and compare every benchmark against baseline.

    Returns ``{ok, results: [per-bench compare dicts]}``. A missing
    baseline fails that benchmark (commit one with the PR that adds the
    bench). ``only`` restricts the suite by experiment id.
    """
    results: "list[dict]" = []
    for spec in specs:
        if only and spec.experiment_id not in only:
            continue
        baseline = load_baseline(baseline_dir, spec.experiment_id)
        if baseline is None:
            results.append(
                {
                    "experiment_id": spec.experiment_id,
                    "ok": False,
                    "rows": [],
                    "n_checked": 0,
                    "n_regressions": 0,
                    "n_missing": 1,
                    "n_skipped": 0,
                    "error": f"no baseline {spec.experiment_id}.json "
                    f"in {baseline_dir}",
                }
            )
            continue
        fresh = run_bench(spec, bench_dir, out_dir, smoke=smoke)
        if inject_latency_pct:
            fresh = inject_latency(fresh, inject_latency_pct, spec)
        results.append(compare_payloads(baseline, fresh, spec))
    return {"ok": all(r["ok"] for r in results), "results": results}


def render_compare(report: dict) -> str:
    """Human-readable rendering of :func:`compare_suite` output."""
    lines = ["=== bench-compare ==="]
    for res in report["results"]:
        verdict = "OK" if res["ok"] else "FAIL"
        lines.append(
            f"[{verdict}] {res['experiment_id']}: "
            f"{res['n_checked']} gated, {res['n_regressions']} regressions, "
            f"{res['n_missing']} missing, {res['n_skipped']} ungated"
        )
        if res.get("error"):
            lines.append(f"    {res['error']}")
        for row in res["rows"]:
            if row["status"] == "ok":
                continue
            if row["status"] == "missing":
                lines.append(f"    MISSING {row['metric']}: {row['detail']}")
                continue
            rel = row.get("rel_delta")
            rel_s = f"{rel:+.1%}" if rel is not None else "inf"
            lines.append(
                f"    {row['status'].upper()} {row['metric']}: "
                f"{row['baseline']:g} -> {row['fresh']:g} ({rel_s}, "
                f"band {row['rel_tol']:.0%} {row['direction']})"
            )
    lines.append("overall: " + ("OK" if report["ok"] else "FAIL"))
    return "\n".join(lines)
