"""Workload introspection: time series, critical paths, traffic mining.

``repro.obs`` consumes the observability streams the runtime already emits
— :class:`~repro.runtime.tracing.Tracer` spans, the
:class:`~repro.runtime.metrics.MetricsRegistry`, the cost ledger — and
turns them into answers: how metrics evolved over virtual time
(:mod:`~repro.obs.timeseries`), where each request's latency actually went
(:mod:`~repro.obs.critical_path`), which vertices are hot and which reads
cross partitions (:mod:`~repro.obs.workload`), and whether a fresh run
regressed against the committed benchmark baselines
(:mod:`~repro.obs.regression`).

Everything here is read-side: the only hooks on hot paths are the
null-object :data:`~repro.obs.timeseries.NULL_TIMESERIES` and
:data:`~repro.obs.workload.NULL_RECORDER`, which keep disabled runs at one
attribute check per batch (``benchmarks/bench_obs_overhead.py`` holds the
line at <1%). All reports are plain dicts with stable ordering — two
same-seed runs compare equal with ``==``.
"""

from repro.obs.critical_path import (
    SEGMENTS,
    analyze,
    classify_span,
    critical_path,
    render_analysis,
    render_critical_path,
)
from repro.obs.regression import (
    DEFAULT_SUITE,
    BenchSpec,
    MetricRule,
    compare_payloads,
    compare_suite,
    flatten_payload,
    inject_latency,
    render_compare,
    run_bench,
)
from repro.obs.timeseries import NULL_TIMESERIES, TimeSeriesSampler
from repro.obs.workload import (
    NULL_RECORDER,
    ROUTES,
    AccessRecorder,
    WindowedAccessRecorder,
    cache_efficacy,
    fit_zipf,
    ledger_event_totals,
    mine_windowed,
    mine_workload,
    render_workload_report,
)

__all__ = [
    "AccessRecorder",
    "BenchSpec",
    "DEFAULT_SUITE",
    "MetricRule",
    "NULL_RECORDER",
    "NULL_TIMESERIES",
    "ROUTES",
    "SEGMENTS",
    "TimeSeriesSampler",
    "WindowedAccessRecorder",
    "analyze",
    "cache_efficacy",
    "classify_span",
    "compare_payloads",
    "compare_suite",
    "critical_path",
    "fit_zipf",
    "flatten_payload",
    "inject_latency",
    "ledger_event_totals",
    "mine_windowed",
    "mine_workload",
    "render_analysis",
    "render_compare",
    "render_critical_path",
    "render_workload_report",
    "run_bench",
]
