"""Hot-vertex / traffic mining: turn access streams into placement signal.

The paper's §4 caching analysis presumes you *know* which vertices are hot
and which reads cross partitions; ROADMAP's trace-driven adaptive
partitioner needs the same signal. The ledger tells us "how many remote
RPCs", never "for which vertex" — so this module adds the missing per-key
stream and the miners over it:

* :class:`AccessRecorder` — a null-object hook (`NULL_RECORDER` twin of
  ``NULL_TRACER``) the store and serving engine feed with one call per
  resolved read: ``(vertex, owner, issuer, route)``. Counters only — no
  clock reads, no allocation beyond the `Counter` cells.
* :func:`mine_workload` — per-vertex access-frequency table (top-k hot
  list), partition-to-partition traffic matrix, locality share and a
  Zipf-skew fit of the frequency spectrum (:func:`fit_zipf`, reusing
  ``utils.stats``).
* :func:`cache_efficacy` — scores the observed cache against the clairvoyant
  top-``k`` cache under the §4 cost model: what the run actually paid per
  route versus what an oracle holding the ``k`` hottest cross-partition
  vertices would have paid.
* :func:`ledger_event_totals` — event totals from the tracer's ledger
  cross-reference rows (``tracer.ledger_rows``), for joining the two views.

Every report is a plain dict with sorted keys/rows: two same-seed runs
compare equal with ``==``.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import ReproError
from repro.utils.stats import chi_square_gof, zipf_probs

#: Route names recorded by the store's dispatch arms, in ledger order.
ROUTES = (
    "local",
    "cache_hit",
    "remote",
    "failover",
    "suspect",
    "degraded",
)


class _NullRecorder:
    """Shared do-nothing recorder wired in when workload mining is off."""

    __slots__ = ()
    enabled = False

    def record(self, vertex: int, owner: int, issuer: int, route: str) -> None:
        return None

    def record_request(
        self, user: int, cls: str, outcome: str, cache_hit: bool
    ) -> None:
        return None


#: The singleton disabled recorder (the default hook target everywhere).
NULL_RECORDER = _NullRecorder()


class AccessRecorder:
    """Per-vertex access stream the store and serving engine feed.

    ``record`` is called once per resolved read with the vertex, its owning
    partition, the issuing partition and the route the dispatch loop chose
    (one of :data:`ROUTES`). The recorder only increments counters, so the
    stream adds a dict update per read when enabled and a single attribute
    check per batch when disabled (hooks hoist ``recorder if
    recorder.enabled else None`` out of their loops).
    """

    enabled = True

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: vertex -> total reads, regardless of route.
        self.vertex_reads: Counter = Counter()
        #: vertex -> reads where owner != issuer (what a cache could save).
        self.cross_part_reads: Counter = Counter()
        #: vertex -> owning partition (static under a fixed assignment).
        self.vertex_owner: "dict[int, int]" = {}
        #: route name -> reads.
        self.route_reads: Counter = Counter()
        #: (issuer, owner) -> reads; the diagonal is local traffic.
        self.traffic: Counter = Counter()
        #: serving-side request stream (optional).
        self.user_requests: Counter = Counter()
        self.class_outcomes: Counter = Counter()
        self.serve_cache_hits = 0
        self.serve_cache_misses = 0

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def record(self, vertex: int, owner: int, issuer: int, route: str) -> None:
        self.vertex_reads[vertex] += 1
        self.vertex_owner[vertex] = owner
        self.route_reads[route] += 1
        self.traffic[(issuer, owner)] += 1
        if owner != issuer:
            self.cross_part_reads[vertex] += 1

    def record_request(
        self, user: int, cls: str, outcome: str, cache_hit: bool
    ) -> None:
        self.user_requests[user] += 1
        self.class_outcomes[(cls, outcome)] += 1
        if cache_hit:
            self.serve_cache_hits += 1
        else:
            self.serve_cache_misses += 1

    @property
    def total_reads(self) -> int:
        return sum(self.route_reads.values())


#: Routes that actually left the issuing server (a replica or migration
#: could have saved them). ``cache_hit`` is excluded: those reads were
#: already served locally.
REMOTE_ROUTES = frozenset({"remote", "failover", "suspect"})

#: Keys pruned from the decayed maps once their weight drops below this —
#: keeps roll() cost proportional to the *recent* working set, not history.
_DECAY_EPS = 1e-6


class WindowedAccessRecorder(AccessRecorder):
    """Access recorder with exponentially-decayed per-window statistics.

    Cumulative counters can't see a hot set *shift* — a vertex read a
    million times an hour ago outranks everything read this second. The
    placement controller instead consumes this recorder's decayed view:
    each :meth:`roll` (one decision epoch) multiplies every decayed weight
    by ``decay`` and folds in the window just ended, so a key untouched for
    ``k`` windows carries ``decay**k`` of its old weight. The cumulative
    base-class view is untouched — existing miners and reports see exactly
    the counts a plain :class:`AccessRecorder` would have.
    """

    def __init__(self, decay: float = 0.5) -> None:
        if not 0.0 <= decay < 1.0:
            raise ReproError(f"decay must be in [0, 1), got {decay}")
        self.decay = float(decay)
        super().__init__()

    def reset(self) -> None:
        super().reset()
        # Current (un-rolled) window, raw counts.
        self._win_vertex: Counter = Counter()
        self._win_issuer: Counter = Counter()  # (vertex, issuer) all routes
        self._win_remote: Counter = Counter()  # (vertex, issuer) remote only
        self._win_traffic: Counter = Counter()
        # Decayed accumulators, folded on roll().
        self.decayed_vertex_reads: "dict[int, float]" = {}
        self.decayed_issuer_reads: "dict[tuple[int, int], float]" = {}
        self.decayed_remote_reads: "dict[tuple[int, int], float]" = {}
        self.decayed_traffic: "dict[tuple[int, int], float]" = {}
        self.windows_rolled = 0

    def record(self, vertex: int, owner: int, issuer: int, route: str) -> None:
        super().record(vertex, owner, issuer, route)
        self._win_vertex[vertex] += 1
        self._win_issuer[(vertex, issuer)] += 1
        self._win_traffic[(issuer, owner)] += 1
        if route in REMOTE_ROUTES:
            self._win_remote[(vertex, issuer)] += 1

    @staticmethod
    def _fold(decayed: dict, window: Counter, decay: float) -> None:
        for key in list(decayed):
            weight = decayed[key] * decay
            if weight < _DECAY_EPS:
                del decayed[key]
            else:
                decayed[key] = weight
        for key, count in window.items():
            decayed[key] = decayed.get(key, 0.0) + float(count)
        window.clear()

    def roll(self) -> None:
        """Close the current window: decay history, fold the window in."""
        self._fold(self.decayed_vertex_reads, self._win_vertex, self.decay)
        self._fold(self.decayed_issuer_reads, self._win_issuer, self.decay)
        self._fold(self.decayed_remote_reads, self._win_remote, self.decay)
        self._fold(self.decayed_traffic, self._win_traffic, self.decay)
        self.windows_rolled += 1


def mine_windowed(recorder: WindowedAccessRecorder, top_k: int = 20) -> dict:
    """Recency-weighted twin of :func:`mine_workload`.

    Hot vertices and the traffic matrix are ranked by decayed weight (the
    state after the most recent :meth:`WindowedAccessRecorder.roll`), so a
    rotated hot set displaces the old one within a few windows instead of
    never. Weights are rounded to 6 places; sorted keys keep the report
    ``==``-comparable across same-seed runs.
    """
    decayed = recorder.decayed_vertex_reads
    total = sum(decayed.values())
    report: dict = {
        "windows_rolled": int(recorder.windows_rolled),
        "decay": recorder.decay,
        "decayed_total": round(total, 6),
        "unique_vertices": len(decayed),
    }
    if total <= 0.0:
        report.update({"hot_vertices": [], "parts": [], "traffic_matrix": []})
        return report
    hot = sorted(decayed.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
    report["hot_vertices"] = [
        {
            "vertex": int(v),
            "weight": round(w, 6),
            "share": round(w / total, 6),
            "owner": int(recorder.vertex_owner[v]),
        }
        for v, w in hot
    ]
    parts = sorted({p for pair in recorder.decayed_traffic for p in pair})
    index = {p: i for i, p in enumerate(parts)}
    matrix = [[0.0] * len(parts) for _ in parts]
    for (issuer, owner), w in recorder.decayed_traffic.items():
        matrix[index[issuer]][index[owner]] += w
    report["parts"] = [int(p) for p in parts]
    report["traffic_matrix"] = [
        [round(cell, 6) for cell in row] for row in matrix
    ]
    local = sum(matrix[i][i] for i in range(len(parts)))
    report["local_share"] = round(local / total, 6)
    return report


# ---------------------------------------------------------------------- #
# Zipf fit
# ---------------------------------------------------------------------- #
def fit_zipf(counts: "list[int] | np.ndarray") -> dict:
    """Fit a Zipf exponent to a frequency spectrum, plus goodness-of-fit.

    ``counts`` is the per-key frequency table in any order; the fit is over
    the rank-ordered spectrum. The exponent is the least-squares slope in
    log-log space over nonzero ranks (deterministic, dependency-free), and
    the chi-square GOF compares observed counts against the fitted
    ``zipf_probs`` — a *low* p-value with a high exponent still reads as
    "skewed", the p-value only says how exactly Zipfian the tail is.
    """
    spectrum = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    spectrum = spectrum[spectrum > 0]
    n = int(spectrum.size)
    if n == 0:
        raise ReproError("fit_zipf needs at least one nonzero count")
    total = float(spectrum.sum())
    top1 = float(spectrum[0] / total)
    top10 = float(spectrum[: max(1, n // 10)].sum() / total)
    if n == 1:
        return {
            "n_keys": 1,
            "exponent": 0.0,
            "chi2": 0.0,
            "p_value": 1.0,
            "top1_share": top1,
            "top10pct_share": top10,
        }
    ranks = np.log(np.arange(1, n + 1, dtype=np.float64))
    freqs = np.log(spectrum)
    slope = float(np.polyfit(ranks, freqs, 1)[0])
    exponent = max(0.0, -slope)
    stat, p = chi_square_gof(spectrum, zipf_probs(n, exponent))
    return {
        "n_keys": n,
        "exponent": round(exponent, 6),
        "chi2": round(float(stat), 6),
        "p_value": round(float(p), 6),
        "top1_share": round(top1, 6),
        "top10pct_share": round(top10, 6),
    }


# ---------------------------------------------------------------------- #
# Miners
# ---------------------------------------------------------------------- #
def mine_workload(recorder: AccessRecorder, top_k: int = 20) -> dict:
    """Distill the recorder's stream into the placement artifacts.

    Returns a dict with the hot-vertex table (top ``top_k`` by reads, ties
    broken by vertex id), the partition traffic matrix (dense, row=issuer,
    col=owner), per-route totals, the locality share and the Zipf fit of
    the access spectrum. Empty recorders yield an explicitly empty report
    rather than raising, so reports compose into pipelines.
    """
    total = recorder.total_reads
    report: dict = {
        "total_reads": total,
        "unique_vertices": len(recorder.vertex_reads),
        "routes": {r: int(recorder.route_reads.get(r, 0)) for r in ROUTES},
    }
    if total == 0:
        # Serving-only recorders (engine hook without a store hook) still
        # carry request stats, so fall through to the serving block below.
        report.update(
            {
                "hot_vertices": [],
                "parts": [],
                "traffic_matrix": [],
                "local_share": 0.0,
                "zipf": None,
            }
        )
        report["serving"] = _mine_serving(recorder)
        return report

    hot = sorted(
        recorder.vertex_reads.items(), key=lambda kv: (-kv[1], kv[0])
    )[:top_k]
    report["hot_vertices"] = [
        {
            "vertex": int(v),
            "reads": int(c),
            "share": round(c / total, 6),
            "owner": int(recorder.vertex_owner[v]),
            "cross_part": int(recorder.cross_part_reads.get(v, 0)),
        }
        for v, c in hot
    ]

    parts = sorted(
        {p for pair in recorder.traffic for p in pair}
        | set(recorder.vertex_owner.values())
    )
    index = {p: i for i, p in enumerate(parts)}
    matrix = [[0] * len(parts) for _ in parts]
    for (issuer, owner), c in recorder.traffic.items():
        matrix[index[issuer]][index[owner]] += int(c)
    local = sum(matrix[i][i] for i in range(len(parts)))
    report["parts"] = [int(p) for p in parts]
    report["traffic_matrix"] = matrix
    report["local_share"] = round(local / total, 6)
    report["zipf"] = fit_zipf(list(recorder.vertex_reads.values()))

    report["serving"] = _mine_serving(recorder)
    return report


def _mine_serving(recorder: AccessRecorder) -> "dict | None":
    """The serving-tier sub-report, or None when no requests were seen."""
    if not recorder.user_requests:
        return None
    served = recorder.serve_cache_hits + recorder.serve_cache_misses
    return {
        "requests": int(sum(recorder.user_requests.values())),
        "unique_users": len(recorder.user_requests),
        "outcomes": {
            f"{cls}/{outcome}": int(c)
            for (cls, outcome), c in sorted(recorder.class_outcomes.items())
        },
        "embed_cache_hit_rate": round(recorder.serve_cache_hits / served, 6)
        if served
        else 0.0,
        "user_zipf": fit_zipf(list(recorder.user_requests.values())),
    }


def cache_efficacy(
    recorder: AccessRecorder,
    cost_model: "object",
    capacities: "tuple[int, ...]" = (16, 64, 256, 1024),
) -> dict:
    """Score the observed cache against the clairvoyant top-``k`` cache.

    Under the §4 cost model, every cross-partition read costs
    ``remote_rpc_us`` unless a cache answers it for ``cache_hit_us``. The
    *observed* row prices the routes the run actually took; each capacity
    row prices an oracle that holds the ``k`` most frequently
    cross-partition-read vertices for the whole run — the upper bound any
    cache policy (and the future adaptive partitioner) is chasing.
    ``cost_model`` is duck-typed: anything with ``remote_rpc_us`` /
    ``cache_hit_us`` attributes works.
    """
    remote_us = float(cost_model.remote_rpc_us)
    hit_us = float(cost_model.cache_hit_us)
    cross = sorted(
        recorder.cross_part_reads.items(), key=lambda kv: (-kv[1], kv[0])
    )
    cross_total = sum(c for _, c in cross)
    worst_us = cross_total * remote_us

    observed_hits = int(recorder.route_reads.get("cache_hit", 0))
    observed_remote = cross_total - observed_hits
    observed_us = observed_hits * hit_us + observed_remote * remote_us

    rows = []
    for k in capacities:
        saved_reads = sum(c for _, c in cross[: int(k)])
        oracle_us = saved_reads * hit_us + (cross_total - saved_reads) * remote_us
        rows.append(
            {
                "capacity": int(k),
                "hit_rate": round(saved_reads / cross_total, 6)
                if cross_total
                else 0.0,
                "modelled_us": round(oracle_us, 3),
                "saved_vs_uncached": round(1.0 - oracle_us / worst_us, 6)
                if worst_us
                else 0.0,
            }
        )
    return {
        "cross_part_reads": int(cross_total),
        "unique_cross_part_vertices": len(cross),
        "uncached_us": round(worst_us, 3),
        "observed": {
            "cache_hits": observed_hits,
            "hit_rate": round(observed_hits / cross_total, 6)
            if cross_total
            else 0.0,
            "modelled_us": round(observed_us, 3),
            "saved_vs_uncached": round(1.0 - observed_us / worst_us, 6)
            if worst_us
            else 0.0,
        },
        "oracle": rows,
    }


def ledger_event_totals(tracer: "object") -> dict:
    """Event totals from ``tracer.ledger_rows``.

    Rows are ``[t_us, trace_id, span_id, event, times]`` (the ledger↔trace
    cross-reference PR 3 introduced); this aggregates them into
    ``{event: total_times}`` for joining against the recorder's view.
    """
    totals: Counter = Counter()
    for _, _, _, event, times in tracer.ledger_rows:
        totals[event] += int(times)
    return {event: int(totals[event]) for event in sorted(totals)}


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #
def render_workload_report(
    report: dict, efficacy: "dict | None" = None
) -> str:
    """Human-readable rendering of :func:`mine_workload` output."""
    lines = ["=== workload report ==="]
    lines.append(
        f"reads: {report['total_reads']}  "
        f"unique vertices: {report['unique_vertices']}  "
        f"local share: {report.get('local_share', 0.0):.1%}"
    )
    routes = report["routes"]
    lines.append(
        "routes: "
        + "  ".join(f"{r}={routes[r]}" for r in ROUTES if routes.get(r))
    )
    zipf = report.get("zipf")
    if zipf:
        lines.append(
            f"zipf fit: exponent={zipf['exponent']:.3f} "
            f"top1={zipf['top1_share']:.1%} "
            f"top10%={zipf['top10pct_share']:.1%} "
            f"(chi2 p={zipf['p_value']:.3g})"
        )
    if report.get("hot_vertices"):
        lines.append("--- hot vertices ---")
        lines.append(f"{'vertex':>8} {'owner':>5} {'reads':>7} {'share':>7} {'xpart':>7}")
        for row in report["hot_vertices"]:
            lines.append(
                f"{row['vertex']:>8} {row['owner']:>5} {row['reads']:>7} "
                f"{row['share']:>6.2%} {row['cross_part']:>7}"
            )
    if report.get("parts"):
        lines.append("--- traffic matrix (rows=issuer, cols=owner) ---")
        parts = report["parts"]
        lines.append("      " + " ".join(f"{p:>8}" for p in parts))
        for p, row in zip(parts, report["traffic_matrix"]):
            lines.append(f"{p:>5} " + " ".join(f"{c:>8}" for c in row))
    serving = report.get("serving")
    if serving:
        lines.append("--- serving ---")
        lines.append(
            f"requests: {serving['requests']}  "
            f"unique users: {serving['unique_users']}  "
            f"embed-cache hit rate: {serving['embed_cache_hit_rate']:.1%}"
        )
        for key, c in serving["outcomes"].items():
            lines.append(f"  {key}: {c}")
    if efficacy:
        lines.append("--- cache efficacy (vs §4 cost model) ---")
        lines.append(
            f"cross-partition reads: {efficacy['cross_part_reads']}  "
            f"uncached cost: {efficacy['uncached_us']:.0f}us"
        )
        obs = efficacy["observed"]
        lines.append(
            f"observed: hit rate {obs['hit_rate']:.1%}, "
            f"cost {obs['modelled_us']:.0f}us "
            f"({obs['saved_vs_uncached']:.1%} saved)"
        )
        for row in efficacy["oracle"]:
            lines.append(
                f"oracle k={row['capacity']:>5}: hit rate {row['hit_rate']:.1%}, "
                f"cost {row['modelled_us']:.0f}us "
                f"({row['saved_vs_uncached']:.1%} saved)"
            )
    return "\n".join(lines)
