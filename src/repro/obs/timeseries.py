"""Virtual-clock time series: periodic snapshots of the metrics registry.

Counters and histograms answer "how much, in total"; operators also need
"how did it evolve" — queue depth over the burst, p99 drift as the cache
warms, RPC rate around a failure. :class:`TimeSeriesSampler` turns the
registry into exactly that: on every crossed tick of the virtual clock it
snapshots each counter (value), gauge (value) and histogram (count plus
exact percentiles) into per-series ring buffers.

Sampling is **pull-based and deterministic**: instrumented subsystems call
:meth:`TimeSeriesSampler.poll` at natural points (the store after each
resolved read batch, the serving engine after each request, the GNN
framework after each step), and a sample is taken only when the clock has
crossed the next tick boundary — stamped *at the boundary*, so two
same-seed runs produce bit-identical series no matter how often either
polls. The shared :data:`NULL_TIMESERIES` answers ``poll()`` with an
immediate ``False``, keeping un-instrumented runs at one no-op call per
batch (the ``NULL_TRACER`` bar; see ``benchmarks/bench_obs_overhead.py``).

Exports: plain dict (:meth:`to_dict`), CSV rows (:meth:`to_csv`) and
Chrome trace-event counter (``ph: "C"``) events that render as time-series
tracks alongside spans in Perfetto (:meth:`chrome_counter_events`).
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import ReproError
from repro.runtime.metrics import MetricsRegistry, _series_key


class _NullTimeSeries:
    """Shared do-nothing sampler wired in when time series are off."""

    __slots__ = ()
    enabled = False

    def poll(self) -> bool:
        return False

    def sample_now(self) -> None:
        return None


#: The singleton disabled sampler (the default hook target everywhere).
NULL_TIMESERIES = _NullTimeSeries()


class TimeSeriesSampler:
    """Snapshots a :class:`MetricsRegistry` on virtual-clock tick crossings.

    Parameters
    ----------
    metrics:
        The registry to snapshot (shared with the runtime / store).
    clock:
        Anything exposing ``now_us`` — normally the runtime's
        :class:`~repro.runtime.rpc.VirtualClock`.
    tick_us:
        Sampling period in (simulated) microseconds. A ``poll()`` that
        finds the clock past one or more boundaries records **one** sample
        stamped at the most recent boundary — ticks with no poll in
        between are coalesced, never back-filled, so series stay a pure
        function of (workload, seed, tick).
    capacity:
        Ring-buffer length per series; the oldest samples fall off first.
    percentiles:
        Histogram percentiles captured per snapshot (p50/p95/p99 default,
        matching every latency table in the repo).
    """

    enabled = True

    def __init__(
        self,
        metrics: MetricsRegistry,
        clock: "object",
        tick_us: float = 1000.0,
        capacity: int = 4096,
        percentiles: "tuple[float, ...]" = (50.0, 95.0, 99.0),
    ) -> None:
        if tick_us <= 0:
            raise ReproError(f"tick_us must be > 0, got {tick_us}")
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        self.metrics = metrics
        self.clock = clock
        self.tick_us = float(tick_us)
        self.capacity = int(capacity)
        self.percentiles = tuple(float(p) for p in percentiles)
        self.series: "dict[str, deque]" = {}
        self.n_samples = 0
        # First sample lands on the first boundary strictly ahead of the
        # clock's position at construction time.
        self._next_due = (
            math.floor(float(clock.now_us) / self.tick_us) + 1
        ) * self.tick_us

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def _ring(self, key: str) -> deque:
        ring = self.series.get(key)
        if ring is None:
            ring = self.series[key] = deque(maxlen=self.capacity)
        return ring

    def _snapshot(self, t_us: float) -> None:
        for c in self.metrics.counters():
            self._ring(_series_key(c.name, c.labels)).append((t_us, c.value))
        for g in self.metrics.gauges():
            self._ring(_series_key(g.name, g.labels)).append((t_us, g.value))
        for h in self.metrics.histograms():
            key = _series_key(h.name, h.labels)
            self._ring(f"{key}:count").append((t_us, h.count))
            values = h.percentiles(self.percentiles)
            for p, value in zip(self.percentiles, values):
                self._ring(f"{key}:p{p:g}").append((t_us, value))
        self.n_samples += 1

    def poll(self) -> bool:
        """Sample if the clock has crossed the next tick; returns whether.

        Crossing several boundaries between polls records one sample at
        the latest boundary (coalescing, not back-filling).
        """
        now = float(self.clock.now_us)
        if now < self._next_due:
            return False
        t = math.floor(now / self.tick_us) * self.tick_us
        self._snapshot(t)
        self._next_due = t + self.tick_us
        return True

    def sample_now(self) -> None:
        """Take an unconditional sample stamped at the clock's position.

        For end-of-run flushes — the tick schedule is unaffected.
        """
        self._snapshot(float(self.clock.now_us))

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-ready payload: config plus ``{series: [[t_us, value], ...]}``.

        Series are key-sorted and rows time-ordered, so same-seed runs
        compare equal as whole dicts.
        """
        return {
            "tick_us": self.tick_us,
            "capacity": self.capacity,
            "n_samples": self.n_samples,
            "series": {
                key: [[t, v] for t, v in self.series[key]]
                for key in sorted(self.series)
            },
        }

    def to_csv(self) -> str:
        """``t_us,series,value`` rows, time-major then series-sorted."""
        rows = [
            (t, key, v)
            for key in sorted(self.series)
            for t, v in self.series[key]
        ]
        rows.sort(key=lambda r: (r[0], r[1]))
        lines = ["t_us,series,value"]
        for t, key, v in rows:
            lines.append(f"{t:g},{key},{v:g}")
        return "\n".join(lines) + "\n"

    def chrome_counter_events(self) -> "list[dict]":
        """Chrome trace-event counter (``ph: "C"``) events, Perfetto-ready.

        Merge these into a :func:`~repro.runtime.export.chrome_trace`
        payload's ``traceEvents`` to see metrics tracks under the spans.
        """
        events: "list[dict]" = []
        for key in sorted(self.series):
            for t, v in self.series[key]:
                events.append(
                    {
                        "name": key,
                        "cat": "timeseries",
                        "ph": "C",
                        "ts": t,
                        "pid": 0,
                        "tid": 0,
                        "args": {"value": v},
                    }
                )
        events.sort(key=lambda ev: (ev["ts"], ev["name"]))
        return events
