"""AliasTable: O(1) weighted sampling correctness."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.utils.alias import AliasTable
from repro.utils.rng import make_rng


def test_single_element_always_drawn():
    table = AliasTable(np.array([3.0]))
    rng = make_rng(0)
    assert all(table.draw(rng) == 0 for _ in range(20))


def test_batch_matches_weights():
    weights = np.array([1.0, 2.0, 7.0])
    table = AliasTable(weights)
    rng = make_rng(1)
    draws = table.draw_batch(rng, 60_000)
    freq = np.bincount(draws, minlength=3) / draws.size
    np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.01)


def test_single_draw_matches_weights():
    weights = np.array([5.0, 1.0])
    table = AliasTable(weights)
    rng = make_rng(2)
    draws = np.array([table.draw(rng) for _ in range(20_000)])
    assert abs(np.mean(draws == 0) - 5.0 / 6.0) < 0.02


def test_zero_weight_entries_never_drawn():
    table = AliasTable(np.array([0.0, 1.0, 0.0, 1.0]))
    rng = make_rng(3)
    draws = table.draw_batch(rng, 5000)
    assert set(np.unique(draws)) <= {1, 3}


def test_uniform_weights():
    table = AliasTable(np.ones(10))
    rng = make_rng(4)
    draws = table.draw_batch(rng, 50_000)
    freq = np.bincount(draws, minlength=10) / draws.size
    np.testing.assert_allclose(freq, 0.1, atol=0.01)


def test_len():
    assert len(AliasTable(np.ones(7))) == 7


def test_rejects_empty():
    with pytest.raises(SamplingError):
        AliasTable(np.array([]))


def test_rejects_negative():
    with pytest.raises(SamplingError):
        AliasTable(np.array([1.0, -1.0]))


def test_rejects_all_zero():
    with pytest.raises(SamplingError):
        AliasTable(np.zeros(3))


def test_rejects_nan():
    with pytest.raises(SamplingError):
        AliasTable(np.array([1.0, np.nan]))


def test_rejects_2d():
    with pytest.raises(SamplingError):
        AliasTable(np.ones((2, 2)))


def test_rejects_negative_batch():
    table = AliasTable(np.ones(3))
    with pytest.raises(SamplingError):
        table.draw_batch(make_rng(0), -1)


def test_zero_batch_is_empty():
    table = AliasTable(np.ones(3))
    assert table.draw_batch(make_rng(0), 0).size == 0
