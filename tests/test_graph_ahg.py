"""AttributedHeterogeneousGraph: types, features, per-type adjacency."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.graph import AttributedHeterogeneousGraph


def test_type_lookup(tiny_ahg):
    assert tiny_ahg.vertex_type_code("user") == 0
    assert tiny_ahg.vertex_type_code("item") == 1
    assert tiny_ahg.edge_type_code("click") >= 0
    with pytest.raises(SchemaError):
        tiny_ahg.vertex_type_code("ghost")
    with pytest.raises(SchemaError):
        tiny_ahg.edge_type_code("ghost")


def test_vertices_of_type(tiny_ahg):
    users = tiny_ahg.vertices_of_type("user")
    items = tiny_ahg.vertices_of_type("item")
    assert users.size == 2
    assert items.size == 3
    assert set(users) & set(items) == set()


def test_out_neighbors_by_type(tiny_ahg):
    u0 = 0
    clicks = tiny_ahg.out_neighbors_by_type(u0, "click")
    buys = tiny_ahg.out_neighbors_by_type(u0, "buy")
    assert clicks.size == 1
    assert buys.size == 1
    all_nbrs = set(tiny_ahg.out_neighbors(u0).tolist())
    assert set(clicks.tolist()) | set(buys.tolist()) == all_nbrs


def test_edge_type_subgraph(tiny_ahg):
    sub = tiny_ahg.edge_type_subgraph("click")
    assert sub.n_edges == 3
    assert sub.n_vertices == tiny_ahg.n_vertices  # same id space


def test_feature_padding(tiny_ahg):
    # User features are 2-d padded to the 3-d item width.
    assert tiny_ahg.vertex_features.shape == (5, 3)
    assert tiny_ahg.vertex_feature(0)[2] == 0.0  # padded slot
    assert tiny_ahg.vertex_feature(2)[2] == 3.0


def test_describe(tiny_ahg):
    d = tiny_ahg.describe()
    assert d["n_vertices"] == 5
    assert d["vertices_by_type"]["user"] == 2
    assert d["edges_by_type"]["item_item"] == 1
    assert d["feature_dim"] == 3


def test_heterogeneity_requirement():
    src = np.array([0])
    dst = np.array([1])
    with pytest.raises(SchemaError):
        AttributedHeterogeneousGraph(
            2, src, dst,
            vertex_types=np.zeros(2, dtype=np.int64),
            edge_types=np.zeros(1, dtype=np.int64),
            vertex_type_names=["only"],
            edge_type_names=["only"],
        )


def test_schema_shape_validations():
    src = np.array([0])
    dst = np.array([1])
    kwargs = dict(
        vertex_types=np.zeros(2, dtype=np.int64),
        edge_types=np.zeros(1, dtype=np.int64),
        vertex_type_names=["a", "b"],
        edge_type_names=["e"],
    )
    with pytest.raises(SchemaError):
        AttributedHeterogeneousGraph(
            2, src, dst, **{**kwargs, "vertex_types": np.zeros(3, dtype=np.int64)}
        )
    with pytest.raises(SchemaError):
        AttributedHeterogeneousGraph(
            2, src, dst, **{**kwargs, "edge_types": np.zeros(2, dtype=np.int64)}
        )
    with pytest.raises(SchemaError):
        AttributedHeterogeneousGraph(
            2, src, dst, **{**kwargs, "vertex_types": np.array([0, 5])}
        )


def test_feature_row_count_checked():
    src = np.array([0])
    dst = np.array([1])
    with pytest.raises(SchemaError):
        AttributedHeterogeneousGraph(
            2, src, dst,
            vertex_types=np.zeros(2, dtype=np.int64),
            edge_types=np.zeros(1, dtype=np.int64),
            vertex_type_names=["a", "b"],
            edge_type_names=["e"],
            vertex_features=np.zeros((3, 4)),
        )


def test_no_features_returns_empty(tiny_graph):
    ahg = AttributedHeterogeneousGraph(
        2, np.array([0]), np.array([1]),
        vertex_types=np.array([0, 1]),
        edge_types=np.array([0]),
        vertex_type_names=["a", "b"],
        edge_type_names=["e"],
    )
    assert ahg.vertex_feature(0).size == 0


def test_undirected_ahg_type_adjacency():
    ahg = AttributedHeterogeneousGraph(
        3, np.array([0, 1]), np.array([1, 2]),
        vertex_types=np.array([0, 1, 0]),
        edge_types=np.array([0, 1]),
        vertex_type_names=["a", "b"],
        edge_type_names=["x", "y"],
        directed=False,
    )
    # Edge (0,1) is type x; mirrored adjacency keeps the type on both sides.
    assert ahg.out_neighbors_by_type(1, "x").tolist() == [0]
    assert ahg.out_neighbors_by_type(1, "y").tolist() == [2]
