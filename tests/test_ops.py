"""Operator layer: aggregators, combiners, registries, materialization."""

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import Tensor
from repro.ops import (
    AGGREGATOR_REGISTRY,
    COMBINER_REGISTRY,
    MaterializationCache,
    MinibatchExecutor,
    make_aggregator,
    make_combiner,
)
from repro.sampling import GraphProvider, UniformNeighborSampler
from repro.utils.rng import make_rng

rng = make_rng(21)


@pytest.mark.parametrize("name", ["mean", "sum", "maxpool", "lstm", "attention"])
def test_aggregator_shapes(name):
    agg = make_aggregator(name, 6, 4, rng)
    x = Tensor(make_rng(0).normal(size=(12, 6)))  # batch 3, fanout 4
    out = agg(x, 4)
    assert out.shape == (3, 4)


@pytest.mark.parametrize("name", ["mean", "sum", "maxpool", "attention"])
def test_aggregator_gradients(name):
    agg = make_aggregator(name, 3, 2, rng)
    x = Tensor(make_rng(1).normal(size=(4, 3)))
    check_gradients(lambda: (agg(x, 2) ** 2).sum(), agg.parameters(), atol=1e-4)


def test_lstm_aggregator_gradient():
    agg = make_aggregator("lstm", 3, 2, rng)
    x = Tensor(make_rng(2).normal(size=(4, 3)))
    check_gradients(lambda: (agg(x, 2) ** 2).sum(), agg.parameters(), atol=1e-4)


def test_mean_aggregator_is_permutation_invariant():
    agg = make_aggregator("mean", 3, 4, rng)
    x = make_rng(3).normal(size=(4, 3))
    out1 = agg(Tensor(x), 4).numpy()
    out2 = agg(Tensor(x[::-1].copy()), 4).numpy()
    np.testing.assert_allclose(out1, out2, atol=1e-12)


def test_maxpool_duplicate_neighbors_are_idempotent():
    # Max over {a, a} equals max over {a}: duplicated rows change nothing.
    agg = make_aggregator("maxpool", 2, 3, rng)
    row = np.array([[1.5, -0.5]])
    single = agg(Tensor(np.repeat(row, 2, axis=0)), 2).numpy()
    quad = agg(Tensor(np.repeat(row, 4, axis=0)), 4).numpy()
    np.testing.assert_allclose(single, quad, atol=1e-12)


def test_maxpool_permutation_invariant():
    agg = make_aggregator("maxpool", 2, 3, rng)
    x = make_rng(30).normal(size=(4, 2))
    out1 = agg(Tensor(x), 4).numpy()
    out2 = agg(Tensor(x[::-1].copy()), 4).numpy()
    np.testing.assert_allclose(out1, out2, atol=1e-12)


def test_fanout_divisibility_checked():
    agg = make_aggregator("lstm", 3, 2, rng)
    with pytest.raises(OperatorError):
        agg(Tensor(np.zeros((5, 3))), 2)


@pytest.mark.parametrize("name", ["sum", "concat", "gru"])
def test_combiner_shapes(name):
    comb = make_combiner(name, 4, 4, 4, rng)
    h_self = Tensor(make_rng(4).normal(size=(3, 4)))
    h_neigh = Tensor(make_rng(5).normal(size=(3, 4)))
    assert comb(h_self, h_neigh).shape == (3, 4)


def test_concat_combiner_mixed_dims():
    comb = make_combiner("concat", 4, 6, 5, rng)
    out = comb(Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 6))))
    assert out.shape == (2, 5)


def test_sum_combiner_dim_check():
    with pytest.raises(OperatorError):
        make_combiner("sum", 4, 6, 5, rng)


def test_gru_combiner_state_dim_check():
    with pytest.raises(OperatorError):
        make_combiner("gru", 4, 4, 6, rng)


def test_combiner_gradients():
    comb = make_combiner("concat", 3, 3, 3, rng)
    a = Tensor(make_rng(6).normal(size=(2, 3)))
    b = Tensor(make_rng(7).normal(size=(2, 3)))
    check_gradients(lambda: (comb(a, b) ** 2).sum(), comb.parameters(), atol=1e-4)


def test_registries_populated():
    assert {"mean", "sum", "maxpool", "lstm", "attention"} <= set(AGGREGATOR_REGISTRY)
    assert {"sum", "concat", "gru"} <= set(COMBINER_REGISTRY)


def test_unknown_plugin_names():
    with pytest.raises(OperatorError):
        make_aggregator("median", 2, 2, rng)
    with pytest.raises(OperatorError):
        make_combiner("xor", 2, 2, 2, rng)


# --------------------------------------------------------------------- #
# Materialization cache
# --------------------------------------------------------------------- #
def _executor(graph, dim=8, fanouts=(4, 4)):
    gen = make_rng(8)
    f = 6
    features = make_rng(9).normal(size=(graph.n_vertices, f))
    aggs = [
        make_aggregator("mean", f, dim, gen),
        make_aggregator("mean", dim, dim, gen),
    ]
    combs = [
        make_combiner("concat", f, dim, dim, gen),
        make_combiner("concat", dim, dim, dim, gen),
    ]
    provider = GraphProvider(graph)
    return MinibatchExecutor(
        features, provider, UniformNeighborSampler(provider), aggs, combs, list(fanouts)
    )


def test_cache_lookup_update_roundtrip():
    cache = MaterializationCache(2)
    ids = np.array([3, 5])
    vals = np.array([[1.0, 2.0], [3.0, 4.0]])
    cache.update(1, ids, vals)
    mask, missing = cache.lookup(1, np.array([3, 5, 7]))
    assert mask.tolist() == [True, True, False]
    assert missing == [7]
    np.testing.assert_array_equal(cache.get_rows(1, ids), vals)


def test_cache_get_missing_raises():
    cache = MaterializationCache(1)
    with pytest.raises(OperatorError):
        cache.get_rows(1, np.array([0]))


def test_cache_invalidate():
    cache = MaterializationCache(1)
    cache.update(1, np.array([0]), np.zeros((1, 2)))
    cache.invalidate()
    with pytest.raises(OperatorError):
        cache.get_rows(1, np.array([0]))


def test_cache_validations():
    with pytest.raises(OperatorError):
        MaterializationCache(0)
    cache = MaterializationCache(1)
    with pytest.raises(OperatorError):
        cache.update(1, np.array([0, 1]), np.zeros((1, 2)))


def test_cached_and_uncached_same_shape(small_powerlaw):
    ex = _executor(small_powerlaw)
    batch = make_rng(10).integers(0, small_powerlaw.n_vertices, 16)
    out_u = ex.embed_batch_uncached(batch, make_rng(11))
    cache = MaterializationCache(2)
    out_c = ex.embed_batch_cached(batch, make_rng(11), cache)
    assert out_u.shape == out_c.shape == (16, 8)
    assert np.isfinite(out_u).all() and np.isfinite(out_c).all()


def test_cache_hit_rate_rises_across_batches(small_powerlaw):
    ex = _executor(small_powerlaw)
    cache = MaterializationCache(2)
    gen = make_rng(12)
    ex.embed_batch_cached(gen.integers(0, 1000, 64), gen, cache)
    first_rate = cache.hit_rate
    for _ in range(4):
        ex.embed_batch_cached(gen.integers(0, 1000, 64), gen, cache)
    assert cache.hit_rate > first_rate


def test_warm_cache_returns_consistent_rows(small_powerlaw):
    ex = _executor(small_powerlaw)
    cache = MaterializationCache(2)
    gen = make_rng(13)
    batch = np.arange(32)
    first = ex.embed_batch_cached(batch, gen, cache)
    second = ex.embed_batch_cached(batch, gen, cache)
    # Fully warm: the second call is pure lookup, identical rows.
    np.testing.assert_array_equal(first, second)


def test_executor_validations(small_powerlaw):
    gen = make_rng(14)
    features = np.zeros((small_powerlaw.n_vertices, 4))
    provider = GraphProvider(small_powerlaw)
    sampler = UniformNeighborSampler(provider)
    agg = [make_aggregator("mean", 4, 4, gen)]
    comb = [make_combiner("concat", 4, 4, 4, gen)]
    with pytest.raises(OperatorError):
        MinibatchExecutor(features, provider, sampler, agg, comb, [2, 2])
    with pytest.raises(OperatorError):
        MinibatchExecutor(features, provider, sampler, agg, comb, [0])
    # A cache shallower than the executor's kmax is rejected.
    agg2 = agg + [make_aggregator("mean", 4, 4, gen)]
    comb2 = comb + [make_combiner("concat", 4, 4, 4, gen)]
    deep = MinibatchExecutor(features, provider, sampler, agg2, comb2, [2, 2])
    with pytest.raises(OperatorError):
        deep.embed_batch_cached(np.array([0]), gen, MaterializationCache(1))
