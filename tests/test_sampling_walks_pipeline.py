"""Random walks, metapath constraints, skip-gram pairs, Figure 5 pipeline."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import (
    DegreeBiasedNegativeSampler,
    GraphProvider,
    SamplingPipeline,
    UniformNeighborSampler,
    VertexTraverseSampler,
    metapath_walks,
    node2vec_walks,
    random_walks,
)
from repro.sampling.randomwalk import walk_context_pairs
from repro.utils.rng import make_rng


def _assert_walk_valid(graph, walk):
    for a, b in zip(walk[:-1], walk[1:]):
        assert graph.has_edge(int(a), int(b))


def test_random_walk_steps_are_edges(tiny_graph, rng):
    walks = random_walks(tiny_graph, np.array([0, 1, 2]), 5, rng)
    for walk in walks:
        _assert_walk_valid(tiny_graph, walk)


def test_walk_truncates_at_sink(tiny_graph, rng):
    walks = random_walks(tiny_graph, np.array([5]), 5, rng)  # 5 is a sink
    assert walks[0].tolist() == [5]


def test_weighted_walk_prefers_heavy(tiny_graph):
    rng = make_rng(0)
    # From 0: weights 1 (to 1) vs 2 (to 2).
    firsts = [
        random_walks(tiny_graph, np.array([0]), 1, rng, weighted=True)[0][1]
        for _ in range(3000)
    ]
    assert abs(np.mean(np.array(firsts) == 2) - 2 / 3) < 0.04


def test_walk_length_validation(tiny_graph, rng):
    with pytest.raises(SamplingError):
        random_walks(tiny_graph, np.array([0]), 0, rng)


def test_node2vec_low_p_returns(tiny_undirected):
    """p << 1 makes the walk bounce back to the previous vertex."""
    rng = make_rng(1)
    walks = node2vec_walks(tiny_undirected, np.array([0] * 300), 4, rng, p=0.01, q=1.0)
    returns = 0
    total = 0
    for walk in walks:
        for i in range(2, len(walk)):
            total += 1
            returns += int(walk[i] == walk[i - 2])
    assert returns / total > 0.6


def test_node2vec_high_p_explores(tiny_undirected):
    rng = make_rng(1)
    walks = node2vec_walks(tiny_undirected, np.array([0] * 300), 4, rng, p=100.0, q=1.0)
    returns = 0
    total = 0
    for walk in walks:
        for i in range(2, len(walk)):
            total += 1
            returns += int(walk[i] == walk[i - 2])
    assert returns / total < 0.2


def test_node2vec_validations(tiny_graph, rng):
    with pytest.raises(SamplingError):
        node2vec_walks(tiny_graph, np.array([0]), 3, rng, p=0.0)
    with pytest.raises(SamplingError):
        node2vec_walks(tiny_graph, np.array([0]), 0, rng)


def test_metapath_alternates_types(tiny_ahg, rng):
    starts = tiny_ahg.vertices_of_type("user")
    walks = metapath_walks(tiny_ahg, starts, ["user", "item"], 4, rng)
    for walk in walks:
        for i, v in enumerate(walk):
            expected = "user" if i % 2 == 0 else "item"
            actual = tiny_ahg.vertex_type_names[int(tiny_ahg.vertex_types[int(v)])]
            assert actual == expected


def test_metapath_start_type_checked(tiny_ahg, rng):
    item = int(tiny_ahg.vertices_of_type("item")[0])
    with pytest.raises(SamplingError):
        metapath_walks(tiny_ahg, np.array([item]), ["user", "item"], 3, rng)


def test_metapath_needs_two_types(tiny_ahg, rng):
    with pytest.raises(SamplingError):
        metapath_walks(tiny_ahg, np.array([0]), ["user"], 3, rng)


def test_context_pairs_window():
    walks = [np.array([10, 11, 12, 13])]
    centers, contexts = walk_context_pairs(walks, window=1)
    pairs = set(zip(centers.tolist(), contexts.tolist()))
    assert (10, 11) in pairs and (11, 10) in pairs and (11, 12) in pairs
    assert (10, 12) not in pairs  # outside window


def test_context_pairs_symmetric_count():
    walks = [np.array([0, 1, 2])]
    centers, contexts = walk_context_pairs(walks, window=2)
    assert centers.size == contexts.size == 6


def test_context_pairs_window_validation():
    with pytest.raises(SamplingError):
        walk_context_pairs([np.array([0, 1])], window=0)


def test_pipeline_figure5_shape(tiny_ahg, rng):
    pipe = SamplingPipeline(
        traverse=VertexTraverseSampler(tiny_ahg, vertex_type="user"),
        neighborhood=UniformNeighborSampler(GraphProvider(tiny_ahg)),
        negative=DegreeBiasedNegativeSampler(tiny_ahg),
        hop_nums=[2, 2],
        neg_num=3,
    )
    batch = pipe.sample(4, rng)
    assert batch.batch_size == 4
    assert batch.vertices.shape == (4,)
    assert [l.size for l in batch.context.layers] == [4, 8, 16]
    assert batch.negatives.shape == (4, 3)


def test_pipeline_with_edge_traverse(tiny_ahg, rng):
    from repro.sampling import EdgeTraverseSampler

    pipe = SamplingPipeline(
        traverse=EdgeTraverseSampler(tiny_ahg, edge_type="click"),
        neighborhood=UniformNeighborSampler(GraphProvider(tiny_ahg)),
        negative=DegreeBiasedNegativeSampler(tiny_ahg),
        hop_nums=[2],
        neg_num=2,
    )
    batch = pipe.sample(5, rng)
    assert batch.vertices.shape == (5,)


def test_pipeline_neg_num_validation(tiny_ahg):
    with pytest.raises(SamplingError):
        SamplingPipeline(
            traverse=VertexTraverseSampler(tiny_ahg),
            neighborhood=UniformNeighborSampler(GraphProvider(tiny_ahg)),
            negative=DegreeBiasedNegativeSampler(tiny_ahg),
            hop_nums=[2],
            neg_num=0,
        )
