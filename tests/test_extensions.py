"""Extension features (paper §7 future work + operational hardening):
edge/subgraph embeddings, early stopping, AutoGNN, worker failure handling
and streaming updates."""

import numpy as np
import pytest

from repro.algorithms.automl import AutoGNN, default_candidates
from repro.algorithms.framework import GNNFramework
from repro.errors import ReproError, StorageError, TrainingError
from repro.graph.dynamic import EdgeEvent
from repro.storage import ImportanceCachePolicy
from repro.storage.cluster import make_store
from repro.storage.costmodel import EV_FAILOVER_READ
from repro.tasks.edge_embeddings import (
    edge_embedding,
    neighborhood_subgraph_embedding,
    subgraph_embedding,
    whole_graph_embedding,
)


# --------------------------------------------------------------------- #
# Edge / subgraph embeddings
# --------------------------------------------------------------------- #
@pytest.fixture
def emb():
    return np.array([[1.0, 2.0], [3.0, 4.0], [0.0, 1.0]])


def test_edge_operators(emb):
    pairs = np.array([[0, 1]])
    np.testing.assert_allclose(edge_embedding(emb, pairs, "hadamard"), [[3.0, 8.0]])
    np.testing.assert_allclose(edge_embedding(emb, pairs, "average"), [[2.0, 3.0]])
    np.testing.assert_allclose(edge_embedding(emb, pairs, "l1"), [[2.0, 2.0]])
    np.testing.assert_allclose(edge_embedding(emb, pairs, "l2"), [[4.0, 4.0]])
    np.testing.assert_allclose(
        edge_embedding(emb, pairs, "concat"), [[1.0, 2.0, 3.0, 4.0]]
    )


def test_edge_operator_validation(emb):
    with pytest.raises(ReproError):
        edge_embedding(emb, np.array([[0, 1]]), "xor")
    with pytest.raises(ReproError):
        edge_embedding(emb, np.array([0, 1]))


def test_symmetric_operators_are_symmetric(emb):
    fwd = np.array([[0, 1]])
    rev = np.array([[1, 0]])
    for op in ("hadamard", "average", "l1", "l2"):
        np.testing.assert_allclose(
            edge_embedding(emb, fwd, op), edge_embedding(emb, rev, op)
        )
    assert not np.allclose(
        edge_embedding(emb, fwd, "concat"), edge_embedding(emb, rev, "concat")
    )


def test_subgraph_pooling(emb, tiny_graph):
    ids = np.array([0, 1])
    np.testing.assert_allclose(subgraph_embedding(emb, ids, "mean"), [2.0, 3.0])
    np.testing.assert_allclose(subgraph_embedding(emb, ids, "max"), [3.0, 4.0])
    weighted = subgraph_embedding(emb, ids, "degree", graph=tiny_graph)
    # Vertex 0 has out-degree 2, vertex 1 has 1: weights 3/5 and 2/5.
    np.testing.assert_allclose(weighted, [3 / 5 * 1 + 2 / 5 * 3, 3 / 5 * 2 + 2 / 5 * 4])


def test_subgraph_validations(emb, tiny_graph):
    with pytest.raises(ReproError):
        subgraph_embedding(emb, np.array([], dtype=np.int64))
    with pytest.raises(ReproError):
        subgraph_embedding(emb, np.array([0]), "degree")  # graph missing
    with pytest.raises(ReproError):
        subgraph_embedding(emb, np.array([0]), "sum")


def test_neighborhood_subgraph(tiny_graph):
    rng = np.random.default_rng(0)
    emb6 = rng.normal(size=(6, 3))
    zero_hop = neighborhood_subgraph_embedding(emb6, tiny_graph, center=0, hops=0)
    np.testing.assert_allclose(zero_hop, emb6[0])
    one_hop = neighborhood_subgraph_embedding(emb6, tiny_graph, center=0, hops=1)
    np.testing.assert_allclose(one_hop, emb6[[0, 1, 2]].mean(axis=0))
    with pytest.raises(ReproError):
        neighborhood_subgraph_embedding(emb6, tiny_graph, center=0, hops=-1)


def test_whole_graph_embedding(tiny_graph):
    emb6 = np.random.default_rng(1).normal(size=(6, 3))
    vec = whole_graph_embedding(emb6, tiny_graph)
    assert vec.shape == (3,)


# --------------------------------------------------------------------- #
# Early stopping
# --------------------------------------------------------------------- #
def test_early_stop_triggers(small_amazon):
    model = GNNFramework(
        dim=12, kmax=1, fanout=4, epochs=30, max_steps_per_epoch=3,
        early_stop_patience=2, early_stop_min_delta=10.0,  # impossible bar
        seed=0,
    )
    model.fit(small_amazon)
    assert model.stopped_early
    assert len(model.loss_history) < 30


def test_early_stop_disabled_by_default(small_amazon):
    model = GNNFramework(
        dim=12, kmax=1, fanout=4, epochs=3, max_steps_per_epoch=3, seed=0
    )
    model.fit(small_amazon)
    assert not model.stopped_early
    assert len(model.loss_history) == 3


# --------------------------------------------------------------------- #
# AutoGNN
# --------------------------------------------------------------------- #
def test_autognn_selects_and_fits(small_amazon):
    auto = AutoGNN(
        candidates=default_candidates()[:2],
        validation_fraction=0.2,
        seed=0,
    )
    auto.fit(small_amazon)
    assert auto.best_candidate in ("deepwalk", "sage-mean-f4")
    assert auto.embeddings().shape[0] == small_amazon.n_vertices
    assert all(r.score > 50.0 for r in auto.results if r.fitted)


def test_autognn_skips_broken_candidates(small_amazon):
    from repro.algorithms.metapath2vec import Metapath2Vec

    auto = AutoGNN(
        candidates=[
            # Metapath2Vec with an unknown start type fails with
            # TrainingError — AutoGNN must survive it.
            ("broken", lambda: Metapath2Vec(metapath=["user", "item"])),
            ("deepwalk", default_candidates()[0][1]),
        ],
        seed=0,
    )
    auto.fit(small_amazon)
    assert auto.best_candidate == "deepwalk"


def test_autognn_validations(small_amazon):
    with pytest.raises(TrainingError):
        AutoGNN(metric="accuracy")
    with pytest.raises(TrainingError):
        AutoGNN(candidates=[]).fit(small_amazon)
    with pytest.raises(TrainingError):
        AutoGNN().best_candidate


# --------------------------------------------------------------------- #
# Worker failure handling
# --------------------------------------------------------------------- #
def test_failed_owner_without_replica_raises(small_powerlaw):
    store = make_store(small_powerlaw, 4, seed=0)
    v = 0
    owner = store.owner(v)
    store.fail_worker(owner)
    other = (owner + 1) % 4
    with pytest.raises(StorageError):
        store.neighbors(v, from_part=other)


def test_failed_owner_served_from_cache_replica(small_powerlaw):
    store = make_store(
        small_powerlaw, 4,
        cache_policy=ImportanceCachePolicy(), cache_budget_fraction=0.5, seed=0,
    )
    from repro.storage.importance import importance_scores

    hot = int(np.argsort(importance_scores(small_powerlaw, 2))[::-1][0])
    owner = store.owner(hot)
    store.fail_worker(owner)
    issuer = (owner + 1) % 4
    # The issuer's own cache may serve it; if so, drop that copy to force
    # the failover path through a third server.
    store.servers[issuer].neighbor_cache.invalidate(hot)
    got = store.neighbors(hot, from_part=issuer)
    np.testing.assert_array_equal(
        np.sort(got), np.sort(small_powerlaw.out_neighbors(hot))
    )
    assert store.ledger.count(EV_FAILOVER_READ) == 1


def test_failed_issuer_rejected(small_powerlaw):
    store = make_store(small_powerlaw, 2, seed=0)
    store.fail_worker(0)
    with pytest.raises(StorageError):
        store.neighbors(0, from_part=0)


def test_restore_worker(small_powerlaw):
    store = make_store(small_powerlaw, 2, seed=0)
    v = 0
    owner = store.owner(v)
    store.fail_worker(owner)
    assert owner in store.failed_workers
    store.restore_worker(owner)
    assert owner not in store.failed_workers
    got = store.neighbors(v, from_part=(owner + 1) % 2)
    np.testing.assert_array_equal(
        np.sort(got), np.sort(small_powerlaw.out_neighbors(v))
    )


def test_fail_unknown_worker(small_powerlaw):
    store = make_store(small_powerlaw, 2, seed=0)
    with pytest.raises(StorageError):
        store.fail_worker(7)


# --------------------------------------------------------------------- #
# Streaming updates
# --------------------------------------------------------------------- #
def test_apply_edge_addition_visible(small_powerlaw):
    store = make_store(small_powerlaw, 2, seed=0)
    u = 0
    before = small_powerlaw.out_neighbors(u)
    new_dst = int((before.max() + 1) % small_powerlaw.n_vertices)
    while new_dst in set(int(x) for x in before):
        new_dst = (new_dst + 1) % small_powerlaw.n_vertices
    applied = store.apply_edge_events([EdgeEvent(timestamp=0, src=u, dst=new_dst)])
    assert applied == 1
    got = store.neighbors(u, from_part=store.owner(u))
    assert new_dst in set(int(x) for x in got)


def test_apply_edge_removal(small_powerlaw):
    store = make_store(small_powerlaw, 2, seed=0)
    u = int(np.argmax(small_powerlaw.out_degrees()))
    victim = int(small_powerlaw.out_neighbors(u)[0])
    applied = store.apply_edge_events(
        [EdgeEvent(timestamp=0, src=u, dst=victim, kind="remove")]
    )
    assert applied == 1
    got = store.neighbors(u, from_part=store.owner(u))
    # One copy removed (parallel arcs may retain others).
    assert list(got).count(victim) == list(
        small_powerlaw.out_neighbors(u)
    ).count(victim) - 1


def test_remove_absent_edge_not_counted(small_powerlaw):
    store = make_store(small_powerlaw, 2, seed=0)
    u = 0
    absent = int(small_powerlaw.out_neighbors(u).max() + 1) % small_powerlaw.n_vertices
    while small_powerlaw.has_edge(u, absent):
        absent = (absent + 1) % small_powerlaw.n_vertices
    applied = store.apply_edge_events(
        [EdgeEvent(timestamp=0, src=u, dst=absent, kind="remove")]
    )
    assert applied == 0


def test_update_invalidates_caches(small_powerlaw):
    store = make_store(
        small_powerlaw, 2,
        cache_policy=ImportanceCachePolicy(), cache_budget_fraction=0.5, seed=0,
    )
    from repro.storage.importance import importance_scores

    hot = int(np.argsort(importance_scores(small_powerlaw, 2))[::-1][0])
    other = (store.owner(hot) + 1) % 2
    before = store.neighbors(hot, from_part=other)  # served from cache
    new_dst = 0
    while small_powerlaw.has_edge(hot, new_dst) or new_dst == hot:
        new_dst += 1
    store.apply_edge_events([EdgeEvent(timestamp=0, src=hot, dst=new_dst)])
    after = store.neighbors(hot, from_part=other)
    assert new_dst in set(int(x) for x in after)
    assert after.size == before.size + 1


def test_update_to_failed_owner_rejected(small_powerlaw):
    store = make_store(small_powerlaw, 2, seed=0)
    u = 0
    store.fail_worker(store.owner(u))
    with pytest.raises(StorageError):
        store.apply_edge_events([EdgeEvent(timestamp=0, src=u, dst=1)])


def test_lru_delete():
    from repro.utils.lru import LRUCache

    cache = LRUCache(2)
    cache.put("a", 1)
    assert cache.delete("a")
    assert not cache.delete("a")
    assert "a" not in cache
