"""ReplicaRegistry and HealthTracker units, plus the routing regressions.

Covers the registry's two-way index (register/deregister/drop_part and the
cache bindings that maintain it), the suspect/recover/probe state machine,
and two regressions the unified read path fixed:

* failover probes must not count as cache lookups (they used to inflate
  ``misses`` on every scanned server and corrupt ``cache_hit_rate()``);
* ``apply_edge_events`` must re-pin fresh adjacency on every server that
  held the vertex pinned (it used to drop the entry and never re-pin,
  silently shrinking the hot vertex's failover coverage).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RuntimeConfigError, StorageError
from repro.graph.dynamic import EdgeEvent
from repro.runtime import RpcRuntime
from repro.runtime.health import STATE_HEALTHY, HealthTracker
from repro.runtime.metrics import MetricsRegistry
from repro.storage.cache import ImportanceCachePolicy, NeighborCache
from repro.storage.cluster import make_store
from repro.storage.costmodel import (
    EV_FAILOVER_READ,
    EV_REPLICA_REFRESH,
    EV_SUSPECT_ROUTE,
)
from repro.storage.replicas import ReplicaRegistry


# --------------------------------------------------------------------- #
# ReplicaRegistry
# --------------------------------------------------------------------- #
def test_registry_register_and_holders():
    reg = ReplicaRegistry(3)
    reg.register(7, 0)
    reg.register(7, 2)
    reg.register(7, 2)  # idempotent
    assert reg.holders(7) == (0, 2)
    assert reg.replica_count(7) == 2
    assert reg.held_by(2) == (7,)
    assert 7 in reg and 8 not in reg
    assert reg.n_tracked == 1


def test_registry_deregister_cleans_up():
    reg = ReplicaRegistry(2)
    reg.register(1, 0)
    reg.deregister(1, 1)  # never held there: no-op
    assert reg.holders(1) == (0,)
    reg.deregister(1, 0)
    assert reg.holders(1) == ()
    assert 1 not in reg
    assert reg.n_tracked == 0


def test_registry_drop_part():
    reg = ReplicaRegistry(2)
    for v in (1, 2, 3):
        reg.register(v, 0)
    reg.register(2, 1)
    reg.drop_part(0)
    assert reg.held_by(0) == ()
    assert reg.holders(2) == (1,)
    assert reg.holders(1) == () and reg.holders(3) == ()
    assert reg.n_tracked == 1


def test_registry_validates_parts():
    with pytest.raises(StorageError):
        ReplicaRegistry(0)
    reg = ReplicaRegistry(2)
    for bad in (-1, 2):
        with pytest.raises(StorageError):
            reg.register(0, bad)
        with pytest.raises(StorageError):
            reg.deregister(0, bad)


def test_cache_bindings_maintain_registry(small_powerlaw):
    """Pins, demand fills, evictions and invalidations all sync the index."""
    reg = ReplicaRegistry(1)
    cache = NeighborCache(2)
    cache.bind(reg, 0)
    cache.pin(5, np.array([1, 2]))
    assert reg.holders(5) == (0,)
    cache.admit(6, np.array([3]))
    cache.admit(7, np.array([4]))
    assert reg.holders(6) == (0,) and reg.holders(7) == (0,)
    cache.admit(8, np.array([5]))  # evicts 6 (LRU capacity 2)
    assert reg.holders(6) == ()
    assert reg.holders(8) == (0,)
    cache.invalidate(5)
    assert reg.holders(5) == ()
    cache.invalidate(99)  # never cached: registry untouched, no error
    assert reg.n_tracked == 2


def test_store_installs_caches_into_registry(small_powerlaw):
    store = make_store(
        small_powerlaw,
        3,
        cache_policy=ImportanceCachePolicy(),
        cache_budget_fraction=0.05,
        seed=0,
    )
    pinned = set(store.servers[0].neighbor_cache._pinned)
    assert pinned
    for v in pinned:
        assert store.replicas.holders(v) == (0, 1, 2)
    # Swapping one server's cache drops its old registrations.
    store.servers[1].neighbor_cache = NeighborCache(0)
    for v in pinned:
        assert store.replicas.holders(v) == (0, 2)


# --------------------------------------------------------------------- #
# HealthTracker
# --------------------------------------------------------------------- #
def test_health_suspects_after_consecutive_failures():
    h = HealthTracker(2, suspect_after=3)
    h.record_failure(1)
    h.record_failure(1)
    assert h.state(1) == STATE_HEALTHY
    h.record_failure(1)
    assert h.is_suspect(1)
    assert h.suspect_parts == frozenset({1})
    assert h.metrics.counter("health.suspects").value == 1
    assert h.metrics.gauge("health.suspect_parts").value == 1


def test_health_success_resets_failure_streak():
    h = HealthTracker(1, suspect_after=3)
    h.record_failure(0)
    h.record_failure(0)
    h.record_success(0)  # interleaved success: streak back to zero
    h.record_failure(0)
    h.record_failure(0)
    assert h.state(0) == STATE_HEALTHY


def test_health_recovers_after_consecutive_successes():
    h = HealthTracker(1, suspect_after=2, recover_after=2)
    h.record_failure(0)
    h.record_failure(0)
    assert h.is_suspect(0)
    h.record_success(0)
    h.record_failure(0)  # breaks the ok streak while suspect
    h.record_success(0)
    assert h.is_suspect(0)
    h.record_success(0)
    assert h.state(0) == STATE_HEALTHY
    assert h.metrics.counter("health.recoveries").value == 1
    assert h.metrics.gauge("health.suspect_parts").value == 0


def test_health_probe_cadence():
    h = HealthTracker(1, probe_every=4)
    decisions = [h.should_probe(0) for _ in range(8)]
    assert decisions == [False, False, False, True] * 2
    assert h.metrics.counter("health.probes").value == 2


def test_health_reset_and_validation():
    with pytest.raises(RuntimeConfigError):
        HealthTracker(0)
    with pytest.raises(RuntimeConfigError):
        HealthTracker(1, suspect_after=0)
    with pytest.raises(RuntimeConfigError):
        HealthTracker(1, recover_after=0)
    with pytest.raises(RuntimeConfigError):
        HealthTracker(1, probe_every=0)
    h = HealthTracker(2, suspect_after=1)
    with pytest.raises(RuntimeConfigError):
        h.record_failure(5)
    h.record_failure(0)
    assert h.is_suspect(0)
    h.reset()
    assert h.suspect_parts == frozenset()


def test_runtime_feeds_health_tracker(small_powerlaw):
    """Delivery outcomes flow into the shared tracker automatically."""
    store = make_store(small_powerlaw, 2, seed=0)
    runtime = RpcRuntime(store)
    store.attach_runtime(runtime)
    v = next(u for u in range(1000) if store.owner(u) == 1)
    store.neighbors(v, from_part=0)
    assert runtime.health.state(1) == STATE_HEALTHY
    assert runtime.health.metrics is runtime.metrics


# --------------------------------------------------------------------- #
# Suspect routing through the store
# --------------------------------------------------------------------- #
def test_suspect_owner_routes_to_replica(small_powerlaw):
    store = make_store(small_powerlaw, 3, seed=0)
    runtime = RpcRuntime(store)
    store.attach_runtime(runtime)
    v = next(
        u for u in range(1000)
        if store.owner(u) == 2 and small_powerlaw.out_neighbors(u).size
    )
    cache = NeighborCache(2)
    cache.pin(v, small_powerlaw.out_neighbors(v))
    store.servers[1].neighbor_cache = cache
    for _ in range(3):
        runtime.health.record_failure(2)
    assert runtime.health.is_suspect(2)
    row = store.neighbors(v, from_part=0)
    np.testing.assert_array_equal(row, small_powerlaw.out_neighbors(v))
    assert store.ledger.count(EV_SUSPECT_ROUTE) == 1
    assert runtime.metrics.counter("health.suspect_routes").value == 1
    # The suspect server was never contacted: the read cost no RPC events.
    assert runtime.metrics.counter("rpc.requests").value == 0


def test_suspect_without_replica_goes_through(small_powerlaw):
    store = make_store(small_powerlaw, 3, seed=0)
    runtime = RpcRuntime(store)
    store.attach_runtime(runtime)
    v = next(u for u in range(1000) if store.owner(u) == 2)
    for _ in range(3):
        runtime.health.record_failure(2)
    row = store.neighbors(v, from_part=0)
    np.testing.assert_array_equal(row, small_powerlaw.out_neighbors(v))
    assert store.ledger.count(EV_SUSPECT_ROUTE) == 0
    assert runtime.metrics.counter("rpc.requests").value == 1


def test_suspect_recovers_through_probes(small_powerlaw):
    """Probed reads reach the suspect; fault-free deliveries heal it."""
    store = make_store(small_powerlaw, 2, seed=0)
    runtime = RpcRuntime(
        store, health=HealthTracker(2, recover_after=2, probe_every=1)
    )
    store.attach_runtime(runtime)
    vs = [
        u for u in range(1000)
        if store.owner(u) == 1 and small_powerlaw.out_neighbors(u).size
    ][:2]
    for _ in range(3):
        runtime.health.record_failure(1)
    assert runtime.health.is_suspect(1)
    for v in vs:  # probe_every=1: every read probes straight through
        store.neighbors(v, from_part=0)
    assert runtime.health.state(1) == STATE_HEALTHY


# --------------------------------------------------------------------- #
# Regression: failover must not count as cache lookups (satellite 3)
# --------------------------------------------------------------------- #
def test_failover_does_not_touch_cache_counters(small_powerlaw):
    store = make_store(small_powerlaw, 3, seed=0)
    v = next(
        u for u in range(1000)
        if store.owner(u) == 2 and small_powerlaw.out_neighbors(u).size
    )
    cache = NeighborCache(2)
    cache.pin(v, small_powerlaw.out_neighbors(v))
    store.servers[1].neighbor_cache = cache
    store.fail_worker(2)
    # The issuer's own (legitimate) lookup misses; the replica holder must
    # see no traffic on its counters at all.
    issuer_misses = store.servers[0].neighbor_cache.misses
    store.neighbors(v, from_part=0)
    assert store.ledger.count(EV_FAILOVER_READ) == 1
    assert store.servers[1].neighbor_cache.hits == 0
    assert store.servers[1].neighbor_cache.misses == 0
    assert store.servers[0].neighbor_cache.misses == issuer_misses + 1
    assert store.cache_hit_rate() == 0.0  # one honest issuer miss, no hits


def test_replica_peek_skips_failed_holders(small_powerlaw):
    store = make_store(small_powerlaw, 3, seed=0)
    v = next(
        u for u in range(1000)
        if store.owner(u) == 2 and small_powerlaw.out_neighbors(u).size
    )
    cache = NeighborCache(2)
    cache.pin(v, small_powerlaw.out_neighbors(v))
    store.servers[1].neighbor_cache = cache
    store.fail_worker(2)
    store.fail_worker(1)  # the only replica holder is down too
    with pytest.raises(StorageError):
        store.neighbors(v, from_part=0)


# --------------------------------------------------------------------- #
# Regression: updates re-pin fresh adjacency on all holders (satellite 4)
# --------------------------------------------------------------------- #
def _importance_store(graph):
    return make_store(
        graph,
        3,
        cache_policy=ImportanceCachePolicy(),
        cache_budget_fraction=0.05,
        seed=0,
    )


def test_update_repins_fresh_adjacency_everywhere(small_powerlaw):
    store = _importance_store(small_powerlaw)
    v = next(iter(store.servers[0].neighbor_cache._pinned))
    assert store.replicas.holders(v) == (0, 1, 2)
    owner = store.owner(v)
    fresh_dst = next(
        u for u in range(1000) if u not in small_powerlaw.out_neighbors(v)
    )
    applied = store.apply_edge_events([EdgeEvent(timestamp=0, src=v, dst=fresh_dst)])
    assert applied == 1
    expected = store.servers[owner].local_neighbors(v)
    assert fresh_dst in expected
    for server in store.servers:
        assert server.neighbor_cache.is_pinned(v)
        np.testing.assert_array_equal(server.neighbor_cache.peek(v), expected)
    # The replica set survived the update wholesale.
    assert store.replicas.holders(v) == (0, 1, 2)
    # Refresh pushes are charged for every non-owner holder.
    assert store.ledger.count(EV_REPLICA_REFRESH) == 2


def test_update_keeps_failover_coverage(small_powerlaw):
    store = _importance_store(small_powerlaw)
    v = next(iter(store.servers[0].neighbor_cache._pinned))
    owner = store.owner(v)
    fresh_dst = next(
        u for u in range(1000) if u not in small_powerlaw.out_neighbors(v)
    )
    store.apply_edge_events([EdgeEvent(timestamp=0, src=v, dst=fresh_dst)])
    expected = store.servers[owner].local_neighbors(v)
    store.fail_worker(owner)
    issuer = next(p for p in range(3) if p != owner)
    got = store.neighbors(v, from_part=issuer)
    np.testing.assert_array_equal(got, expected)
    assert fresh_dst in got


def test_update_does_not_repin_lru_copies(small_powerlaw):
    """Demand-filled copies just drop; they re-fill on the next access."""
    from repro.storage.cache import LRUCachePolicy

    store = make_store(
        small_powerlaw,
        2,
        cache_policy=LRUCachePolicy(),
        cache_budget_fraction=0.05,
        seed=0,
    )
    v = next(
        u for u in range(1000)
        if store.owner(u) == 1 and small_powerlaw.out_neighbors(u).size
    )
    store.neighbors(v, from_part=0)  # demand-fills the issuer's LRU
    assert store.replicas.holders(v) == (0,)
    store.apply_edge_events([EdgeEvent(timestamp=0, src=v, dst=int(v))])
    assert store.replicas.holders(v) == ()
    assert not store.servers[0].neighbor_cache.is_pinned(v)
    assert store.ledger.count(EV_REPLICA_REFRESH) == 0


def test_metrics_registry_shared_between_runtime_and_health():
    metrics = MetricsRegistry()
    h = HealthTracker(1, suspect_after=1, metrics=metrics)
    h.record_failure(0)
    assert metrics.counter("health.suspects").value == 1
