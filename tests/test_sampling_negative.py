"""NEGATIVE samplers: shapes, bias, strict rejection, type-awareness."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import (
    DegreeBiasedNegativeSampler,
    TypeAwareNegativeSampler,
    UniformNegativeSampler,
)
from repro.utils.rng import make_rng


def test_shape(tiny_graph, rng):
    sampler = UniformNegativeSampler(tiny_graph)
    out = sampler.sample(np.array([0, 1]), 4, rng)
    assert out.shape == (2, 4)


def test_uniform_covers_pool(tiny_graph):
    sampler = UniformNegativeSampler(tiny_graph)
    rng = make_rng(0)
    out = sampler.sample(np.zeros(2000, dtype=np.int64), 1, rng)
    assert set(np.unique(out)) == set(range(6))


def test_restricted_pool(tiny_graph, rng):
    sampler = UniformNegativeSampler(tiny_graph, vertices=np.array([3, 4]))
    out = sampler.sample(np.array([0]), 50, rng)
    assert set(np.unique(out)) <= {3, 4}


def test_degree_bias(small_powerlaw):
    sampler = DegreeBiasedNegativeSampler(small_powerlaw, power=1.0)
    rng = make_rng(1)
    out = sampler.sample(np.zeros(5000, dtype=np.int64), 2, rng).reshape(-1)
    degrees = small_powerlaw.out_degrees()
    assert degrees[out].mean() > degrees.mean() * 1.3


def test_power_zero_is_uniformish(small_powerlaw):
    sampler = DegreeBiasedNegativeSampler(small_powerlaw, power=0.0)
    rng = make_rng(2)
    out = sampler.sample(np.zeros(20_000, dtype=np.int64), 1, rng).reshape(-1)
    degrees = small_powerlaw.out_degrees()
    assert abs(degrees[out].mean() - degrees.mean()) < degrees.mean() * 0.1


def test_negative_power_rejected(tiny_graph):
    with pytest.raises(SamplingError):
        DegreeBiasedNegativeSampler(tiny_graph, power=-1.0)


def test_strict_avoids_true_neighbors(tiny_graph):
    sampler = UniformNegativeSampler(tiny_graph, strict=True)
    rng = make_rng(3)
    anchors = np.array([0] * 100)
    out = sampler.sample(anchors, 2, rng)
    forbidden = set(tiny_graph.out_neighbors(0).tolist()) | {0}
    collision_rate = np.mean([int(v) in forbidden for v in out.reshape(-1)])
    assert collision_rate < 0.05  # bounded retries allow rare leftovers


def test_non_strict_allows_collisions(tiny_graph):
    sampler = UniformNegativeSampler(tiny_graph, strict=False)
    rng = make_rng(4)
    out = sampler.sample(np.array([0] * 500), 2, rng)
    forbidden = set(tiny_graph.out_neighbors(0).tolist())
    assert any(int(v) in forbidden for v in out.reshape(-1))


def test_type_aware_respects_requested_type(tiny_ahg, rng):
    sampler = TypeAwareNegativeSampler(tiny_ahg)
    out = sampler.sample(np.array([0, 1]), 5, rng, vertex_type="item")
    items = set(tiny_ahg.vertices_of_type("item").tolist())
    assert set(out.reshape(-1).tolist()) <= items


def test_type_aware_defaults_to_anchor_type(tiny_ahg, rng):
    sampler = TypeAwareNegativeSampler(tiny_ahg)
    users = tiny_ahg.vertices_of_type("user")
    out = sampler.sample(users, 3, rng)
    assert set(out.reshape(-1).tolist()) <= set(users.tolist())


def test_type_aware_unknown_type(tiny_ahg, rng):
    sampler = TypeAwareNegativeSampler(tiny_ahg)
    with pytest.raises(SamplingError):
        sampler.sample(np.array([0]), 2, rng, vertex_type="brand")


def test_type_aware_needs_ahg(tiny_graph):
    with pytest.raises(SamplingError):
        TypeAwareNegativeSampler(tiny_graph)


def test_neg_num_validation(tiny_graph, rng):
    sampler = UniformNegativeSampler(tiny_graph)
    with pytest.raises(SamplingError):
        sampler.sample(np.array([0]), 0, rng)
