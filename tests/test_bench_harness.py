"""Benchmark harness: report rendering and typed evaluation coverage."""

import numpy as np
import pytest

from repro.bench import ExperimentReport
from repro.data import train_test_split_edges
from repro.errors import ReproError
from repro.tasks import evaluate_link_prediction_typed


def test_report_renders_measured_and_paper():
    report = ExperimentReport("tX", "demo")
    report.add("row1", {"metric": 1.5}, paper={"metric": 2.0})
    report.add("row2", {"metric": 3.0})
    out = report.render()
    assert "[tX] demo" in out
    assert "metric (paper)" in out
    assert "1.5" in out and "2" in out and "3" in out


def test_report_handles_heterogeneous_columns():
    report = ExperimentReport("tY", "demo")
    report.add("a", {"x": 1})
    report.add("b", {"y": 2})
    out = report.render()
    assert "x" in out and "y" in out


def test_report_notes_rendered():
    report = ExperimentReport("tZ", "demo")
    report.add("a", {"x": 1})
    report.note("a caveat")
    assert "note: a caveat" in report.render()


def test_report_print(capsys):
    report = ExperimentReport("tP", "demo")
    report.add("a", {"x": 1})
    report.print()
    assert "[tP] demo" in capsys.readouterr().out


def test_typed_evaluation_uses_per_type_embeddings(small_amazon):
    split = train_test_split_edges(small_amazon, 0.2, seed=0)
    n = small_amazon.n_vertices
    rng = np.random.default_rng(0)
    # Type 0 gets a perfect adjacency embedding; type 1 gets noise: the
    # averaged metric must land strictly between the two extremes.
    perfect = np.zeros((n, n))
    src, dst, _ = small_amazon.edge_array()
    perfect[src, dst] = 1.0
    perfect[dst, src] = 1.0
    noise = rng.normal(size=(n, n))
    result = evaluate_link_prediction_typed({0: perfect, 1: noise}, split)
    assert 55.0 < result.roc_auc < 95.0


def test_typed_evaluation_skips_missing_types(small_amazon):
    split = train_test_split_edges(small_amazon, 0.2, seed=0)
    rng = np.random.default_rng(1)
    emb = rng.normal(size=(small_amazon.n_vertices, 4))
    only_type0 = evaluate_link_prediction_typed({0: emb}, split)
    assert 0.0 <= only_type0.roc_auc <= 100.0
    with pytest.raises(ReproError):
        evaluate_link_prediction_typed({99: emb}, split)


def test_mixture_context_embeddings_shapes(small_amazon):
    from repro.algorithms import MixtureGNN

    model = MixtureGNN(dim=12, n_senses=2, epochs=1, walks_per_vertex=2)
    model.fit(small_amazon)
    assert model.context_embeddings().shape == (small_amazon.n_vertices, 12)
    assert model.mixture_embeddings().shape == (small_amazon.n_vertices, 12)
    # The normalized embedding is the unit version of the mixture table.
    mix = model.mixture_embeddings()
    norm = mix / np.maximum(np.linalg.norm(mix, axis=1, keepdims=True), 1e-12)
    np.testing.assert_allclose(model.embeddings(), norm, atol=1e-9)


def test_mve_type_embeddings(small_amazon):
    from repro.algorithms import MVE
    from repro.errors import TrainingError

    model = MVE(dim=12, epochs=1, walks_per_vertex=2)
    model.fit(small_amazon)
    assert model.type_embeddings("co_view").shape == (small_amazon.n_vertices, 12)
    with pytest.raises(TrainingError):
        model.type_embeddings("returns")
