"""Failure-semantics parity: scalar and batch reads behave identically.

Every read entry point resolves through the same unified path, so for any
{read kind} x {failure mode} the scalar wrappers (``neighbors`` /
``vertex_attr``) and the batch entry points (``get_neighbors_batch`` /
``get_attrs_batch``) must return identical data, emit identical ledger
events (modulo per-destination RPC coalescing for multi-vertex batches)
and raise identical error types. The matrix here fixes the seed and runs
both paths against identically built stores for each mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.fault_matrix import FaultMatrixCell, run_fault_matrix
from repro.data import powerlaw_graph
from repro.errors import (
    ReadUnavailableError,
    RetryExhaustedError,
    StorageError,
)
from repro.graph.graph import Graph
from repro.runtime import FaultPlan, RpcRuntime
from repro.storage.cache import NeighborCache
from repro.storage.cluster import DistributedGraphStore, make_store
from repro.storage.costmodel import (
    EV_DEGRADED_READ,
    EV_FAILOVER_READ,
    EV_REMOTE_RPC,
)
from repro.utils.rng import make_rng

N_WORKERS = 3
SEED = 11


@pytest.fixture(scope="module")
def fm_graph() -> Graph:
    return powerlaw_graph(300, alpha=2.2, max_degree=40, seed=SEED)


def _fresh_store(
    graph: Graph, faults: "FaultPlan | None" = None, with_attrs: bool = True
) -> DistributedGraphStore:
    store = make_store(graph, N_WORKERS, seed=0)
    if faults is not None:
        store.attach_runtime(RpcRuntime(store, faults=faults))
    if with_attrs:
        feats = make_rng(0).normal(size=(graph.n_vertices, 4))
        for v in range(graph.n_vertices):
            store.servers[store.owner(v)].ingest_vertex_attr(v, feats[v])
    return store


def _events(store: DistributedGraphStore) -> "dict[str, int]":
    return {k: v for k, v in store.ledger.counts.items() if v}


def _remote_vertices(store: DistributedGraphStore, from_part: int, n: int):
    """First ``n`` vertices not owned by ``from_part`` (deterministic)."""
    out = [
        v
        for v in range(store.graph.n_vertices)
        if store.owner(v) != from_part
    ]
    return out[:n]


def _pin_replica(store: DistributedGraphStore, part: int, vertex: int):
    """Give server ``part`` a one-entry cache replica of ``vertex``."""
    cache = NeighborCache(4)
    cache.pin(vertex, store.graph.out_neighbors(vertex))
    store.servers[part].neighbor_cache = cache  # setter rebinds the registry


# --------------------------------------------------------------------- #
# Healthy mode: scalar == batch, data and ledger
# --------------------------------------------------------------------- #
def test_healthy_neighbors_scalar_equals_batch(fm_graph):
    scalar, batch = _fresh_store(fm_graph), _fresh_store(fm_graph)
    vertices = list(range(40))
    rows = batch.get_neighbors_batch(vertices, from_part=0)
    for v in vertices:
        np.testing.assert_array_equal(
            rows[v], scalar.neighbors(v, from_part=0)
        )
    ev_s, ev_b = _events(scalar), _events(batch)
    # Identical events except RPC coalescing: the batch path charges one
    # remote_rpc per destination server, the scalar path one per vertex.
    assert ev_b.pop(EV_REMOTE_RPC) <= N_WORKERS - 1
    assert ev_s.pop(EV_REMOTE_RPC) > N_WORKERS - 1
    assert ev_s == ev_b


def test_healthy_attrs_scalar_equals_batch(fm_graph):
    scalar, batch = _fresh_store(fm_graph), _fresh_store(fm_graph)
    vertices = list(range(40))
    rows = batch.get_attrs_batch(vertices, from_part=0)
    for v in vertices:
        np.testing.assert_array_equal(
            rows[v], scalar.vertex_attr(v, from_part=0)
        )
    ev_s, ev_b = _events(scalar), _events(batch)
    assert ev_b.pop(EV_REMOTE_RPC) <= N_WORKERS - 1
    ev_s.pop(EV_REMOTE_RPC)
    assert ev_s == ev_b


def test_single_vertex_reads_emit_identical_events(fm_graph):
    """A batch of one is *literally* a scalar read: same events, no modulo."""
    (v,) = _remote_vertices(_fresh_store(fm_graph, with_attrs=False), 0, 1)
    for kind in ("neighbors", "attrs"):
        scalar, batch = _fresh_store(fm_graph), _fresh_store(fm_graph)
        if kind == "neighbors":
            a = scalar.neighbors(v, from_part=0)
            b = batch.get_neighbors_batch([v], from_part=0)[v]
        else:
            a = scalar.vertex_attr(v, from_part=0)
            b = batch.get_attrs_batch([v], from_part=0)[v]
        np.testing.assert_array_equal(a, b)
        assert _events(scalar) == _events(batch)


# --------------------------------------------------------------------- #
# Failed owner
# --------------------------------------------------------------------- #
def test_failed_owner_neighbors_failover_parity(fm_graph):
    scalar, batch = _fresh_store(fm_graph), _fresh_store(fm_graph)
    victim = 2
    (v,) = [
        u for u in range(fm_graph.n_vertices)
        if scalar.owner(u) == victim and fm_graph.out_neighbors(u).size
    ][:1]
    for store in (scalar, batch):
        _pin_replica(store, part=1, vertex=v)
        store.fail_worker(victim)
    a = scalar.neighbors(v, from_part=0)
    b = batch.get_neighbors_batch([v], from_part=0)[v]
    np.testing.assert_array_equal(a, fm_graph.out_neighbors(v))
    np.testing.assert_array_equal(a, b)
    assert _events(scalar) == _events(batch)
    assert scalar.ledger.count(EV_FAILOVER_READ) == 1


def test_failed_owner_neighbors_no_replica_raises_parity(fm_graph):
    scalar, batch = _fresh_store(fm_graph), _fresh_store(fm_graph)
    victim = 2
    (v,) = [u for u in range(fm_graph.n_vertices) if scalar.owner(u) == victim][:1]
    scalar.fail_worker(victim)
    batch.fail_worker(victim)
    with pytest.raises(ReadUnavailableError):
        scalar.neighbors(v, from_part=0)
    with pytest.raises(ReadUnavailableError):
        batch.get_neighbors_batch([v], from_part=0)
    assert _events(scalar) == _events(batch)


def test_failed_owner_attrs_raises_parity(fm_graph):
    """Attribute rows have no replicas: both paths raise StorageError —
    the batch path used to happily dispatch RPCs to the dead owner."""
    scalar, batch = _fresh_store(fm_graph), _fresh_store(fm_graph)
    victim = 2
    (v,) = [u for u in range(fm_graph.n_vertices) if scalar.owner(u) == victim][:1]
    # Even a neighbor-cache replica must not save an attrs read.
    for store in (scalar, batch):
        _pin_replica(store, part=1, vertex=v)
        store.fail_worker(victim)
    with pytest.raises(StorageError):
        scalar.vertex_attr(v, from_part=0)
    with pytest.raises(StorageError):
        batch.get_attrs_batch([v], from_part=0)
    assert _events(scalar) == _events(batch)


# --------------------------------------------------------------------- #
# Failed issuer
# --------------------------------------------------------------------- #
def test_failed_issuer_rejected_on_all_entry_points(fm_graph):
    store = _fresh_store(fm_graph)
    store.fail_worker(0)
    for read in (
        lambda: store.neighbors(5, from_part=0),
        lambda: store.vertex_attr(5, from_part=0),
        lambda: store.get_neighbors_batch([5, 6], from_part=0),
        lambda: store.get_attrs_batch([5, 6], from_part=0),
    ):
        with pytest.raises(StorageError, match="issuing worker 0 is down"):
            read()
    # Nothing was charged: validation precedes any routing.
    assert _events(store) == {}


def test_unknown_issuer_rejected_on_all_entry_points(fm_graph):
    store = _fresh_store(fm_graph)
    for read in (
        lambda: store.neighbors(5, from_part=9),
        lambda: store.vertex_attr(5, from_part=9),
        lambda: store.get_neighbors_batch([5], from_part=9),
        lambda: store.get_attrs_batch([5], from_part=9),
    ):
        with pytest.raises(StorageError, match="unknown worker"):
            read()


# --------------------------------------------------------------------- #
# Retry exhausted
# --------------------------------------------------------------------- #
def test_retry_exhausted_raises_parity(fm_graph):
    blackout = FaultPlan(drop_rate=1.0, seed=SEED)
    scalar = _fresh_store(fm_graph, faults=blackout)
    batch = _fresh_store(fm_graph, faults=blackout)
    (v,) = _remote_vertices(scalar, 0, 1)
    with pytest.raises(RetryExhaustedError):
        scalar.neighbors(v, from_part=0)
    with pytest.raises(RetryExhaustedError):
        batch.get_neighbors_batch([v], from_part=0)
    with pytest.raises(RetryExhaustedError):
        scalar.vertex_attr(v, from_part=0)
    with pytest.raises(RetryExhaustedError):
        batch.get_attrs_batch([v], from_part=0)
    assert _events(scalar) == _events(batch)


def test_retry_exhausted_falls_over_to_replica_parity(fm_graph):
    blackout = FaultPlan(drop_rate=1.0, seed=SEED)
    scalar = _fresh_store(fm_graph, faults=blackout)
    batch = _fresh_store(fm_graph, faults=blackout)
    (v,) = [
        u for u in _remote_vertices(scalar, 0, 50)
        if fm_graph.out_neighbors(u).size
    ][:1]
    replica_part = next(
        p for p in range(N_WORKERS) if p not in (0, scalar.owner(v))
    )
    for store in (scalar, batch):
        _pin_replica(store, replica_part, v)
    a = scalar.neighbors(v, from_part=0)
    b = batch.get_neighbors_batch([v], from_part=0)[v]
    np.testing.assert_array_equal(a, fm_graph.out_neighbors(v))
    np.testing.assert_array_equal(a, b)
    assert _events(scalar) == _events(batch)
    assert scalar.ledger.count(EV_FAILOVER_READ) == 1


# --------------------------------------------------------------------- #
# Degraded reads
# --------------------------------------------------------------------- #
def test_degraded_reads_parity_and_attrs_never_degrade(fm_graph):
    stores = [
        make_store(fm_graph, N_WORKERS, seed=0, degraded_reads=True)
        for _ in range(2)
    ]
    victim = 2
    (v,) = [u for u in range(fm_graph.n_vertices) if stores[0].owner(u) == victim][:1]
    feats = make_rng(0).normal(size=(fm_graph.n_vertices, 4))
    for store in stores:
        for u in range(fm_graph.n_vertices):
            store.servers[store.owner(u)].ingest_vertex_attr(u, feats[u])
        store.fail_worker(victim)
    scalar, batch = stores
    a = scalar.neighbors(v, from_part=0)
    b = batch.get_neighbors_batch([v], from_part=0)[v]
    assert a.size == 0 and b.size == 0
    assert scalar.ledger.count(EV_DEGRADED_READ) == 1
    assert _events(scalar) == _events(batch)
    # Attribute reads raise even in degraded mode — a feature row cannot
    # be faked with an empty placeholder.
    with pytest.raises(StorageError):
        scalar.vertex_attr(v, from_part=0)
    with pytest.raises(StorageError):
        batch.get_attrs_batch([v], from_part=0)


# --------------------------------------------------------------------- #
# The sweep itself (tiny configuration, tier-1 fast)
# --------------------------------------------------------------------- #
def test_run_fault_matrix_shape_and_ordering(fm_graph):
    rows = run_fault_matrix(
        fm_graph,
        drop_rates=(0.0,),
        failed_workers=(0, 1),
        policies=("none", "importance"),
        n_workers=N_WORKERS,
        n_batches=1,
        batch_size=32,
        seed=SEED,
    )
    assert len(rows) == 4
    by_label = {r.cell.label: r for r in rows}
    healthy_none = by_label["drop=0% failed=0 cache=none"]
    assert healthy_none.availability == 1.0
    assert healthy_none.degraded_reads == 0
    failed_none = by_label["drop=0% failed=1 cache=none"]
    failed_imp = by_label["drop=0% failed=1 cache=importance"]
    assert failed_imp.availability > failed_none.availability
    assert failed_none.reads_total == failed_imp.reads_total > 0


def test_run_fault_matrix_is_deterministic(fm_graph):
    kwargs = dict(
        drop_rates=(0.2,),
        failed_workers=(1,),
        policies=("importance",),
        n_workers=N_WORKERS,
        n_batches=1,
        batch_size=32,
        seed=SEED,
    )
    a = run_fault_matrix(fm_graph, **kwargs)
    b = run_fault_matrix(fm_graph, **kwargs)
    assert [r.availability for r in a] == [r.availability for r in b]
    assert [r.retries for r in a] == [r.retries for r in b]
    assert [r.p95_latency_us for r in a] == [r.p95_latency_us for r in b]


def test_run_fault_matrix_validation(fm_graph):
    with pytest.raises(ValueError, match="unknown policy"):
        run_fault_matrix(fm_graph, policies=("fifo",))
    with pytest.raises(ValueError, match="cannot fail"):
        run_fault_matrix(
            fm_graph, n_workers=2, failed_workers=(2,), policies=("none",)
        )


def test_fault_matrix_cell_label():
    cell = FaultMatrixCell(drop_rate=0.2, n_failed=1, policy="lru")
    assert cell.label == "drop=20% failed=1 cache=lru"


def test_fault_matrix_cli(capsys):
    from repro.cli import main

    code = main(
        ["fault-matrix", "--scale", "0.1", "--drop-rates", "0.0",
         "--failed-workers", "1", "--policies", "none", "importance",
         "--batches", "1", "--batch-size", "32"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "fault matrix" in out
    assert "drop=0% failed=1 cache=importance" in out
    assert "worst cell:" in out
