"""Power-law utilities: sampling, fitting, skewness measures."""

import numpy as np
import pytest

from repro.utils.powerlaw import (
    PowerLawFit,
    fit_power_law,
    gini_coefficient,
    sample_power_law_degrees,
    tail_mass,
)
from repro.utils.rng import make_rng


def test_sample_within_bounds():
    rng = make_rng(0)
    deg = sample_power_law_degrees(5000, 2.5, 2, 100, rng)
    assert deg.min() >= 2
    assert deg.max() <= 100
    assert deg.dtype == np.int64


def test_sample_is_heavy_tailed():
    rng = make_rng(1)
    deg = sample_power_law_degrees(20_000, 2.1, 1, 2000, rng)
    # Top 10% of vertices should carry well over a third of total degree.
    assert tail_mass(deg.astype(float), 0.1) > 0.35


def test_fit_recovers_exponent_roughly():
    rng = make_rng(2)
    deg = sample_power_law_degrees(50_000, 2.5, 1, 100_000, rng)
    fit = fit_power_law(deg, xmin=5.0)
    assert 2.1 < fit.alpha < 2.9


def test_fit_requires_tail_samples():
    with pytest.raises(ValueError):
        fit_power_law(np.array([1.0, 2.0, 3.0]), xmin=10.0)


def test_fit_rejects_bad_alpha_dataclass():
    with pytest.raises(ValueError):
        PowerLawFit(alpha=0.9, xmin=1.0, n_tail=100)


def test_sample_validations():
    rng = make_rng(0)
    with pytest.raises(ValueError):
        sample_power_law_degrees(-1, 2.5, 1, 10, rng)
    with pytest.raises(ValueError):
        sample_power_law_degrees(10, 0.9, 1, 10, rng)
    with pytest.raises(ValueError):
        sample_power_law_degrees(10, 2.5, 5, 4, rng)


def test_tail_mass_uniform_sample():
    values = np.ones(100)
    assert abs(tail_mass(values, 0.1) - 0.1) < 1e-9


def test_tail_mass_validation():
    with pytest.raises(ValueError):
        tail_mass(np.ones(10), 0.0)


def test_tail_mass_zero_total():
    assert tail_mass(np.zeros(10), 0.5) == 0.0


def test_gini_uniform_is_zero():
    assert abs(gini_coefficient(np.ones(100))) < 1e-9


def test_gini_concentrated_is_high():
    values = np.zeros(100)
    values[0] = 100.0
    assert gini_coefficient(values) > 0.9


def test_gini_rejects_negative():
    with pytest.raises(ValueError):
        gini_coefficient(np.array([-1.0, 1.0]))


def test_gini_empty_is_zero():
    assert gini_coefficient(np.array([])) == 0.0
