"""Batched frontier-sampling kernels: CSR snapshots, grouped alias tables,
backend equivalence, determinism, and dynamic refresh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import dynamic_taobao
from repro.errors import SamplingError
from repro.graph import Graph
from repro.sampling import (
    CsrAdjacency,
    FullNeighborSampler,
    GraphProvider,
    ImportanceNeighborSampler,
    SnapshotProvider,
    TopKNeighborSampler,
    UniformNeighborSampler,
    WeightedNeighborSampler,
)
from repro.sampling.negative import DegreeBiasedNegativeSampler, UniformNegativeSampler
from repro.sampling.randomwalk import random_walks
from repro.utils.alias import AliasTable, GroupedAliasTable, build_alias_arrays
from repro.utils.rng import make_rng
from repro.utils.stats import (
    ZipfSampler,
    chi_square_gof,
    chi_square_homogeneity,
    zipf_probs,
)

P_FLOOR = 1e-4  # equivalence tests: H0 true, so p is uniform on [0, 1]


def _sampler(kind: str, graph: Graph, backend: str):
    provider = GraphProvider(graph)
    if kind == "uniform":
        return UniformNeighborSampler(provider, backend=backend)
    if kind == "weighted":
        return WeightedNeighborSampler(provider, backend=backend)
    if kind == "topk":
        return TopKNeighborSampler(provider, backend=backend)
    if kind == "importance":
        return ImportanceNeighborSampler(
            provider, graph.out_degrees(), backend=backend
        )
    return FullNeighborSampler(provider, backend=backend)


ALL_KINDS = ["uniform", "weighted", "topk", "importance", "full"]


# --------------------------------------------------------------------- #
# CsrAdjacency
# --------------------------------------------------------------------- #
class TestCsrAdjacency:
    def test_from_graph_matches_adjacency(self, tiny_graph):
        csr = CsrAdjacency.from_graph(tiny_graph)
        assert csr.n_vertices == tiny_graph.n_vertices
        for v in range(tiny_graph.n_vertices):
            assert np.array_equal(csr.neighbors(v), tiny_graph.out_neighbors(v))
            assert np.array_equal(csr.weights_of(v), tiny_graph.out_weights(v))
        assert np.array_equal(csr.degrees, tiny_graph.out_degrees())
        assert csr.n_slots == int(tiny_graph.out_degrees().sum())

    def test_from_provider_scan_equals_from_graph(self, tiny_graph):
        a = CsrAdjacency.from_graph(tiny_graph)
        b = CsrAdjacency.from_provider(GraphProvider(tiny_graph))
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(SamplingError):
            CsrAdjacency(np.array([1, 2]), np.array([0, 1]), np.ones(2))
        with pytest.raises(SamplingError):
            CsrAdjacency(np.array([0, 3]), np.array([0, 1]), np.ones(2))
        with pytest.raises(SamplingError):
            CsrAdjacency(np.array([0, 2, 1]), np.array([0, 1]), np.ones(2))

    def test_ranked_orders_by_weight_then_id(self, tiny_graph):
        csr = CsrAdjacency.from_graph(tiny_graph)
        perm = csr.ranked()
        # vertex 4 has neighbors 0 (w=6) and 5 (w=7) -> heaviest first is 5.
        start = csr.indptr[4]
        assert csr.indices[perm[start]] == 5
        assert csr.indices[perm[start + 1]] == 0

    def test_uniform_kernel_stays_in_neighbor_set(self, tiny_graph, rng):
        csr = CsrAdjacency.from_graph(tiny_graph)
        vs = np.array([0, 2, 4], dtype=np.int64)
        out = csr.sample_uniform(vs, 16, rng)
        for row, v in zip(out, vs):
            assert set(row) <= set(int(u) for u in tiny_graph.out_neighbors(v))

    def test_zero_degree_rows_self_pad(self, tiny_graph, rng):
        csr = CsrAdjacency.from_graph(tiny_graph)
        out = csr.sample_uniform(np.array([5]), 4, rng)  # 5 is a sink
        assert np.array_equal(out, np.full((1, 4), 5))


# --------------------------------------------------------------------- #
# Grouped alias tables
# --------------------------------------------------------------------- #
class TestGroupedAlias:
    def test_implied_probabilities_exact(self, small_powerlaw):
        csr = CsrAdjacency.from_graph(small_powerlaw)
        table = GroupedAliasTable(csr.weights, csr.indptr)
        implied = table.probabilities()
        for v in range(csr.n_vertices):
            w = csr.weights_of(v)
            if w.size == 0:
                continue
            got = implied[csr.indptr[v] : csr.indptr[v + 1]]
            assert np.allclose(got, w / w.sum(), atol=1e-12)

    def test_matches_per_list_alias_tables(self, rng):
        # Same distribution as independently built per-list AliasTables,
        # checked exactly (implied probs) and empirically (chi-square).
        weights = np.array([1.0, 3.0, 6.0, 2.0, 2.0, 5.0, 1.0])
        indptr = np.array([0, 3, 3, 7])
        grouped = GroupedAliasTable(weights, indptr)
        for g, (s, e) in enumerate(zip(indptr[:-1], indptr[1:])):
            if e == s:
                continue
            w = weights[s:e]
            single = AliasTable(w)
            sp, sa = single._prob, single._alias
            implied = sp.copy()
            np.add.at(implied, sa, 1.0 - sp)
            implied /= w.size
            got = grouped.probabilities()[s:e]
            assert np.allclose(got, implied, atol=1e-12)
            draws = grouped.draw_group(g, 4000, rng) - s
            counts = np.bincount(draws, minlength=w.size)
            _, p = chi_square_gof(counts, w / w.sum())
            assert p > P_FLOOR

    def test_update_group_redirects_mass(self, rng):
        weights = np.array([1.0, 1.0, 1.0, 1.0, 9.0])
        indptr = np.array([0, 2, 5])
        table = GroupedAliasTable(weights, indptr)
        table.update_group(1, np.array([0.0, 0.0, 1.0]))
        draws = table.draw_for_groups(np.array([1]), 500, rng)
        assert np.all(draws == 4)  # flat slot of the only surviving weight
        # group 0 untouched
        assert np.allclose(table.probabilities()[:2], 0.5)

    def test_empty_group_draw_rejected(self, rng):
        table = GroupedAliasTable(np.array([1.0, 2.0]), np.array([0, 2, 2]))
        with pytest.raises(SamplingError):
            table.draw_for_groups(np.array([1]), 3, rng)

    def test_build_rejects_all_zero_group(self):
        with pytest.raises(SamplingError):
            build_alias_arrays(np.array([0.0, 0.0]), np.array([0, 2]))

    def test_build_handles_empty_and_singleton_groups(self):
        prob, alias = build_alias_arrays(
            np.array([2.0, 1.0, 1.0]), np.array([0, 1, 1, 3])
        )
        assert prob[0] == 1.0 and alias[0] == 0
        assert np.allclose(prob[1:], 1.0)


# --------------------------------------------------------------------- #
# sample_children: public batched API
# --------------------------------------------------------------------- #
class TestSampleChildren:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_shapes_and_membership(self, small_powerlaw, rng, kind):
        sampler = _sampler(kind, small_powerlaw, "batched")
        vs = np.array([0, 5, 17, 300], dtype=np.int64)
        children, pad = sampler.sample_children(vs, 7, rng)
        assert children.shape == pad.shape == (4, 7)
        for row, prow, v in zip(children, pad, vs):
            nbrs = set(int(u) for u in small_powerlaw.out_neighbors(v))
            allowed = nbrs | {int(v)} if not nbrs else nbrs | (
                {int(v)} if int(v) in nbrs else set()
            )
            if not nbrs:
                assert np.all(row == v) and np.all(prow)
            else:
                assert set(int(c) for c in row) <= allowed
            assert np.array_equal(prow, row == v)

    @pytest.mark.parametrize("kind", ["topk", "full"])
    def test_deterministic_kinds_match_reference_exactly(
        self, small_powerlaw, rng, kind
    ):
        vs = np.arange(small_powerlaw.n_vertices, dtype=np.int64)
        got, gp = _sampler(kind, small_powerlaw, "batched").sample_children(
            vs, 6, rng
        )
        want, wp = _sampler(kind, small_powerlaw, "reference").sample_children(
            vs, 6, rng
        )
        assert np.array_equal(got, want)
        assert np.array_equal(gp, wp)

    @pytest.mark.parametrize("kind", ["uniform", "weighted", "importance"])
    def test_stochastic_kinds_chi_square_equivalent(self, small_powerlaw, kind):
        degrees = small_powerlaw.out_degrees()
        parents = np.argsort(degrees)[-12:].astype(np.int64)
        counts = {}
        for seed, backend in ((1, "batched"), (2, "reference")):
            sampler = _sampler(kind, small_powerlaw, backend)
            rng = make_rng(seed)
            acc = np.zeros(
                (parents.size, small_powerlaw.n_vertices), dtype=np.int64
            )
            for _ in range(300):
                children, _ = sampler.sample_children(parents, 8, rng)
                for i, kids in enumerate(children):
                    acc[i] += np.bincount(
                        kids, minlength=small_powerlaw.n_vertices
                    )
            counts[backend] = acc.ravel()
        _, p = chi_square_homogeneity(counts["batched"], counts["reference"])
        assert p > P_FLOOR, f"{kind} backends diverge (p={p:.2e})"

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_same_seed_determinism(self, small_powerlaw, kind):
        vs = np.array([3, 14, 15, 92, 653], dtype=np.int64)
        a, _ = _sampler(kind, small_powerlaw, "batched").sample_children(
            vs, 9, make_rng(99)
        )
        b, _ = _sampler(kind, small_powerlaw, "batched").sample_children(
            vs, 9, make_rng(99)
        )
        assert np.array_equal(a, b)

    def test_multi_hop_sample_uses_batched_kernels(self, small_powerlaw):
        sampler = _sampler("uniform", small_powerlaw, "batched")
        assert sampler.resolved_backend == "batched"
        out = sampler.sample(np.array([1, 2, 3]), [4, 2], make_rng(0))
        assert out.layers[1].size == 12 and out.layers[2].size == 24
        assert len(out.pad_masks) == 2

    def test_genuine_self_loop_marks_pad(self):
        # Vertex 0's only edge is a self-loop: every draw equals the parent
        # and is flagged by the pad mask (the documented contract).
        g = Graph(
            2,
            np.array([0, 1]),
            np.array([0, 0]),
            weights=np.array([1.0, 1.0]),
            directed=True,
        )
        sampler = UniformNeighborSampler(GraphProvider(g), backend="batched")
        children, pad = sampler.sample_children(
            np.array([0, 1]), 3, make_rng(0)
        )
        assert np.all(children[0] == 0) and np.all(pad[0])
        assert np.all(children[1] == 0) and not np.any(pad[1])

    def test_weight_update_moves_batched_distribution(self, tiny_graph):
        sampler = WeightedNeighborSampler(
            GraphProvider(tiny_graph), backend="batched"
        )
        rng = make_rng(5)
        sampler.sample_children(np.array([0]), 4, rng)  # builds the table
        # Push vertex 0's mass almost entirely onto neighbor 2.
        sampler.backward(0, np.array([-40.0, 40.0]), lr=1.0)
        children, _ = sampler.sample_children(np.array([0]), 400, rng)
        assert np.mean(children == 2) > 0.97

    def test_invalid_backend_rejected(self, tiny_graph):
        with pytest.raises(SamplingError):
            UniformNeighborSampler(GraphProvider(tiny_graph), backend="turbo")


# --------------------------------------------------------------------- #
# Dynamic-graph refresh
# --------------------------------------------------------------------- #
class TestDynamicRefresh:
    def test_advance_rebuilds_csr_and_stays_deterministic(self):
        dyn = dynamic_taobao(n_vertices=300, n_timestamps=3, seed=11)

        def run():
            provider = dyn.provider(0)
            sampler = UniformNeighborSampler(provider, backend="batched")
            seeds = np.arange(48, dtype=np.int64)
            before = sampler.sample(seeds, [6, 3], make_rng(3))
            provider.advance(2)
            after = sampler.sample(seeds, [6, 3], make_rng(3))
            return before, after

        (b1, a1), (b2, a2) = run(), run()
        for x, y in zip(b1.layers + a1.layers, b2.layers + a2.layers):
            assert np.array_equal(x, y)
        # And the refreshed draws respect the *new* snapshot's adjacency.
        g2 = dyn.snapshot(2)
        kids = a1.hop(1)
        for v, row in zip(np.arange(48), kids):
            nbrs = set(int(u) for u in g2.out_neighbors(int(v)))
            for c in row:
                assert int(c) in nbrs or int(c) == int(v)

    def test_refresh_csr_forces_rebuild(self, tiny_graph):
        sampler = UniformNeighborSampler(
            GraphProvider(tiny_graph), backend="batched"
        )
        first = sampler.csr()
        assert sampler.csr() is first  # cached
        sampler.refresh_csr()
        assert sampler.csr() is not first


# --------------------------------------------------------------------- #
# Batched negatives and walks
# --------------------------------------------------------------------- #
class TestBatchedNegativesAndWalks:
    def test_strict_negatives_avoid_true_edges(self, small_powerlaw):
        anchors = np.argsort(small_powerlaw.out_degrees())[-8:].astype(np.int64)
        sampler = UniformNegativeSampler(
            small_powerlaw, strict=True, backend="batched"
        )
        out = sampler.sample(anchors, 32, make_rng(2))
        for anchor, row in zip(anchors, out):
            forbidden = set(
                int(u) for u in small_powerlaw.out_neighbors(int(anchor))
            )
            forbidden.add(int(anchor))
            hits = sum(1 for c in row if int(c) in forbidden)
            # max_retries rounds make a surviving collision overwhelmingly
            # unlikely on a 1000-vertex pool.
            assert hits == 0

    def test_strict_backends_distributionally_equivalent(self, small_powerlaw):
        anchors = np.array([3, 14, 15], dtype=np.int64)
        counts = {}
        for seed, backend in ((4, "batched"), (5, "reference")):
            sampler = DegreeBiasedNegativeSampler(
                small_powerlaw, strict=True, backend=backend
            )
            acc = np.zeros(small_powerlaw.n_vertices, dtype=np.int64)
            rng = make_rng(seed)
            for _ in range(60):
                acc += np.bincount(
                    sampler.sample(anchors, 40, rng).ravel(),
                    minlength=small_powerlaw.n_vertices,
                )
            counts[backend] = acc
        _, p = chi_square_homogeneity(counts["batched"], counts["reference"])
        assert p > P_FLOOR

    def test_batched_walks_follow_edges_and_truncate(self, tiny_graph):
        walks = random_walks(
            tiny_graph, np.array([0, 1, 5]), 6, make_rng(1), backend="batched"
        )
        assert len(walks) == 3
        assert walks[2].tolist() == [5]  # sink start: truncated immediately
        for walk in walks:
            for a, b in zip(walk[:-1], walk[1:]):
                assert int(b) in set(
                    int(u) for u in tiny_graph.out_neighbors(int(a))
                )

    def test_batched_walks_deterministic_and_weighted(self, tiny_graph):
        a = random_walks(tiny_graph, np.array([0, 1]), 8, make_rng(6))
        b = random_walks(tiny_graph, np.array([0, 1]), 8, make_rng(6))
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        # Weighted first step from 0: neighbor 2 (w=2) vs 1 (w=1).
        firsts = [
            int(
                random_walks(
                    tiny_graph,
                    np.array([0]),
                    1,
                    make_rng(seed),
                    weighted=True,
                    backend="batched",
                )[0][1]
            )
            for seed in range(300)
        ]
        frac2 = np.mean(np.asarray(firsts) == 2)
        assert 0.55 < frac2 < 0.8  # expected 2/3

    def test_walk_backends_step_distribution_match(self, small_powerlaw):
        start = int(np.argmax(small_powerlaw.out_degrees()))
        counts = {}
        for seed, backend in ((8, "batched"), (9, "reference")):
            rng = make_rng(seed)
            acc = np.zeros(small_powerlaw.n_vertices, dtype=np.int64)
            for _ in range(800):
                walk = random_walks(
                    small_powerlaw, np.array([start]), 1, rng, backend=backend
                )[0]
                if walk.size > 1:
                    acc[int(walk[1])] += 1
            counts[backend] = acc
        _, p = chi_square_homogeneity(counts["batched"], counts["reference"])
        assert p > P_FLOOR


# --------------------------------------------------------------------- #
# Providers and auto backend
# --------------------------------------------------------------------- #
class TestBackendSelection:
    def test_auto_is_batched_on_graph_provider(self, tiny_graph):
        sampler = UniformNeighborSampler(GraphProvider(tiny_graph))
        assert sampler.resolved_backend == "batched"

    def test_auto_is_reference_on_store_provider(self, small_powerlaw):
        from repro.runtime import RpcRuntime
        from repro.sampling import StoreProvider
        from repro.storage.cluster import make_store

        store = make_store(small_powerlaw, 2, seed=0)
        store.attach_runtime(RpcRuntime(store))
        provider = StoreProvider(store, from_part=0)
        sampler = UniformNeighborSampler(provider)
        assert sampler.resolved_backend == "reference"
        # Explicit opt-in pays one bulk snapshot and then runs batched.
        batched = UniformNeighborSampler(provider, backend="batched")
        out = batched.sample(np.array([1, 2, 3]), [4], make_rng(0))
        assert out.layers[1].size == 12

    def test_zipf_probs_normalized_and_monotone(self):
        probs = zipf_probs(50, exponent=1.2)
        assert probs.shape == (50,)
        assert np.isclose(probs.sum(), 1.0)
        assert np.all(np.diff(probs) < 0)  # strictly rank-decreasing
        # exponent 0 degenerates to uniform.
        assert np.allclose(zipf_probs(8, exponent=0.0), 1.0 / 8)

    def test_zipf_sampler_chi_square_matches_law(self):
        n = 40
        sampler = ZipfSampler(n, exponent=1.1)
        draws = sampler.sample(30_000, make_rng(13))
        counts = np.bincount(draws, minlength=n)
        _, p = chi_square_gof(counts, zipf_probs(n, exponent=1.1))
        assert p > P_FLOOR, f"Zipf draws diverge from the law (p={p:.2e})"

    def test_zipf_sampler_population_and_determinism(self):
        population = np.array([7, 99, 3, 42], dtype=np.int64)
        sampler = ZipfSampler(population, exponent=1.5)
        a = sampler.sample(64, make_rng(5))
        b = ZipfSampler(population, exponent=1.5).sample(64, make_rng(5))
        assert np.array_equal(a, b)
        assert set(a.tolist()) <= set(population.tolist())
        # Rank 1 (value 7) must dominate under a strong exponent.
        assert np.mean(a == 7) > np.mean(a == 42)

    def test_zipf_validation(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            zipf_probs(0)
        with pytest.raises(ReproError):
            zipf_probs(4, exponent=-0.5)
        with pytest.raises(ReproError):
            ZipfSampler(np.array([], dtype=np.int64))

    def test_snapshot_provider_exposes_versioned_csr(self):
        dyn = dynamic_taobao(n_vertices=200, n_timestamps=3, seed=1)
        provider = SnapshotProvider(dyn, 0)
        assert provider.csr_cost_free and provider.version == 0
        provider.advance(1)
        assert provider.version == 1
        provider.advance(1)  # no-op
        assert provider.version == 1
