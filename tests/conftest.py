"""Shared fixtures: small deterministic graphs for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import amazon_graph, taobao_graph
from repro.graph import Graph, GraphBuilder
from repro.utils.rng import make_rng


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng(12345)


@pytest.fixture
def tiny_graph() -> Graph:
    """A 6-vertex directed graph with known structure.

    Edges: 0->1, 0->2, 1->2, 2->3, 3->4, 4->0, 4->5 (weights 1..7).
    """
    src = np.array([0, 0, 1, 2, 3, 4, 4])
    dst = np.array([1, 2, 2, 3, 4, 0, 5])
    w = np.arange(1, 8, dtype=np.float64)
    return Graph(6, src, dst, weights=w, directed=True)


@pytest.fixture
def tiny_undirected() -> Graph:
    src = np.array([0, 1, 2, 3])
    dst = np.array([1, 2, 3, 0])
    return Graph(4, src, dst, directed=False)


@pytest.fixture
def tiny_ahg():
    """2 users, 3 items, 2 behaviour edge types + item_item."""
    b = GraphBuilder(directed=True)
    for i in range(2):
        b.add_vertex(f"u{i}", "user", features=np.array([float(i), 1.0]))
    for i in range(3):
        b.add_vertex(f"i{i}", "item", features=np.array([float(i), 2.0, 3.0]))
    b.add_edge("u0", "i0", etype="click")
    b.add_edge("u0", "i1", etype="buy")
    b.add_edge("u1", "i1", etype="click")
    b.add_edge("u1", "i2", etype="click")
    b.add_edge("i0", "i1", etype="item_item")
    return b.build_ahg()


@pytest.fixture(scope="session")
def small_powerlaw():
    """A session-cached power-law graph (1000 vertices) for storage tests."""
    from repro.data import powerlaw_graph

    return powerlaw_graph(1000, alpha=2.3, max_degree=80, seed=7)


@pytest.fixture(scope="session")
def small_taobao():
    """A session-cached small taobao-sim AHG."""
    return taobao_graph(n_users=400, n_items=120, mean_user_degree=6.0, seed=3)


@pytest.fixture(scope="session")
def small_amazon():
    """A session-cached small amazon-sim AHG."""
    return amazon_graph(n_products=300, n_communities=6, seed=3)
