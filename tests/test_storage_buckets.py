"""Lock-free request-flow buckets: routing and makespan modelling."""

import pytest

from repro.errors import StorageError
from repro.storage.buckets import Request, RequestFlowBuckets, synthetic_trace
from repro.utils.rng import make_rng


def test_bucket_routing_deterministic():
    buckets = RequestFlowBuckets(n_vertices=100, n_buckets=8)
    assert buckets.bucket_of(5) == buckets.bucket_of(5)
    assert buckets.bucket_of(13) == 13 % 8


def test_bucket_of_bounds():
    buckets = RequestFlowBuckets(10, 2)
    with pytest.raises(StorageError):
        buckets.bucket_of(10)


def test_route_preserves_fifo_order():
    buckets = RequestFlowBuckets(10, 2)
    trace = [Request(0), Request(2), Request(4)]  # all bucket 0
    queues = buckets.route(trace)
    assert queues[0] == trace
    assert queues[1] == []


def test_lock_free_makespan_is_busiest_bucket():
    buckets = RequestFlowBuckets(10, 2)
    trace = [Request(0, service_us=5.0), Request(1, service_us=1.0), Request(2, service_us=5.0)]
    # Bucket 0 gets vertices 0, 2 (10us); bucket 1 gets vertex 1 (1us).
    assert buckets.lock_free_makespan_us(trace) == 10.0


def test_locked_makespan_serializes_updates():
    buckets = RequestFlowBuckets(10, 4)
    trace = [Request(i, kind="update", service_us=2.0) for i in range(8)]
    locked = buckets.locked_makespan_us(trace, lock_overhead_us=1.0)
    assert locked == pytest.approx(8 * 3.0)  # all exclusive


def test_locked_reads_parallelize():
    buckets = RequestFlowBuckets(10, 4)
    trace = [Request(i, kind="read", service_us=2.0) for i in range(8)]
    locked = buckets.locked_makespan_us(trace, lock_overhead_us=0.0)
    assert locked == pytest.approx(8 * 2.0 / 4)


def test_speedup_gt_one_with_updates():
    rng = make_rng(0)
    buckets = RequestFlowBuckets(1000, 8)
    trace = synthetic_trace(1000, 4000, update_fraction=0.3, rng=rng)
    assert buckets.speedup(trace) > 1.5


def test_speedup_empty_trace():
    assert RequestFlowBuckets(10, 2).speedup([]) == 1.0


def test_more_buckets_never_slower():
    rng = make_rng(1)
    trace = synthetic_trace(1000, 4000, update_fraction=0.1, rng=rng)
    few = RequestFlowBuckets(1000, 2).lock_free_makespan_us(trace)
    many = RequestFlowBuckets(1000, 16).lock_free_makespan_us(trace)
    assert many <= few


def test_request_validations():
    with pytest.raises(StorageError):
        Request(0, kind="write")
    with pytest.raises(StorageError):
        Request(0, service_us=0.0)


def test_constructor_validations():
    with pytest.raises(StorageError):
        RequestFlowBuckets(10, 0)
    with pytest.raises(StorageError):
        RequestFlowBuckets(0, 2)


def test_synthetic_trace_mix():
    rng = make_rng(2)
    trace = synthetic_trace(100, 1000, update_fraction=0.25, rng=rng)
    frac = sum(r.kind == "update" for r in trace) / len(trace)
    assert abs(frac - 0.25) < 0.05
    with pytest.raises(StorageError):
        synthetic_trace(100, 10, update_fraction=1.5, rng=rng)
