"""GNN framework and the GCN family."""

import numpy as np
import pytest

from repro.algorithms import ASGCN, GCN, FastGCN, GNNFramework, GraphSAGE
from repro.algorithms.gcn import normalized_adjacency
from repro.data import train_test_split_edges
from repro.errors import TrainingError
from repro.tasks import evaluate_link_prediction


@pytest.fixture(scope="module")
def amazon_split(small_amazon):
    return train_test_split_edges(small_amazon, 0.2, seed=0)


def _auc(model, split):
    model.fit(split.train_graph)
    return evaluate_link_prediction(
        model.embeddings(), split, per_type_average=False
    ).roc_auc


def test_normalized_adjacency_properties(small_amazon):
    a_hat = normalized_adjacency(small_amazon)
    assert a_hat.shape == (small_amazon.n_vertices,) * 2
    # Symmetric normalization of a symmetric matrix stays symmetric.
    diff = (a_hat - a_hat.T).toarray()
    np.testing.assert_allclose(diff, 0.0, atol=1e-12)
    # Spectral radius of the renormalized adjacency is <= 1.
    from scipy.sparse.linalg import eigsh

    top = eigsh(a_hat, k=1, return_eigenvectors=False)[0]
    assert top <= 1.0 + 1e-9


def test_gcn_beats_random(amazon_split):
    assert _auc(GCN(dim=16, steps=50), amazon_split) > 65.0


def test_gcn_training_reduces_loss(small_amazon):
    # Smoke: embeddings are finite unit rows.
    emb = GCN(dim=16, steps=30).fit(small_amazon).embeddings()
    assert np.isfinite(emb).all()
    np.testing.assert_allclose(np.linalg.norm(emb, axis=1), 1.0, atol=1e-6)


def test_fastgcn_and_asgcn_run(amazon_split):
    assert _auc(FastGCN(dim=16, steps=40, sample_size=100), amazon_split) > 55.0
    assert _auc(ASGCN(dim=16, steps=40, sample_size=100), amazon_split) > 55.0


def test_fastgcn_sampling_differs_from_gcn(small_amazon):
    full = GCN(dim=16, steps=15, seed=2).fit(small_amazon).embeddings()
    fast = FastGCN(dim=16, steps=15, sample_size=60, seed=2).fit(small_amazon).embeddings()
    assert not np.allclose(full, fast)


def test_framework_kmax_validation():
    with pytest.raises(TrainingError):
        GNNFramework(kmax=0)


def test_framework_unknown_sampler(small_amazon):
    with pytest.raises(TrainingError):
        GNNFramework(sampler="psychic", epochs=1).fit(small_amazon)


@pytest.mark.parametrize("aggregator", ["mean", "maxpool", "attention"])
def test_framework_aggregator_plugins(small_amazon, aggregator):
    model = GNNFramework(
        dim=12, kmax=1, fanout=4, aggregator=aggregator,
        epochs=1, max_steps_per_epoch=5,
    )
    emb = model.fit(small_amazon).embeddings()
    assert emb.shape == (small_amazon.n_vertices, 12)
    assert np.isfinite(emb).all()


@pytest.mark.parametrize("combiner", ["concat", "gru"])
def test_framework_combiner_plugins(small_amazon, combiner):
    model = GNNFramework(
        dim=12, kmax=1, fanout=4, combiner=combiner,
        epochs=1, max_steps_per_epoch=5,
    )
    emb = model.fit(small_amazon).embeddings()
    assert np.isfinite(emb).all()


@pytest.mark.parametrize("sampler", ["uniform", "weighted", "topk", "importance"])
def test_framework_sampler_plugins(small_amazon, sampler):
    model = GNNFramework(
        dim=12, kmax=1, fanout=4, sampler=sampler,
        epochs=1, max_steps_per_epoch=5,
    )
    emb = model.fit(small_amazon).embeddings()
    assert np.isfinite(emb).all()


def test_framework_featureless_graph(small_powerlaw):
    model = GNNFramework(dim=12, kmax=1, fanout=4, epochs=1, max_steps_per_epoch=5)
    emb = model.fit(small_powerlaw).embeddings()
    assert emb.shape == (small_powerlaw.n_vertices, 12)


def test_framework_loss_history_recorded(small_amazon):
    model = GNNFramework(dim=12, kmax=1, epochs=2, max_steps_per_epoch=5)
    model.fit(small_amazon)
    assert len(model.loss_history) == 2
    assert all(np.isfinite(l) for l in model.loss_history)


def test_graphsage_is_framework_config(amazon_split):
    model = GraphSAGE(dim=16, epochs=3, max_steps_per_epoch=15)
    assert model.combiner == "concat"
    assert model.sampler == "uniform"
    assert _auc(model, amazon_split) > 65.0


def test_graphsage_training_improves_loss(small_amazon):
    model = GraphSAGE(dim=16, epochs=4, max_steps_per_epoch=10, lr=0.02)
    model.fit(small_amazon)
    assert model.loss_history[-1] < model.loss_history[0]
