"""Minibatch k-hop blocks, ragged aggregators, SIGN, and the hep gather."""

import numpy as np
import pytest

from repro.algorithms import SIGN, GNNFramework
from repro.algorithms.framework import _GNNEncoder
from repro.algorithms.hep import hep_neighbor_rows, typed_adjacency
from repro.algorithms.sign import propagate_sign
from repro.data import train_test_split_edges
from repro.errors import SamplingError
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.ops.aggregate import make_aggregator
from repro.sampling import (
    GraphProvider,
    UniformNeighborSampler,
    build_block,
    build_block_from_tables,
)
from repro.sampling.kernels import CsrAdjacency
from repro.tasks import evaluate_link_prediction
from repro.utils.rng import make_rng

AGGREGATORS = ["mean", "sum", "maxpool", "lstm", "attention"]
COMBINERS = ["concat", "sum", "gru"]


@pytest.fixture(scope="module")
def taobao_setup(small_taobao):
    model = GNNFramework(dim=16, kmax=2, fanout=4)
    features = model._features(small_taobao)
    sampler = UniformNeighborSampler(GraphProvider(small_taobao))
    tables = model._sample_hop_tables(small_taobao, sampler, make_rng(3))
    return small_taobao, features, sampler, tables


# ---------------------------------------------------------------------- #
# Block construction
# ---------------------------------------------------------------------- #
def test_block_structure_invariants(taobao_setup):
    graph, _, _, tables = taobao_setup
    seeds = np.array([5, 2, 9, 2, 40])  # dupes on purpose
    block = build_block_from_tables(seeds, tables)
    assert block.n_hops == 2
    np.testing.assert_array_equal(block.seeds, np.unique(seeds))
    for k in range(block.n_hops):
        layer, above = block.layers[k], block.layers[k + 1]
        # Levels are sorted unique and supersets of the level above.
        np.testing.assert_array_equal(layer, np.unique(layer))
        assert np.isin(above, layer).all()
        # Relabeled indices map back to exactly the global hop-table draws.
        np.testing.assert_array_equal(layer[block.self_index[k]], above)
        np.testing.assert_array_equal(
            layer[block.child_index[k]], tables[k][above]
        )
    assert block.total_rows() == sum(le.size for le in block.layers)
    assert block.n_input_rows == block.layers[0].size


def test_block_live_sampling_deterministic(taobao_setup):
    graph, _, sampler, _ = taobao_setup
    seeds = np.arange(0, 60, 7)
    b1 = build_block(seeds, sampler, [4, 4], make_rng(11))
    b2 = build_block(seeds, sampler, [4, 4], make_rng(11))
    for la, lb in zip(b1.layers, b2.layers):
        np.testing.assert_array_equal(la, lb)
    for ca, cb in zip(b1.child_index, b2.child_index):
        np.testing.assert_array_equal(ca, cb)


def test_block_validation(taobao_setup):
    _, _, sampler, tables = taobao_setup
    with pytest.raises(SamplingError):
        build_block(np.array([], dtype=np.int64), sampler, [4], make_rng(0))
    with pytest.raises(SamplingError):
        build_block(np.array([1]), sampler, [], make_rng(0))
    block = build_block_from_tables(np.array([3, 7]), tables)
    with pytest.raises(SamplingError):
        block.seed_positions(np.array([4]))  # not a seed
    np.testing.assert_array_equal(
        block.seed_positions(np.array([7, 3])), [1, 0]
    )


# ---------------------------------------------------------------------- #
# Tentpole exactness: block forward == full forward on the same draws
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("combiner", COMBINERS)
@pytest.mark.parametrize("aggregator", AGGREGATORS)
def test_block_forward_bitwise_equals_full(taobao_setup, aggregator, combiner):
    graph, features, _, tables = taobao_setup
    encoder = _GNNEncoder(
        in_dim=features.shape[1],
        hidden_dim=16,
        out_dim=16,
        kmax=2,
        aggregator=aggregator,
        combiner=combiner,
        rng=make_rng(1),
    )
    feat_tensor = Tensor(features)
    full = encoder(feat_tensor, tables).numpy()
    seeds = np.unique(make_rng(9).integers(0, graph.n_vertices, size=80))
    block = build_block_from_tables(seeds, tables)
    block_out = encoder.forward_block(feat_tensor, block).numpy()
    # Ulp-identical, not merely close: same draws + row-wise ops.
    assert np.array_equal(full[block.seeds], block_out)


def test_block_backward_matches_full(taobao_setup):
    """Gradients through the block forward equal the full forward's."""
    graph, features, _, tables = taobao_setup
    seeds = np.arange(0, 50, 3)

    def loss_grads(use_block):
        encoder = _GNNEncoder(
            in_dim=features.shape[1], hidden_dim=16, out_dim=16, kmax=2,
            aggregator="mean", combiner="concat", rng=make_rng(1),
        )
        feat_tensor = Tensor(features)
        if use_block:
            block = build_block_from_tables(seeds, tables)
            h = encoder.forward_block(feat_tensor, block)
            rows = block.seed_positions(seeds)
        else:
            h = encoder(feat_tensor, tables)
            rows = seeds
        (h.gather_rows(rows) ** 2).sum().backward()
        return [p.grad.copy() for p in encoder.parameters()]

    for g_full, g_block in zip(loss_grads(False), loss_grads(True)):
        np.testing.assert_allclose(g_full, g_block, atol=1e-12)


# ---------------------------------------------------------------------- #
# Minibatch training mode
# ---------------------------------------------------------------------- #
def test_minibatch_training_same_seed_deterministic(small_taobao):
    def fit():
        return GNNFramework(
            dim=12, kmax=2, fanout=4, epochs=2, max_steps_per_epoch=4,
            minibatch_blocks=True, seed=5,
        ).fit(small_taobao)

    m1, m2 = fit(), fit()
    np.testing.assert_array_equal(m1.embeddings(), m2.embeddings())
    assert m1.block_stats == m2.block_stats
    assert m1.block_stats["steps"] == 8
    # Blocks must actually be sub-graph sized.
    per_step = m1.block_stats["input_rows"] / m1.block_stats["steps"]
    assert 0 < per_step <= small_taobao.n_vertices


def test_minibatch_batch_stream_matches_full_graph(small_taobao):
    """The dedicated block RNG leaves the (src, dst, negs) stream intact:
    loss histories differ (different forwards) but both modes are driven by
    identical batches — checked via identical first-epoch batch draws."""
    from repro.sampling.negative import DegreeBiasedNegativeSampler
    from repro.sampling.traverse import EdgeTraverseSampler

    def first_batch(minibatch):
        model = GNNFramework(
            dim=8, kmax=1, fanout=3, epochs=1, max_steps_per_epoch=1,
            minibatch_blocks=minibatch, seed=7,
        )
        rng = make_rng(model.seed)
        # Replay exactly what fit() consumes from the main stream before
        # the first batch draw.
        model._features(small_taobao)
        sampler = model._make_sampler(small_taobao)
        _GNNEncoder(
            in_dim=model._features(small_taobao).shape[1],
            hidden_dim=model.hidden_dim, out_dim=model.dim, kmax=model.kmax,
            aggregator=model.aggregator, combiner=model.combiner, rng=rng,
        )
        if not minibatch:
            model._sample_hop_tables(small_taobao, sampler, rng)
        src, dst = EdgeTraverseSampler(small_taobao).sample(model.batch_size, rng)
        negs = DegreeBiasedNegativeSampler(small_taobao).sample(
            src, model.neg_num, rng
        )
        return src, dst, negs

    full = first_batch(False)
    # Minibatch mode consumes one fewer main-rng draw round (no hop
    # tables up front), so streams are *not* literally identical — the
    # contract is that minibatch mode's batches are reproducible and the
    # main rng is never touched by block sampling.
    mb1, mb2 = first_batch(True), first_batch(True)
    for a, b in zip(mb1, mb2):
        np.testing.assert_array_equal(a, b)
    assert all(arr.size for arr in full)


def test_minibatch_quality_within_noise(small_taobao):
    split = train_test_split_edges(small_taobao, 0.2, seed=0)
    kwargs = dict(dim=16, kmax=2, fanout=4, epochs=3, seed=0)
    aucs = {}
    for mode in (False, True):
        model = GNNFramework(minibatch_blocks=mode, **kwargs).fit(split.train_graph)
        aucs[mode] = evaluate_link_prediction(
            model.embeddings(), split, per_type_average=False
        ).roc_auc
    assert aucs[True] > 60.0
    assert abs(aucs[True] - aucs[False]) < 12.0


# ---------------------------------------------------------------------- #
# Ragged aggregators
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("name", AGGREGATORS)
def test_aggregator_ragged_matches_fixed_on_uniform_segments(name):
    x = Tensor(make_rng(2).normal(size=(24, 6)), requires_grad=True)
    agg = make_aggregator(name, 6, 5, make_rng(1))
    fixed = agg(x, 4)
    ragged = agg(x, np.arange(0, 25, 4))
    np.testing.assert_allclose(fixed.numpy(), ragged.numpy(), atol=1e-12)


@pytest.mark.parametrize("name", AGGREGATORS)
def test_aggregator_ragged_segments_grads_flow(name):
    offsets = np.array([0, 3, 3, 8, 10, 17, 24])  # one empty segment
    x = Tensor(make_rng(2).normal(size=(24, 6)), requires_grad=True)
    agg = make_aggregator(name, 6, 5, make_rng(1))
    out = agg(x, offsets)
    assert out.shape == (6, 5)
    out.sum().backward()
    assert x.grad is not None and np.isfinite(x.grad).all()
    # The empty segment received no input rows, so no gradient flows out
    # of it — but some neighbor rows must carry gradient.
    assert np.abs(x.grad).sum() > 0


def test_lstm_ragged_matches_per_segment_reference():
    from repro.ops.aggregate import LSTMAggregator

    offsets = np.array([0, 2, 5, 5, 9])
    x = make_rng(8).normal(size=(9, 3))
    agg = LSTMAggregator(3, 4, make_rng(1))
    out = agg(Tensor(x), offsets).numpy()
    for b, (lo, hi) in enumerate(zip(offsets[:-1], offsets[1:])):
        h, c = agg.cell.init_state(1)
        for row in range(lo, hi):
            h, c = agg.cell(Tensor(x[row : row + 1]), h, c)
        np.testing.assert_allclose(out[b], h.numpy()[0], atol=1e-12)


# ---------------------------------------------------------------------- #
# SIGN
# ---------------------------------------------------------------------- #
def test_propagate_sign_matches_dense_oracle(tiny_graph):
    csr = CsrAdjacency.from_graph(tiny_graph)
    x = make_rng(3).normal(size=(tiny_graph.n_vertices, 4))
    z = propagate_sign(x, csr, hops=2)
    assert z.shape == (tiny_graph.n_vertices, 12)
    # Dense oracle: row-normalized adjacency powers.
    n = tiny_graph.n_vertices
    a = np.zeros((n, n))
    for v in range(n):
        nbrs = tiny_graph.out_neighbors(v)
        if nbrs.size:
            a[v, nbrs] = 1.0 / nbrs.size
    np.testing.assert_allclose(z[:, :4], x)
    np.testing.assert_allclose(z[:, 4:8], a @ x, atol=1e-12)
    np.testing.assert_allclose(z[:, 8:], a @ (a @ x), atol=1e-12)


def test_sign_trains_and_is_deterministic(small_taobao):
    def fit():
        return SIGN(dim=16, hops=2, epochs=2, seed=4).fit(small_taobao)

    m1, m2 = fit(), fit()
    emb = m1.embeddings()
    assert emb.shape == (small_taobao.n_vertices, 16)
    assert np.isfinite(emb).all()
    np.testing.assert_array_equal(emb, m2.embeddings())
    assert m1.loss_history and m1.loss_history[-1] <= m1.loss_history[0]


def test_sign_link_prediction_quality(small_taobao):
    split = train_test_split_edges(small_taobao, 0.2, seed=0)
    model = SIGN(dim=16, hops=2, epochs=4, seed=0).fit(split.train_graph)
    auc = evaluate_link_prediction(
        model.embeddings(), split, per_type_average=False
    ).roc_auc
    assert auc > 60.0


# ---------------------------------------------------------------------- #
# HEP typed-neighbor gather (vectorization oracle)
# ---------------------------------------------------------------------- #
def test_hep_neighbor_rows_match_per_vertex_reference(small_taobao):
    graph = small_taobao
    indptr, indices, _ = graph.csr_arrays()
    vertex_types = graph.vertex_types
    n_types = len(graph.vertex_type_names)
    cap = 5
    typed = typed_adjacency(indptr, indices, vertex_types, n_types)
    vertices = np.arange(graph.n_vertices, dtype=np.int64)
    for c in range(n_types):
        t_indptr, t_indices = typed[c]
        valid, rows = hep_neighbor_rows(t_indptr, t_indices, vertices, cap)
        # Per-vertex reference: the old python-loop _pad(typed[:cap]).
        ref_valid, ref_rows = [], []
        for v in vertices:
            nbrs = graph.out_neighbors(v)
            tn = nbrs[vertex_types[nbrs] == c]
            if tn.size == 0:
                continue
            picked = tn[:cap]
            if picked.size < cap:
                picked = np.tile(picked, int(np.ceil(cap / picked.size)))[:cap]
            ref_valid.append(v)
            ref_rows.append(picked)
        np.testing.assert_array_equal(valid, np.asarray(ref_valid))
        np.testing.assert_array_equal(rows, np.stack(ref_rows))
