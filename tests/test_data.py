"""Synthetic data substrate: generators, registry, splits."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    amazon_graph,
    dynamic_taobao,
    knowledge_graph,
    make_dataset,
    powerlaw_graph,
    taobao_graph,
    train_test_split_edges,
)
from repro.errors import DatasetError
from repro.utils.powerlaw import tail_mass


def test_taobao_schema(small_taobao):
    d = small_taobao.describe()
    assert d["n_vertex_types"] == 2
    assert d["n_edge_types"] == 5
    assert set(d["edges_by_type"]) == {"click", "collect", "cart", "buy", "item_item"}
    assert d["feature_dim"] == 32  # max(27, 32)


def test_taobao_deterministic():
    g1 = taobao_graph(n_users=100, n_items=40, seed=9)
    g2 = taobao_graph(n_users=100, n_items=40, seed=9)
    assert g1.n_edges == g2.n_edges
    np.testing.assert_array_equal(g1.edge_array()[0], g2.edge_array()[0])
    g3 = taobao_graph(n_users=100, n_items=40, seed=10)
    assert not np.array_equal(g1.edge_array()[1], g3.edge_array()[1])


def test_taobao_item_indegree_heavy_tailed(small_taobao):
    items = small_taobao.vertices_of_type("item")
    in_deg = small_taobao.in_degrees()[items].astype(float)
    assert tail_mass(in_deg, 0.1) > 0.35


def test_taobao_click_dominates(small_taobao):
    counts = small_taobao.describe()["edges_by_type"]
    assert counts["click"] > counts["buy"]


def test_taobao_user_attrs_overlap(small_taobao):
    """Attribute rows from a small vocab must collide (the dedup premise)."""
    users = small_taobao.vertices_of_type("user")
    rows = small_taobao.vertex_features[users]
    distinct = np.unique(rows, axis=0).shape[0]
    assert distinct < users.size


def test_taobao_validation():
    with pytest.raises(DatasetError):
        taobao_graph(n_users=0)


def test_large_is_about_6x_small():
    small = make_dataset("taobao-small-sim", scale=0.25, seed=0)
    large = make_dataset("taobao-large-sim", scale=0.25, seed=0)
    ratio = large.n_edges / small.n_edges
    assert 4.0 < ratio < 8.0


def test_amazon_schema(small_amazon):
    d = small_amazon.describe()
    assert d["n_vertex_types"] == 1
    assert set(d["edges_by_type"]) == {"co_view", "co_buy"}
    assert not small_amazon.directed


def test_amazon_communities_in_features(small_amazon):
    # The leading feature block one-hot encodes the category/community,
    # which correlates with the edge structure.
    n_communities = 6  # the fixture's configuration
    community = small_amazon.vertex_features[:, :n_communities].argmax(axis=1)
    src, dst, _ = small_amazon.edge_array()
    assert np.mean(community[src] == community[dst]) > 0.5


def test_amazon_cobuy_subset_flavour(small_amazon):
    counts = small_amazon.describe()["edges_by_type"]
    assert counts["co_buy"] < counts["co_view"]


def test_amazon_validation():
    with pytest.raises(DatasetError):
        amazon_graph(n_products=5, n_communities=20)


def test_powerlaw_graph_shapes():
    g = powerlaw_graph(500, seed=1)
    assert g.n_vertices == 500
    assert g.n_edges > 0
    with pytest.raises(DatasetError):
        powerlaw_graph(1)


def test_powerlaw_preferential_makes_indegree_heavy():
    pref = powerlaw_graph(2000, preferential=True, seed=2)
    unif = powerlaw_graph(2000, preferential=False, seed=2)
    assert tail_mass(pref.in_degrees().astype(float), 0.05) > tail_mass(
        unif.in_degrees().astype(float), 0.05
    )


def test_dynamic_taobao_structure():
    dyn = dynamic_taobao(n_vertices=200, n_timestamps=4, seed=5)
    assert dyn.n_timestamps == 4
    assert 0.0 < dyn.burst_fraction() < 1.0
    # Net growth: adds outnumber removals by construction.
    assert dyn.snapshots[-1].n_edges > dyn.snapshots[0].n_edges


def test_dynamic_burst_targets_concentrated():
    dyn = dynamic_taobao(n_vertices=200, n_timestamps=3, burst_size=30, seed=6)
    burst_targets = [ev.dst for ev in dyn.events if ev.burst]
    normal_targets = [ev.dst for ev in dyn.events if ev.kind == "add" and not ev.burst]
    # Burst edges pile onto very few targets.
    assert len(set(burst_targets)) < len(set(normal_targets)) / 2


def test_dynamic_validation():
    with pytest.raises(DatasetError):
        dynamic_taobao(n_timestamps=1)


def test_knowledge_graph_structure():
    kg, brand_of, cat_of = knowledge_graph(200, n_brands=20, n_categories=5, seed=7)
    assert kg.n_vertices == 200 + 20 + 5
    assert brand_of.shape == (200,)
    assert cat_of.shape == (200,)
    # Items connect to exactly their brand and category.
    item = 0
    nbrs = set(kg.out_neighbors(item).tolist())
    assert 200 + brand_of[0] in nbrs
    assert 220 + cat_of[0] in nbrs


def test_knowledge_graph_brand_nests_in_category():
    kg, brand_of, cat_of = knowledge_graph(300, n_brands=30, n_categories=6, seed=8)
    # The brand of an item should live in the item's category (when possible).
    brands = kg.vertices_of_type("brand")
    assert brands.size == 30


def test_knowledge_graph_alignment():
    cats = np.arange(100) % 4
    kg, _, cat_of = knowledge_graph(100, n_categories=4, category_of=cats, seed=9)
    np.testing.assert_array_equal(cat_of, cats)


def test_registry_names():
    for name in (
        "taobao-small-sim",
        "taobao-large-sim",
        "amazon-sim",
        "dynamic-taobao-sim",
        "powerlaw",
    ):
        assert name in DATASETS


def test_registry_unknown_and_scale():
    with pytest.raises(DatasetError):
        make_dataset("imaginary")
    with pytest.raises(DatasetError):
        make_dataset("amazon-sim", scale=0.0)


def test_split_sizes(small_amazon):
    split = train_test_split_edges(small_amazon, 0.25, seed=1)
    assert split.n_test == round(0.25 * small_amazon.n_edges)
    assert split.train_graph.n_edges == small_amazon.n_edges - split.n_test
    assert split.test_neg.shape == split.test_pos.shape


def test_split_negatives_avoid_edges(small_amazon):
    split = train_test_split_edges(small_amazon, 0.2, seed=2)
    bad = 0
    for u, v in split.test_neg:
        if small_amazon.has_edge(int(u), int(v)):
            bad += 1
    assert bad / split.test_neg.shape[0] < 0.05


def test_split_preserves_ahg(small_amazon):
    split = train_test_split_edges(small_amazon, 0.2, seed=3)
    assert hasattr(split.train_graph, "edge_type_names")
    assert split.train_graph.n_vertices == small_amazon.n_vertices
    assert split.test_types.shape == (split.n_test,)


def test_split_multiple_negatives(small_amazon):
    split = train_test_split_edges(small_amazon, 0.1, negatives_per_positive=3, seed=4)
    assert split.test_neg.shape[0] == 3 * split.n_test


def test_split_validation(small_amazon):
    with pytest.raises(DatasetError):
        train_test_split_edges(small_amazon, 0.0)
    with pytest.raises(DatasetError):
        train_test_split_edges(small_amazon, 0.2, negatives_per_positive=0)
